//! Oracle property suite for the indexed delegation store: a wallet
//! booted from the index (lazy graph hydration, planner-routed queries)
//! must answer **byte-identically** to a wallet rebuilt by full journal
//! replay, across randomized workloads and the crash/compaction matrix.
//!
//! Every case runs the same seeded workload — publishes with and
//! without expiry, third-party certificates with explicit and derivable
//! supports, attribute declarations, revocations, absorbed remote
//! proofs, clock advances with expiry sweeps — against a durable wallet
//! with an index attached, then reopens the store twice:
//!
//! * **oracle** — `DurableWallet::open` (full replay, no index), and
//! * **subject** — `DurableWallet::open_indexed` over the surviving
//!   index state for the scenario:
//!   - `Clean`: index flushed, graceful shutdown (fast lazy boot);
//!   - `Crash`: power loss — the store drops its unsynced group-commit
//!     tail, and the index either loses its unflushed delta batches
//!     (`FileTable`) or is wiped entirely (`MemTable`), forcing either
//!     a log-tail catch-up or a full fallback rebuild;
//!   - `Compacted`: a snapshot + log compaction mid-workload, so the
//!     boot path crosses a snapshot boundary.
//!
//! The equality contract checked for each (seed, backend, scenario)
//! cell: encoded proof bytes for `query_subject`/`query_object` on
//! every node the workload touched, the sorted `unsupported_third_party`
//! audit report, per-certificate revocation lookups, the expiry sweep's
//! removal count, and (after both sides sweep) the exact certificate
//! and revocation sets of the materialized graphs.

use std::collections::BTreeSet;
use std::sync::Arc;

use drbac::core::{
    AttrDeclaration, AttrOp, LocalEntity, Node, Proof, ProofStep, SignedAttrDeclaration,
    SignedDelegation, SignedRevocation, SimClock, Ticks, WalletAddr,
};
use drbac::crypto::SchnorrGroup;
use drbac::index::{DelegationIndex, FileTable, MemTable, TableBackend, TableOp, TableStats};
use drbac::store::{Medium, MemMedium, StoreConfig, StoreError, WalletStore};
use drbac::wallet::DurableWallet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A shareable `MemTable` so "the same index files" survive a simulated
/// restart: the [`DelegationIndex`] handle is dropped, the table kept.
#[derive(Clone)]
struct SharedMem(Arc<MemTable>);

impl TableBackend for SharedMem {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        self.0.get(key)
    }
    fn apply(&self, batch: &[TableOp]) -> Result<(), StoreError> {
        self.0.apply(batch)
    }
    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<(), StoreError> {
        self.0.scan(start, end, f)
    }
    fn entries(&self) -> Result<u64, StoreError> {
        self.0.entries()
    }
    fn stats(&self) -> TableStats {
        self.0.stats()
    }
    fn flush(&self) -> Result<(), StoreError> {
        self.0.flush()
    }
    fn compact(&self) -> Result<(), StoreError> {
        self.0.compact()
    }
    fn reset_with(
        &self,
        entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<(), StoreError> {
        self.0.reset_with(entries)
    }
}

/// The index storage that outlives wallet handles in a case.
enum Backend {
    Mem(Arc<MemTable>),
    /// `(index.tab, index.log)` as shared in-memory media with
    /// power-loss simulation.
    File(MemMedium, MemMedium),
}

impl Backend {
    fn mem() -> Self {
        Backend::Mem(Arc::new(MemTable::new()))
    }

    fn file() -> Self {
        Backend::File(MemMedium::new(), MemMedium::new())
    }

    fn label(&self) -> &'static str {
        match self {
            Backend::Mem(_) => "mem",
            Backend::File(..) => "file",
        }
    }

    /// Opens a fresh [`DelegationIndex`] handle over the same storage.
    fn open(&self) -> Arc<DelegationIndex> {
        let table: Box<dyn TableBackend> = match self {
            Backend::Mem(t) => Box::new(SharedMem(Arc::clone(t))),
            Backend::File(tab, log) => Box::new(
                FileTable::from_media(Box::new(tab.clone()), Box::new(log.clone()))
                    .expect("reopen index media"),
            ),
        };
        Arc::new(DelegationIndex::open(table).expect("open index"))
    }

    /// Simulates power loss on the index side. A `MemTable` has no
    /// durable form at all, so a crash wipes it (the fallback-rebuild
    /// path); a `FileTable` keeps its synced prefix and loses the
    /// unflushed delta batches.
    fn crash(&mut self) {
        match self {
            Backend::Mem(t) => *t = Arc::new(MemTable::new()),
            Backend::File(_, log) => log.lose_unsynced(),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Scenario {
    Clean,
    Crash,
    Compacted,
}

impl Scenario {
    fn label(self) -> &'static str {
        match self {
            Scenario::Clean => "clean",
            Scenario::Crash => "crash",
            Scenario::Compacted => "compacted",
        }
    }
}

struct Actors {
    owner: LocalEntity,
    brokers: Vec<LocalEntity>,
    users: Vec<LocalEntity>,
    ext: LocalEntity,
}

impl Actors {
    fn generate(rng: &mut StdRng) -> Self {
        let g = SchnorrGroup::test_256();
        Actors {
            owner: LocalEntity::generate("Owner", g.clone(), rng),
            brokers: (0..2)
                .map(|i| LocalEntity::generate(format!("B{i}"), g.clone(), rng))
                .collect(),
            users: (0..4)
                .map(|i| LocalEntity::generate(format!("U{i}"), g.clone(), rng))
                .collect(),
            ext: LocalEntity::generate("Ext", g, rng),
        }
    }
}

/// Everything the workload touched, for the oracle comparison.
struct Touched {
    subjects: Vec<Node>,
    objects: Vec<Node>,
    /// `(certificate, signer)` — the signer is the issuer index into
    /// the revocation candidates, so a revocation can be re-signed.
    certs: Vec<Arc<SignedDelegation>>,
}

const STEPS: usize = 48;

/// Drives the seeded workload against the live wallet. Third-party and
/// absorbed certificates never carry expiries: at full replay an
/// expired certificate fails re-verification and is skipped, which is
/// exactly the asymmetry the final expiry sweeps reconcile — but audit
/// candidates must stay symmetric throughout.
fn run_workload(
    rng: &mut StdRng,
    actors: &Actors,
    wallet: &DurableWallet,
    clock: &SimClock,
    scenario: Scenario,
    index: &Arc<DelegationIndex>,
) -> Touched {
    let Actors {
        owner,
        brokers,
        users,
        ext,
    } = actors;

    let mut touched = Touched {
        subjects: Vec::new(),
        objects: Vec::new(),
        certs: Vec::new(),
    };
    for u in users {
        touched.subjects.push(Node::entity(u));
    }
    for b in brokers {
        touched.subjects.push(Node::entity(b));
    }

    // Deterministic setup: a base declaration plus one admin grant per
    // broker (the support every third-party publication leans on).
    let bw = owner.attr("BW", AttrOp::Min);
    wallet
        .publish_declaration(
            &SignedAttrDeclaration::sign(AttrDeclaration::new(bw, 1000.0).unwrap(), owner)
                .unwrap(),
        )
        .unwrap();
    let mut admin_certs = Vec::new();
    for (i, b) in brokers.iter().enumerate() {
        let cert: Arc<SignedDelegation> = Arc::new(
            owner
                .delegate(Node::entity(b), Node::role_admin(owner.role(&format!("tp{i}"))))
                .sign(owner)
                .unwrap(),
        );
        wallet.publish(Arc::clone(&cert), vec![]).unwrap();
        touched.certs.push(Arc::clone(&cert));
        touched.objects.push(Node::role(owner.role(&format!("tp{i}"))));
        admin_certs.push(cert);
    }
    for k in 0..6 {
        touched.objects.push(Node::role(owner.role(&format!("r{k}"))));
    }

    // `(cert, signer)` pairs eligible for revocation. Admin certs are
    // included on purpose: revoking one turns later third-party grants
    // into `unsupported_third_party` audit hits.
    let mut revocable: Vec<(Arc<SignedDelegation>, LocalEntity)> = admin_certs
        .iter()
        .map(|c| (Arc::clone(c), owner.clone()))
        .collect();

    for step in 0..STEPS {
        if scenario == Scenario::Compacted && step == STEPS / 2 {
            wallet.snapshot().expect("mid-workload snapshot");
        }
        if scenario == Scenario::Crash && step == STEPS / 2 {
            // The surviving prefix of the index's delta log.
            index.flush().expect("mid-workload index flush");
        }
        let u = rng.gen_range(0..users.len());
        let k = rng.gen_range(0..6u32);
        match rng.gen_range(0..8u32) {
            // A plain delegation into one of the owner's roles.
            0 => {
                let cert = owner
                    .delegate(Node::entity(&users[u]), Node::role(owner.role(&format!("r{k}"))))
                    .serial(step as u64)
                    .sign(owner)
                    .unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(cert);
                wallet.publish(Arc::clone(&cert), vec![]).unwrap();
                revocable.push((Arc::clone(&cert), owner.clone()));
                touched.certs.push(cert);
            }
            // The same, with a bounded lifetime.
            1 => {
                let cert = owner
                    .delegate(Node::entity(&users[u]), Node::role(owner.role(&format!("r{k}"))))
                    .serial(step as u64)
                    .expires(clock.now().after(Ticks(rng.gen_range(5..30u64))))
                    .sign(owner)
                    .unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(cert);
                wallet.publish(Arc::clone(&cert), vec![]).unwrap();
                touched.certs.push(cert);
            }
            // A role-to-role edge (endpoints distinct: self-loops are
            // rejected at signing time).
            2 => {
                let k2 = (k + 1 + rng.gen_range(0..5u32)) % 6;
                let cert = owner
                    .delegate(
                        Node::role(owner.role(&format!("r{k}"))),
                        Node::role(owner.role(&format!("r{k2}"))),
                    )
                    .serial(step as u64)
                    .sign(owner)
                    .unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(cert);
                wallet.publish(Arc::clone(&cert), vec![]).unwrap();
                revocable.push((Arc::clone(&cert), owner.clone()));
                touched.certs.push(cert);
            }
            // Third-party grant with an explicit support proof.
            3 => {
                let b = rng.gen_range(0..brokers.len());
                let cert = brokers[b]
                    .delegate(
                        Node::entity(&users[u]),
                        Node::role(owner.role(&format!("tp{b}"))),
                    )
                    .serial(step as u64)
                    .sign(&brokers[b])
                    .unwrap();
                let support =
                    Proof::from_steps(vec![ProofStep::new(Arc::clone(&admin_certs[b]))]).unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(cert);
                if wallet.publish(Arc::clone(&cert), vec![support]).is_ok() {
                    revocable.push((Arc::clone(&cert), brokers[b].clone()));
                    touched.certs.push(cert);
                }
            }
            // Third-party grant leaning on derivable (in-wallet) support.
            4 => {
                let b = rng.gen_range(0..brokers.len());
                let cert = brokers[b]
                    .delegate(
                        Node::entity(&users[u]),
                        Node::role(owner.role(&format!("tp{b}"))),
                    )
                    .serial(1000 + step as u64)
                    .sign(&brokers[b])
                    .unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(cert);
                // Fails (and is not journaled) once the admin grant has
                // been revoked — the oracle only sees committed events.
                if wallet.publish(Arc::clone(&cert), vec![]).is_ok() {
                    revocable.push((Arc::clone(&cert), brokers[b].clone()));
                    touched.certs.push(cert);
                }
            }
            // Revoke a committed certificate, signed by its issuer.
            5 => {
                let (cert, signer) = &revocable[rng.gen_range(0..revocable.len())];
                let revocation =
                    SignedRevocation::revoke(cert.as_ref(), signer, clock.now()).unwrap();
                wallet.revoke(&revocation).unwrap();
            }
            // Absorb a validated remote proof with coherence metadata.
            6 => {
                let cert: Arc<SignedDelegation> = Arc::new(
                    ext.delegate(
                        Node::entity(&users[u]),
                        Node::role(ext.role(&format!("g{step}"))),
                    )
                    .sign(ext)
                    .unwrap(),
                );
                let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();
                let source: WalletAddr = "peer.remote".into();
                wallet.absorb_proof(&proof, &source).unwrap();
                revocable.push((Arc::clone(&cert), ext.clone()));
                touched.certs.push(cert);
                touched.objects.push(Node::role(ext.role(&format!("g{step}"))));
            }
            // Time passes; lapsed credentials are swept and journaled.
            _ => {
                clock.advance(Ticks(rng.gen_range(1..10u64)));
                wallet.process_expiries();
            }
        }
    }
    touched
}

fn proof_bytes(proofs: Vec<Proof>) -> Vec<Vec<u8>> {
    proofs.iter().map(|p| p.to_bytes()).collect()
}

fn audit_report(wallet: &DurableWallet) -> Vec<String> {
    let mut rows: Vec<String> = wallet
        .unsupported_third_party()
        .into_iter()
        .map(|(issuer, right, missing)| format!("{issuer:?} {right:?} {missing:?}"))
        .collect();
    rows.sort();
    rows
}

/// One cell of the matrix: run the workload, apply the scenario's
/// shutdown, reopen both ways, and hold the two wallets to the equality
/// contract.
fn run_case(seed: u64, mut backend: Backend, scenario: Scenario) {
    let ctx = format!("seed {seed}, backend {}, scenario {}", backend.label(), scenario.label());
    let mut rng = StdRng::seed_from_u64(seed);
    let actors = Actors::generate(&mut rng);
    let clock = SimClock::new();
    // Group commit > 1 in the crash scenario so power loss can take a
    // committed-in-memory log tail with it.
    let store = Arc::new(if scenario == Scenario::Crash {
        WalletStore::in_memory_with(StoreConfig { group_commit: 3 })
    } else {
        WalletStore::in_memory()
    });

    let touched;
    {
        let index = backend.open();
        let (live, _) =
            DurableWallet::open("w.oracle", clock.clone(), Arc::clone(&store)).unwrap();
        live.attach_index(Arc::clone(&index));
        touched = run_workload(&mut rng, &actors, &live, &clock, scenario, &index);
        match scenario {
            Scenario::Crash => {} // no flush: the tail since midpoint is at risk
            _ => index.flush().unwrap(),
        }
    }
    let end = clock.now().0;
    if scenario == Scenario::Crash {
        store.lose_unsynced();
        backend.crash();
    }

    // The oracle: full journal replay, no index anywhere.
    let clock_full = SimClock::new();
    clock_full.advance(Ticks(end));
    let (full, _) =
        DurableWallet::open("w.oracle", clock_full.clone(), Arc::clone(&store)).unwrap();

    // The subject: an indexed boot over whatever survived the scenario.
    let clock_idx = SimClock::new();
    clock_idx.advance(Ticks(end));
    let (reborn, report) =
        DurableWallet::open_indexed("w.oracle", clock_idx.clone(), Arc::clone(&store), backend.open())
            .unwrap();
    if scenario != Scenario::Crash {
        assert!(report.lazy, "{ctx}: a current index must boot lazily");
    }
    assert!(reborn.indexed(), "{ctx}: boot must leave an index attached");

    // Planner-routed queries against graph-walk answers, byte for byte.
    for s in &touched.subjects {
        assert_eq!(
            proof_bytes(reborn.query_subject(s, &[])),
            proof_bytes(full.query_subject(s, &[])),
            "{ctx}: query_subject({s:?}) diverged"
        );
    }
    for o in &touched.objects {
        let got = reborn.query_object(o, &[]);
        let want = full.query_object(o, &[]);
        if proof_bytes(got.clone()) != proof_bytes(want.clone()) {
            let dump = |ps: &[Proof]| -> Vec<String> {
                ps.iter()
                    .map(|p| {
                        p.all_certs()
                            .iter()
                            .map(|c| format!("{:?}", c.id()))
                            .collect::<Vec<_>>()
                            .join(" + ")
                    })
                    .collect()
            };
            panic!(
                "{ctx}: query_object({o:?}) diverged\nindexed ({}):\n{:#?}\nreplay ({}):\n{:#?}",
                got.len(),
                dump(&got),
                want.len(),
                dump(&want)
            );
        }
    }

    // The audit sweep (index-routed vs full scan) and revocation lookups.
    if audit_report(&reborn) != audit_report(&full) {
        let ids = |w: &DurableWallet| {
            w.with_graph(|g| g.iter().map(|c| format!("{:?}", c.id())).collect::<BTreeSet<_>>())
        };
        let (ri, fi) = (ids(&reborn), ids(&full));
        let only_r: Vec<_> = ri.difference(&fi).collect();
        let only_f: Vec<_> = fi.difference(&ri).collect();
        panic!(
            "{ctx}: audit diverged\nindexed: {:#?}\nreplay: {:#?}\ncerts only indexed: {only_r:?}\ncerts only replay: {only_f:?}",
            audit_report(&reborn),
            audit_report(&full),
        );
    }
    for cert in &touched.certs {
        assert_eq!(
            reborn.is_revoked(cert.id()),
            full.is_revoked(cert.id()),
            "{ctx}: revocation lookup diverged for {:?}",
            cert.id()
        );
    }

    // Expiry sweeps reconcile the one deliberate boot asymmetry before
    // the graphs are compared wholesale: full replay rejects
    // already-lapsed certificates at re-verification while the index
    // still carries them, so the indexed side may sweep *more* — never
    // fewer — and afterwards the graphs must agree exactly.
    clock_idx.advance(Ticks(100));
    clock_full.advance(Ticks(100));
    let swept_reborn = reborn.process_expiries();
    let swept_full = full.process_expiries();
    assert!(
        swept_reborn.0 >= swept_full.0,
        "{ctx}: indexed sweep removed fewer certs ({} < {})",
        swept_reborn.0,
        swept_full.0
    );

    let graph_view = |w: &DurableWallet| {
        w.with_graph(|g| {
            (
                g.iter().map(|c| c.id()).collect::<BTreeSet<_>>(),
                g.revoked().clone(),
            )
        })
    };
    assert_eq!(graph_view(&reborn), graph_view(&full), "{ctx}: materialized graphs diverged");
}

fn seeds() -> Vec<u64> {
    let mut seeds = vec![11, 42, 2002];
    if let Some(env) = std::env::var("DRBAC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
    {
        if !seeds.contains(&env) {
            seeds.push(env);
        }
    }
    seeds
}

#[test]
fn indexed_boot_matches_full_replay_after_clean_shutdown() {
    for seed in seeds() {
        run_case(seed, Backend::mem(), Scenario::Clean);
        run_case(seed, Backend::file(), Scenario::Clean);
    }
}

#[test]
fn indexed_boot_matches_full_replay_after_crash() {
    for seed in seeds() {
        run_case(seed, Backend::mem(), Scenario::Crash);
        run_case(seed, Backend::file(), Scenario::Crash);
    }
}

#[test]
fn indexed_boot_matches_full_replay_after_compaction() {
    for seed in seeds() {
        run_case(seed, Backend::mem(), Scenario::Compacted);
        run_case(seed, Backend::file(), Scenario::Compacted);
    }
}
