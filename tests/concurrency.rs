//! Concurrency stress: a single shared wallet hammered from many threads
//! (publishers, queriers, revokers, monitors) must stay consistent and
//! deadlock-free — wallets are the shared substrate every host component
//! touches.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use drbac::core::{
    DelegationId, LocalEntity, Node, Proof, SignedDelegation, SignedRevocation, SimClock,
};
use drbac::crypto::SchnorrGroup;
use drbac::wallet::{ProofMonitor, Wallet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn wallet_survives_concurrent_publish_query_revoke() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    let g = SchnorrGroup::test_256();
    let owner = Arc::new(LocalEntity::generate("Owner", g.clone(), &mut rng));
    let users: Vec<Arc<LocalEntity>> = (0..4)
        .map(|i| Arc::new(LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng)))
        .collect();
    let wallet = Wallet::new("stress", SimClock::new());

    // Pre-sign all credentials on the main thread (signing needs &mut rng
    // determinism, the stress is on the wallet, not the signer).
    let per_user = 20usize;
    let mut certs: Vec<Vec<SignedDelegation>> = Vec::new();
    for user in &users {
        let mut list = Vec::new();
        for serial in 0..per_user {
            list.push(
                owner
                    .delegate(
                        Node::entity(user.as_ref()),
                        Node::role(owner.role("shared")),
                    )
                    .serial(serial as u64)
                    .sign(&owner)
                    .unwrap(),
            );
        }
        certs.push(list);
    }

    let granted = Arc::new(AtomicUsize::new(0));
    let denied = Arc::new(AtomicUsize::new(0));
    let invalidations = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Publishers: each thread publishes one user's credentials, then
        // revokes half of them.
        for (user_idx, list) in certs.iter().enumerate() {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            scope.spawn(move || {
                for (i, cert) in list.iter().enumerate() {
                    wallet.publish(cert.clone(), vec![]).unwrap();
                    if i % 2 == user_idx % 2 {
                        let revocation =
                            SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
                        wallet.revoke(&revocation).unwrap();
                    }
                }
            });
        }
        // Queriers: race the publishers; count outcomes and attach
        // monitors with callbacks (exercises the reentrancy-safe paths).
        for user in &users {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            let user = Arc::clone(user);
            let granted = Arc::clone(&granted);
            let denied = Arc::clone(&denied);
            let invalidations = Arc::clone(&invalidations);
            scope.spawn(move || {
                for _ in 0..200 {
                    match wallet.query_direct(
                        &Node::entity(user.as_ref()),
                        &Node::role(owner.role("shared")),
                        &[],
                    ) {
                        Some(monitor) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            let invalidations = Arc::clone(&invalidations);
                            monitor.on_invalidate(move |_| {
                                invalidations.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        None => {
                            denied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Post-conditions: half of each user's credentials remain valid, so
    // every user is still authorized; the survivors answer queries.
    for user in &users {
        assert!(
            wallet
                .query_direct(
                    &Node::entity(user.as_ref()),
                    &Node::role(owner.role("shared")),
                    &[]
                )
                .is_some(),
            "{} still holds an unrevoked grant",
            user.name()
        );
    }
    assert_eq!(wallet.len(), users.len() * per_user);
    // The queriers ran: every query either granted or denied.
    assert_eq!(
        granted.load(Ordering::Relaxed) + denied.load(Ordering::Relaxed),
        4 * 200
    );

    // Export under no contention still works and re-imports.
    let image = wallet.export_bytes();
    let restored = Wallet::new("restored", SimClock::new());
    let report = restored.import_bytes(&image).unwrap();
    assert_eq!(report.credentials, users.len() * per_user);
}

#[test]
fn shared_clock_and_wallet_clones_are_coherent() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let user = LocalEntity::generate("User", g, &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("clones", clock.clone());

    // Writers advance time while publishing expiring credentials; a
    // reader clone processes expiries concurrently.
    let cert = owner
        .delegate(Node::entity(&user), Node::role(owner.role("r")))
        .expires(drbac::core::Timestamp(50))
        .sign(&owner)
        .unwrap();
    wallet.publish(cert, vec![]).unwrap();

    std::thread::scope(|scope| {
        let w1 = wallet.clone();
        let c1 = clock.clone();
        scope.spawn(move || {
            for _ in 0..100 {
                c1.advance(drbac::core::Ticks(1));
                w1.process_expiries();
            }
        });
        let w2 = wallet.clone();
        scope.spawn(move || {
            for _ in 0..100 {
                let _ = w2.query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[]);
            }
        });
    });

    // Time passed 100 ticks: the credential expired and is gone.
    assert!(wallet.is_empty());
}

/// Normalizes a query result set to the delegation-id sets of its
/// proofs, preserving order — the deterministic-ordering guarantee means
/// two searches over the *same graph* must produce the same list.
fn id_sets(proofs: &[Proof]) -> Vec<BTreeSet<DelegationId>> {
    proofs.iter().map(|p| p.delegation_ids()).collect()
}

/// Normalizes a query result set to the proven relationships. Two
/// wallets holding the same credentials must prove the same
/// relationships, though each may pick a different representative proof
/// when several equivalent ones exist.
fn relationships(proofs: &[Proof]) -> BTreeSet<String> {
    proofs
        .iter()
        .map(|p| format!("{} => {}", p.subject(), p.object()))
        .collect()
}

/// Prover threads hammer direct/subject/object queries (through the
/// proof cache and the parallel search pool) while writer threads
/// publish and revoke. After quiesce, every answer must equal a fresh
/// single-threaded, cache-disabled search over the same credentials
/// (oracle check), and a post-quiesce revocation sweep must fire the
/// monitor of every cached proof it invalidates.
#[test]
fn racing_provers_agree_with_a_single_threaded_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    let g = SchnorrGroup::test_256();
    let owner = Arc::new(LocalEntity::generate("Owner", g.clone(), &mut rng));
    let users: Vec<Arc<LocalEntity>> = (0..4)
        .map(|i| Arc::new(LocalEntity::generate(format!("P{i}"), g.clone(), &mut rng)))
        .collect();
    let clock = SimClock::new();
    let wallet = Wallet::new("oracle-race", clock.clone());
    wallet.set_search_workers(4);

    let per_user = 10usize;
    let mut certs: Vec<Vec<SignedDelegation>> = Vec::new();
    for user in &users {
        certs.push(
            (0..per_user)
                .map(|serial| {
                    owner
                        .delegate(Node::entity(user.as_ref()), Node::role(owner.role("race")))
                        .serial(serial as u64)
                        .sign(&owner)
                        .unwrap()
                })
                .collect(),
        );
    }

    // Monitors collected by the provers, with a fired-callback counter
    // attached to each — the post-quiesce sweep checks them all.
    type WatchedMonitors = Arc<Mutex<Vec<(ProofMonitor, Arc<AtomicUsize>)>>>;
    let monitors: WatchedMonitors = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        // Writers: publish one user's credentials, revoking every third.
        for list in certs.iter() {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            scope.spawn(move || {
                for (i, cert) in list.iter().enumerate() {
                    wallet.publish(cert.clone(), vec![]).unwrap();
                    if i % 3 == 0 {
                        let rev = SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
                        wallet.revoke(&rev).unwrap();
                    }
                }
            });
        }
        // Provers: direct queries (cache + monitors) and subject/object
        // sweeps (parallel frontier), racing the writers.
        for prover in 0..3usize {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            let users: Vec<Arc<LocalEntity>> = users.iter().map(Arc::clone).collect();
            let monitors = Arc::clone(&monitors);
            scope.spawn(move || {
                let role = Node::role(owner.role("race"));
                for i in 0..120usize {
                    let user = &users[(prover + i) % users.len()];
                    if let Some(monitor) =
                        wallet.query_direct(&Node::entity(user.as_ref()), &role, &[])
                    {
                        let fired = Arc::new(AtomicUsize::new(0));
                        {
                            let fired = Arc::clone(&fired);
                            monitor.on_invalidate(move |_| {
                                fired.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        monitors.lock().unwrap().push((monitor, fired));
                    }
                    let _ = wallet.query_subject(&Node::entity(user.as_ref()), &[]);
                    let _ = wallet.query_object(&role, &[]);
                }
            });
        }
    });

    // Quiesced. Build the oracle: a fresh wallet on the same clock with
    // the cache off and a single-threaded search pool, fed the exported
    // image (credentials, supports, and revocation marks).
    let oracle = Wallet::new("oracle", clock);
    oracle.set_query_cache(false);
    oracle.set_search_workers(1);
    let report = oracle.import_bytes(&wallet.export_bytes()).unwrap();
    assert_eq!(report.credentials, users.len() * per_user);

    let role = Node::role(owner.role("race"));
    for user in &users {
        let subject = Node::entity(user.as_ref());
        // Grant/deny decisions agree (the racing wallet answers through
        // its warm cache, the oracle searches from scratch)…
        assert_eq!(
            wallet.query_direct(&subject, &role, &[]).is_some(),
            oracle.query_direct(&subject, &role, &[]).is_some(),
            "{}: cached decision diverged from the oracle",
            user.name()
        );
        // …and so do the proven relationships.
        assert_eq!(
            relationships(&wallet.query_subject(&subject, &[])),
            relationships(&oracle.query_subject(&subject, &[])),
            "{}: subject query diverged from the oracle",
            user.name()
        );
    }
    assert_eq!(
        relationships(&wallet.query_object(&role, &[])),
        relationships(&oracle.query_object(&role, &[])),
        "object query diverged from the oracle"
    );

    // Determinism across pool sizes: on the SAME graph, the 4-worker
    // pool must produce exactly the single-threaded result list, order
    // included.
    let parallel_subject: Vec<Vec<BTreeSet<DelegationId>>> = users
        .iter()
        .map(|u| id_sets(&wallet.query_subject(&Node::entity(u.as_ref()), &[])))
        .collect();
    let parallel_object = id_sets(&wallet.query_object(&role, &[]));
    wallet.set_search_workers(1);
    for (u, expected) in users.iter().zip(&parallel_subject) {
        assert_eq!(
            &id_sets(&wallet.query_subject(&Node::entity(u.as_ref()), &[])),
            expected,
            "{}: worker pool size changed the subject-query ordering",
            u.name()
        );
    }
    assert_eq!(
        id_sets(&wallet.query_object(&role, &[])),
        parallel_object,
        "worker pool size changed the object-query ordering"
    );
    wallet.set_search_workers(4);

    // Post-quiesce sweep: revoke every surviving credential of the first
    // user. Every monitor holding a (possibly cached) proof that depends
    // on one of them must be invalidated AND must have fired.
    let mut swept: BTreeSet<DelegationId> = BTreeSet::new();
    for cert in &certs[0] {
        if !wallet.is_revoked(cert.id()) {
            let rev = SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
            wallet.revoke(&rev).unwrap();
            swept.insert(cert.id());
        }
    }
    assert!(!swept.is_empty(), "the sweep revoked something");
    assert!(
        wallet
            .query_direct(&Node::entity(users[0].as_ref()), &role, &[])
            .is_none(),
        "user 0 lost every grant; no cached proof may survive the sweep"
    );

    let monitors = monitors.lock().unwrap();
    assert!(!monitors.is_empty(), "the provers collected monitors");
    let mut checked = 0usize;
    for (monitor, fired) in monitors.iter() {
        if monitor.watched().iter().any(|id| swept.contains(id)) {
            assert!(
                !monitor.is_valid(),
                "a monitor outlived the revocation of its proof"
            );
            assert!(
                fired.load(Ordering::SeqCst) >= 1,
                "a monitored cached proof was invalidated without firing its callback"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the sweep invalidated at least one monitored proof");
}
