//! Concurrency stress: a single shared wallet hammered from many threads
//! (publishers, queriers, revokers, monitors) must stay consistent and
//! deadlock-free — wallets are the shared substrate every host component
//! touches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drbac::core::{LocalEntity, Node, SignedDelegation, SignedRevocation, SimClock};
use drbac::crypto::SchnorrGroup;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn wallet_survives_concurrent_publish_query_revoke() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    let g = SchnorrGroup::test_256();
    let owner = Arc::new(LocalEntity::generate("Owner", g.clone(), &mut rng));
    let users: Vec<Arc<LocalEntity>> = (0..4)
        .map(|i| Arc::new(LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng)))
        .collect();
    let wallet = Wallet::new("stress", SimClock::new());

    // Pre-sign all credentials on the main thread (signing needs &mut rng
    // determinism, the stress is on the wallet, not the signer).
    let per_user = 20usize;
    let mut certs: Vec<Vec<SignedDelegation>> = Vec::new();
    for user in &users {
        let mut list = Vec::new();
        for serial in 0..per_user {
            list.push(
                owner
                    .delegate(
                        Node::entity(user.as_ref()),
                        Node::role(owner.role("shared")),
                    )
                    .serial(serial as u64)
                    .sign(&owner)
                    .unwrap(),
            );
        }
        certs.push(list);
    }

    let granted = Arc::new(AtomicUsize::new(0));
    let denied = Arc::new(AtomicUsize::new(0));
    let invalidations = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Publishers: each thread publishes one user's credentials, then
        // revokes half of them.
        for (user_idx, list) in certs.iter().enumerate() {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            scope.spawn(move || {
                for (i, cert) in list.iter().enumerate() {
                    wallet.publish(cert.clone(), vec![]).unwrap();
                    if i % 2 == user_idx % 2 {
                        let revocation =
                            SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
                        wallet.revoke(&revocation).unwrap();
                    }
                }
            });
        }
        // Queriers: race the publishers; count outcomes and attach
        // monitors with callbacks (exercises the reentrancy-safe paths).
        for user in &users {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            let user = Arc::clone(user);
            let granted = Arc::clone(&granted);
            let denied = Arc::clone(&denied);
            let invalidations = Arc::clone(&invalidations);
            scope.spawn(move || {
                for _ in 0..200 {
                    match wallet.query_direct(
                        &Node::entity(user.as_ref()),
                        &Node::role(owner.role("shared")),
                        &[],
                    ) {
                        Some(monitor) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            let invalidations = Arc::clone(&invalidations);
                            monitor.on_invalidate(move |_| {
                                invalidations.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        None => {
                            denied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Post-conditions: half of each user's credentials remain valid, so
    // every user is still authorized; the survivors answer queries.
    for user in &users {
        assert!(
            wallet
                .query_direct(
                    &Node::entity(user.as_ref()),
                    &Node::role(owner.role("shared")),
                    &[]
                )
                .is_some(),
            "{} still holds an unrevoked grant",
            user.name()
        );
    }
    assert_eq!(wallet.len(), users.len() * per_user);
    // The queriers ran: every query either granted or denied.
    assert_eq!(
        granted.load(Ordering::Relaxed) + denied.load(Ordering::Relaxed),
        4 * 200
    );

    // Export under no contention still works and re-imports.
    let image = wallet.export_bytes();
    let restored = Wallet::new("restored", SimClock::new());
    let report = restored.import_bytes(&image).unwrap();
    assert_eq!(report.credentials, users.len() * per_user);
}

#[test]
fn shared_clock_and_wallet_clones_are_coherent() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let user = LocalEntity::generate("User", g, &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("clones", clock.clone());

    // Writers advance time while publishing expiring credentials; a
    // reader clone processes expiries concurrently.
    let cert = owner
        .delegate(Node::entity(&user), Node::role(owner.role("r")))
        .expires(drbac::core::Timestamp(50))
        .sign(&owner)
        .unwrap();
    wallet.publish(cert, vec![]).unwrap();

    std::thread::scope(|scope| {
        let w1 = wallet.clone();
        let c1 = clock.clone();
        scope.spawn(move || {
            for _ in 0..100 {
                c1.advance(drbac::core::Ticks(1));
                w1.process_expiries();
            }
        });
        let w2 = wallet.clone();
        scope.spawn(move || {
            for _ in 0..100 {
                let _ = w2.query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[]);
            }
        });
    });

    // Time passed 100 ticks: the credential expired and is gone.
    assert!(wallet.is_empty());
}
