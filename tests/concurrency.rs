//! Concurrency stress: a single shared wallet hammered from many threads
//! (publishers, queriers, revokers, monitors) must stay consistent and
//! deadlock-free — wallets are the shared substrate every host component
//! touches.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use drbac::core::{
    DelegationId, LocalEntity, Node, Proof, SignedDelegation, SignedRevocation, SimClock,
};
use drbac::crypto::SchnorrGroup;
use drbac::wallet::{ProofMonitor, Wallet};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn wallet_survives_concurrent_publish_query_revoke() {
    let mut rng = StdRng::seed_from_u64(0xC0);
    let g = SchnorrGroup::test_256();
    let owner = Arc::new(LocalEntity::generate("Owner", g.clone(), &mut rng));
    let users: Vec<Arc<LocalEntity>> = (0..4)
        .map(|i| Arc::new(LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng)))
        .collect();
    let wallet = Wallet::new("stress", SimClock::new());

    // Pre-sign all credentials on the main thread (signing needs &mut rng
    // determinism, the stress is on the wallet, not the signer).
    let per_user = 20usize;
    let mut certs: Vec<Vec<SignedDelegation>> = Vec::new();
    for user in &users {
        let mut list = Vec::new();
        for serial in 0..per_user {
            list.push(
                owner
                    .delegate(
                        Node::entity(user.as_ref()),
                        Node::role(owner.role("shared")),
                    )
                    .serial(serial as u64)
                    .sign(&owner)
                    .unwrap(),
            );
        }
        certs.push(list);
    }

    let granted = Arc::new(AtomicUsize::new(0));
    let denied = Arc::new(AtomicUsize::new(0));
    let invalidations = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|scope| {
        // Publishers: each thread publishes one user's credentials, then
        // revokes half of them.
        for (user_idx, list) in certs.iter().enumerate() {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            scope.spawn(move || {
                for (i, cert) in list.iter().enumerate() {
                    wallet.publish(cert.clone(), vec![]).unwrap();
                    if i % 2 == user_idx % 2 {
                        let revocation =
                            SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
                        wallet.revoke(&revocation).unwrap();
                    }
                }
            });
        }
        // Queriers: race the publishers; count outcomes and attach
        // monitors with callbacks (exercises the reentrancy-safe paths).
        for user in &users {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            let user = Arc::clone(user);
            let granted = Arc::clone(&granted);
            let denied = Arc::clone(&denied);
            let invalidations = Arc::clone(&invalidations);
            scope.spawn(move || {
                for _ in 0..200 {
                    match wallet.query_direct(
                        &Node::entity(user.as_ref()),
                        &Node::role(owner.role("shared")),
                        &[],
                    ) {
                        Some(monitor) => {
                            granted.fetch_add(1, Ordering::Relaxed);
                            let invalidations = Arc::clone(&invalidations);
                            monitor.on_invalidate(move |_| {
                                invalidations.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                        None => {
                            denied.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });

    // Post-conditions: half of each user's credentials remain valid, so
    // every user is still authorized; the survivors answer queries.
    for user in &users {
        assert!(
            wallet
                .query_direct(
                    &Node::entity(user.as_ref()),
                    &Node::role(owner.role("shared")),
                    &[]
                )
                .is_some(),
            "{} still holds an unrevoked grant",
            user.name()
        );
    }
    assert_eq!(wallet.len(), users.len() * per_user);
    // The queriers ran: every query either granted or denied.
    assert_eq!(
        granted.load(Ordering::Relaxed) + denied.load(Ordering::Relaxed),
        4 * 200
    );

    // Export under no contention still works and re-imports.
    let image = wallet.export_bytes();
    let restored = Wallet::new("restored", SimClock::new());
    let report = restored.import_bytes(&image).unwrap();
    assert_eq!(report.credentials, users.len() * per_user);
}

#[test]
fn shared_clock_and_wallet_clones_are_coherent() {
    let mut rng = StdRng::seed_from_u64(0xC1);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let user = LocalEntity::generate("User", g, &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("clones", clock.clone());

    // Writers advance time while publishing expiring credentials; a
    // reader clone processes expiries concurrently.
    let cert = owner
        .delegate(Node::entity(&user), Node::role(owner.role("r")))
        .expires(drbac::core::Timestamp(50))
        .sign(&owner)
        .unwrap();
    wallet.publish(cert, vec![]).unwrap();

    std::thread::scope(|scope| {
        let w1 = wallet.clone();
        let c1 = clock.clone();
        scope.spawn(move || {
            for _ in 0..100 {
                c1.advance(drbac::core::Ticks(1));
                w1.process_expiries();
            }
        });
        let w2 = wallet.clone();
        scope.spawn(move || {
            for _ in 0..100 {
                let _ = w2.query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[]);
            }
        });
    });

    // Time passed 100 ticks: the credential expired and is gone.
    assert!(wallet.is_empty());
}

/// Normalizes a query result set to the delegation-id sets of its
/// proofs, preserving order — the deterministic-ordering guarantee means
/// two searches over the *same graph* must produce the same list.
fn id_sets(proofs: &[Proof]) -> Vec<BTreeSet<DelegationId>> {
    proofs.iter().map(|p| p.delegation_ids()).collect()
}

/// Normalizes a query result set to the proven relationships. Two
/// wallets holding the same credentials must prove the same
/// relationships, though each may pick a different representative proof
/// when several equivalent ones exist.
fn relationships(proofs: &[Proof]) -> BTreeSet<String> {
    proofs
        .iter()
        .map(|p| format!("{} => {}", p.subject(), p.object()))
        .collect()
}

/// Prover threads hammer direct/subject/object queries (through the
/// proof cache and the parallel search pool) while writer threads
/// publish and revoke. After quiesce, every answer must equal a fresh
/// single-threaded, cache-disabled search over the same credentials
/// (oracle check), and a post-quiesce revocation sweep must fire the
/// monitor of every cached proof it invalidates.
#[test]
fn racing_provers_agree_with_a_single_threaded_oracle() {
    let mut rng = StdRng::seed_from_u64(0xC2);
    let g = SchnorrGroup::test_256();
    let owner = Arc::new(LocalEntity::generate("Owner", g.clone(), &mut rng));
    let users: Vec<Arc<LocalEntity>> = (0..4)
        .map(|i| Arc::new(LocalEntity::generate(format!("P{i}"), g.clone(), &mut rng)))
        .collect();
    let clock = SimClock::new();
    let wallet = Wallet::new("oracle-race", clock.clone());
    wallet.set_search_workers(4);

    let per_user = 10usize;
    let mut certs: Vec<Vec<SignedDelegation>> = Vec::new();
    for user in &users {
        certs.push(
            (0..per_user)
                .map(|serial| {
                    owner
                        .delegate(Node::entity(user.as_ref()), Node::role(owner.role("race")))
                        .serial(serial as u64)
                        .sign(&owner)
                        .unwrap()
                })
                .collect(),
        );
    }

    // Monitors collected by the provers, with a fired-callback counter
    // attached to each — the post-quiesce sweep checks them all.
    type WatchedMonitors = Arc<Mutex<Vec<(ProofMonitor, Arc<AtomicUsize>)>>>;
    let monitors: WatchedMonitors = Arc::new(Mutex::new(Vec::new()));

    std::thread::scope(|scope| {
        // Writers: publish one user's credentials, revoking every third.
        for list in certs.iter() {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            scope.spawn(move || {
                for (i, cert) in list.iter().enumerate() {
                    wallet.publish(cert.clone(), vec![]).unwrap();
                    if i % 3 == 0 {
                        let rev = SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
                        wallet.revoke(&rev).unwrap();
                    }
                }
            });
        }
        // Provers: direct queries (cache + monitors) and subject/object
        // sweeps (parallel frontier), racing the writers.
        for prover in 0..3usize {
            let wallet = wallet.clone();
            let owner = Arc::clone(&owner);
            let users: Vec<Arc<LocalEntity>> = users.iter().map(Arc::clone).collect();
            let monitors = Arc::clone(&monitors);
            scope.spawn(move || {
                let role = Node::role(owner.role("race"));
                for i in 0..120usize {
                    let user = &users[(prover + i) % users.len()];
                    if let Some(monitor) =
                        wallet.query_direct(&Node::entity(user.as_ref()), &role, &[])
                    {
                        let fired = Arc::new(AtomicUsize::new(0));
                        {
                            let fired = Arc::clone(&fired);
                            monitor.on_invalidate(move |_| {
                                fired.fetch_add(1, Ordering::SeqCst);
                            });
                        }
                        monitors.lock().unwrap().push((monitor, fired));
                    }
                    let _ = wallet.query_subject(&Node::entity(user.as_ref()), &[]);
                    let _ = wallet.query_object(&role, &[]);
                }
            });
        }
    });

    // Quiesced. A pathological schedule can starve the writers until the
    // provers have burned all their iterations on negative answers (each
    // cold negative is microseconds on a small graph), leaving no
    // monitors collected during the race — so take one guaranteed
    // post-quiesce monitor per user; the revocation sweep below then
    // always has watched proofs to check.
    let role = Node::role(owner.role("race"));
    for user in &users {
        if let Some(monitor) = wallet.query_direct(&Node::entity(user.as_ref()), &role, &[]) {
            let fired = Arc::new(AtomicUsize::new(0));
            {
                let fired = Arc::clone(&fired);
                monitor.on_invalidate(move |_| {
                    fired.fetch_add(1, Ordering::SeqCst);
                });
            }
            monitors.lock().unwrap().push((monitor, fired));
        }
    }

    // Build the oracle: a fresh wallet on the same clock with
    // the cache off and a single-threaded search pool, fed the exported
    // image (credentials, supports, and revocation marks).
    let oracle = Wallet::new("oracle", clock);
    oracle.set_query_cache(false);
    oracle.set_search_workers(1);
    let report = oracle.import_bytes(&wallet.export_bytes()).unwrap();
    assert_eq!(report.credentials, users.len() * per_user);

    for user in &users {
        let subject = Node::entity(user.as_ref());
        // Grant/deny decisions agree (the racing wallet answers through
        // its warm cache, the oracle searches from scratch)…
        assert_eq!(
            wallet.query_direct(&subject, &role, &[]).is_some(),
            oracle.query_direct(&subject, &role, &[]).is_some(),
            "{}: cached decision diverged from the oracle",
            user.name()
        );
        // …and so do the proven relationships.
        assert_eq!(
            relationships(&wallet.query_subject(&subject, &[])),
            relationships(&oracle.query_subject(&subject, &[])),
            "{}: subject query diverged from the oracle",
            user.name()
        );
    }
    assert_eq!(
        relationships(&wallet.query_object(&role, &[])),
        relationships(&oracle.query_object(&role, &[])),
        "object query diverged from the oracle"
    );

    // Determinism across pool sizes: on the SAME graph, the 4-worker
    // pool must produce exactly the single-threaded result list, order
    // included.
    let parallel_subject: Vec<Vec<BTreeSet<DelegationId>>> = users
        .iter()
        .map(|u| id_sets(&wallet.query_subject(&Node::entity(u.as_ref()), &[])))
        .collect();
    let parallel_object = id_sets(&wallet.query_object(&role, &[]));
    wallet.set_search_workers(1);
    for (u, expected) in users.iter().zip(&parallel_subject) {
        assert_eq!(
            &id_sets(&wallet.query_subject(&Node::entity(u.as_ref()), &[])),
            expected,
            "{}: worker pool size changed the subject-query ordering",
            u.name()
        );
    }
    assert_eq!(
        id_sets(&wallet.query_object(&role, &[])),
        parallel_object,
        "worker pool size changed the object-query ordering"
    );
    wallet.set_search_workers(4);

    // Post-quiesce sweep: revoke every surviving credential of the first
    // user. Every monitor holding a (possibly cached) proof that depends
    // on one of them must be invalidated AND must have fired.
    let mut swept: BTreeSet<DelegationId> = BTreeSet::new();
    for cert in &certs[0] {
        if !wallet.is_revoked(cert.id()) {
            let rev = SignedRevocation::revoke(cert, &owner, wallet.now()).unwrap();
            wallet.revoke(&rev).unwrap();
            swept.insert(cert.id());
        }
    }
    assert!(!swept.is_empty(), "the sweep revoked something");
    assert!(
        wallet
            .query_direct(&Node::entity(users[0].as_ref()), &role, &[])
            .is_none(),
        "user 0 lost every grant; no cached proof may survive the sweep"
    );

    let monitors = monitors.lock().unwrap();
    assert!(!monitors.is_empty(), "the provers collected monitors");
    let mut checked = 0usize;
    for (monitor, fired) in monitors.iter() {
        if monitor.watched().iter().any(|id| swept.contains(id)) {
            assert!(
                !monitor.is_valid(),
                "a monitor outlived the revocation of its proof"
            );
            assert!(
                fired.load(Ordering::SeqCst) >= 1,
                "a monitored cached proof was invalidated without firing its callback"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "the sweep invalidated at least one monitored proof");
}

/// Cross-seed, cross-pool-size engine oracle: the optimized search
/// engine (interned ids, parent-pointer proof assembly, batched frontier
/// expansion) must produce **byte-identical** proofs to the preserved
/// pre-interning reference engine (`drbac::graph::reference`) on
/// randomized tangled graphs — for every query form, with and without
/// constraints, at every worker-pool size. Seeds come from
/// `DRBAC_CHAOS_SEED` (default 2002) plus two derived values, so CI runs
/// with different seeds cover different graph shapes.
#[test]
fn optimized_engine_matches_reference_engine_byte_for_byte() {
    use drbac::core::{AttrConstraint, AttrDeclaration, AttrOp, Timestamp};
    use drbac::graph::{direct_query_on, object_query_on, reference, subject_query_on};
    use drbac::graph::{DelegationGraph, SearchOptions};
    use rand::Rng;

    let base: u64 = std::env::var("DRBAC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2002);
    let g = SchnorrGroup::test_256();

    for seed in [base, base ^ 0x9e37, base.wrapping_add(17)] {
        let mut rng = StdRng::seed_from_u64(seed);
        let owner = LocalEntity::generate("Own", g.clone(), &mut rng);
        let partner = LocalEntity::generate("Par", g.clone(), &mut rng);
        let maria = LocalEntity::generate("Maria", g.clone(), &mut rng);
        let bw = owner.attr("BW", AttrOp::Min);
        let mut graph = DelegationGraph::new();
        graph.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());

        // Random layered mesh: 12 roles, 40 random edges (possible
        // cycles, parallel edges, dead ends), a third of them carrying
        // attributes, a fifth carrying transitive-trust limits.
        let roles: Vec<Node> = (0..12)
            .map(|i| Node::role(owner.role(&format!("s{seed}r{i}"))))
            .collect();
        let mut nodes: Vec<Node> = vec![Node::entity(&maria)];
        nodes.extend(roles.iter().cloned());
        for serial in 0..40u64 {
            let from = nodes[rng.gen_range(0..nodes.len())].clone();
            let to = roles[rng.gen_range(0..roles.len())].clone();
            if from == to {
                continue;
            }
            let mut b = owner.delegate(from, to).serial(serial);
            if rng.gen_range(0..3u32) == 0 {
                b = b.with_attr(bw.clone(), rng.gen_range(50.0..900.0)).unwrap();
            }
            if rng.gen_range(0..5u32) == 0 {
                b = b.max_extension_depth(rng.gen_range(0..3u64));
            }
            graph.insert(b.sign(&owner).unwrap());
        }
        // A third-party edge whose support is discoverable in the graph.
        graph.insert(
            owner
                .delegate(
                    Node::entity(&partner),
                    Node::role_admin(owner.role(&format!("s{seed}r0"))),
                )
                .serial(100)
                .sign(&owner)
                .unwrap(),
        );
        graph.insert(
            partner
                .delegate(Node::entity(&maria), roles[0].clone())
                .serial(101)
                .sign(&partner)
                .unwrap(),
        );

        let subject = Node::entity(&maria);
        let variants = [
            SearchOptions::at(Timestamp(0)),
            SearchOptions::at(Timestamp(0))
                .with_constraint(AttrConstraint::at_least(bw.clone(), 200.0)),
        ];
        for opts in &variants {
            let bytes = |p: &Proof| p.to_bytes();
            for workers in [1usize, 2, 4, 8] {
                let o = opts.clone().with_workers(workers);
                for target in &nodes {
                    let (want, _) = reference::direct_query_ref(&graph, &subject, target, opts);
                    let (got, _) = direct_query_on(&graph, &subject, target, &o);
                    assert_eq!(
                        want.as_ref().map(bytes),
                        got.as_ref().map(bytes),
                        "seed {seed} workers {workers}: direct_query({target}) diverged"
                    );
                }
                let (want, _) = reference::subject_query_ref(&graph, &subject, opts);
                let (got, _) = subject_query_on(&graph, &subject, &o);
                assert_eq!(
                    want.iter().map(bytes).collect::<Vec<_>>(),
                    got.iter().map(bytes).collect::<Vec<_>>(),
                    "seed {seed} workers {workers}: subject_query diverged"
                );
                for target in &roles {
                    let (want, _) = reference::object_query_ref(&graph, target, opts);
                    let (got, _) = object_query_on(&graph, target, &o);
                    assert_eq!(
                        want.iter().map(bytes).collect::<Vec<_>>(),
                        got.iter().map(bytes).collect::<Vec<_>>(),
                        "seed {seed} workers {workers}: object_query({target}) diverged"
                    );
                }
            }
        }
    }
}

/// Singleflight: a flash crowd of identical cold queries against one
/// wallet must coalesce onto one leader search instead of each running
/// its own, and every caller must still get the right (validated) answer.
#[test]
fn identical_cold_queries_coalesce_onto_one_search() {
    let mut rng = StdRng::seed_from_u64(0xC3);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let user = LocalEntity::generate("User", g, &mut rng);
    let wallet = Wallet::new("coalesce", SimClock::new());
    // A little depth so the leader's search is not instantaneous.
    let mut prev = Node::entity(&user);
    for i in 0..4 {
        let r = Node::role(owner.role(&format!("l{i}")));
        wallet
            .publish(
                owner.delegate(prev.clone(), r.clone()).sign(&owner).unwrap(),
                vec![],
            )
            .unwrap();
        prev = r;
    }
    let target = prev;
    // Cache off: every query takes the cold path, so coalescing (not the
    // answer cache) is what's exercised.
    wallet.set_query_cache(false);

    // Counted locally through the per-query stats (a coalesced follower
    // reports zero search work; a leader expands at least the subject
    // node) — the global obs counters are process-wide and other tests
    // in this binary would pollute a delta.
    let hits = Arc::new(AtomicUsize::new(0));
    let searched = Arc::new(AtomicUsize::new(0));
    let coalesced = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let wallet = wallet.clone();
            let subject = Node::entity(&user);
            let target = target.clone();
            let hits = Arc::clone(&hits);
            let searched = Arc::clone(&searched);
            let coalesced = Arc::clone(&coalesced);
            scope.spawn(move || {
                for _ in 0..50 {
                    let (monitor, stats) =
                        wallet.query_direct_with_stats(&subject, &target, &[]);
                    if monitor.is_some() {
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    if stats.nodes_expanded > 0 {
                        searched.fetch_add(1, Ordering::Relaxed);
                    } else {
                        coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 8 * 50, "every caller got the proof");
    let searched = searched.load(Ordering::Relaxed);
    let coalesced = coalesced.load(Ordering::Relaxed);
    assert_eq!(
        searched + coalesced,
        8 * 50,
        "cache disabled: every query either searched or coalesced"
    );
    assert!(searched > 0, "somebody led a search");
    assert!(
        coalesced > 0,
        "with 8 threads hammering one key, some queries must have coalesced"
    );
}
