//! Proof-cache coherence suite: the wallet's revocation-coherent proof
//! cache must never serve an answer containing a delegation the wallet
//! has revoked or that has expired — *including* delegations reachable
//! only through the support proof of a third-party delegation.
//!
//! The main property test drives a wallet through seeded interleavings
//! of publish / revoke / expire operations and checks the invariant
//! after every step, on answers served both fresh and from the cache.
//! Like `tests/chaos.rs`, the interleaving seed comes from
//! `DRBAC_CHAOS_SEED` (default 2002) so `scripts/check.sh` can sweep a
//! small seed matrix.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use drbac::core::{
    LocalEntity, Node, Proof, ProofStep, SignedDelegation, SignedRevocation, SimClock, Ticks,
    Timestamp,
};
use drbac::crypto::SchnorrGroup;
use drbac::graph::SearchStats;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Interleaving seed for this run: `DRBAC_CHAOS_SEED`, default 2002.
fn chaos_seed() -> u64 {
    std::env::var("DRBAC_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2002)
}

/// The coherence invariant, checked on one query key. The key is
/// queried twice back-to-back: the first call may search, the second
/// must be served from the cache (zero search work). Neither answer may
/// contain a revoked or expired delegation anywhere in its DAG.
fn assert_coherent(wallet: &Wallet, subject: &Node, object: &Node) {
    let now = wallet.now();
    let (fresh, _) = wallet.query_direct_with_stats(subject, object, &[]);
    let (cached, stats) = wallet.query_direct_with_stats(subject, object, &[]);
    assert_eq!(
        stats,
        SearchStats::default(),
        "immediate re-query of {subject} => {object} was not served from the cache"
    );
    assert_eq!(
        fresh.is_some(),
        cached.is_some(),
        "the cache flipped the {subject} => {object} decision"
    );
    for monitor in [fresh, cached].into_iter().flatten() {
        for cert in monitor.proof().all_certs() {
            assert!(
                !wallet.is_revoked(cert.id()),
                "answer for {subject} => {object} contains the revoked delegation {}",
                cert.delegation()
            );
            assert!(
                !cert.delegation().is_expired(now),
                "answer for {subject} => {object} contains the expired delegation {}",
                cert.delegation()
            );
        }
    }
}

/// One pre-signed publishable credential, its required supports, and the
/// index (into the issuer list) of the entity that can later revoke it.
struct PoolItem {
    cert: SignedDelegation,
    supports: Vec<Proof>,
    issuer: usize,
}

fn run_interleaving(seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = SchnorrGroup::test_256();
    let a = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let b = LocalEntity::generate("Broker", g.clone(), &mut rng);
    let users: Vec<LocalEntity> = (0..3)
        .map(|i| LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng))
        .collect();
    let clock = SimClock::new();
    let wallet = Wallet::new("prop", clock.clone());

    // The broker's authority over `tp` — the revocable support proof
    // every third-party enrollment below hangs off.
    let admin_grant = a
        .delegate(Node::entity(&b), Node::role_admin(a.role("tp")))
        .sign(&a)
        .unwrap();
    let support = Proof::from_steps(vec![ProofStep::new(admin_grant.clone())]).unwrap();

    let mut pool: Vec<PoolItem> = Vec::new();
    for (i, u) in users.iter().enumerate() {
        // A plain grant, a short-lived grant that expires mid-run, and a
        // third-party enrollment carried by the broker's support proof.
        pool.push(PoolItem {
            cert: a
                .delegate(Node::entity(u), Node::role(a.role("r0")))
                .serial(i as u64)
                .sign(&a)
                .unwrap(),
            supports: vec![],
            issuer: 0,
        });
        pool.push(PoolItem {
            cert: a
                .delegate(Node::entity(u), Node::role(a.role("r0")))
                .serial(100 + i as u64)
                .expires(Timestamp(4 + 3 * i as u64))
                .sign(&a)
                .unwrap(),
            supports: vec![],
            issuer: 0,
        });
        pool.push(PoolItem {
            cert: b
                .delegate(Node::entity(u), Node::role(a.role("tp")))
                .serial(i as u64)
                .sign(&b)
                .unwrap(),
            supports: vec![support.clone()],
            issuer: 1,
        });
    }
    // A role ladder so multi-hop chains flow through the cache too.
    pool.push(PoolItem {
        cert: a
            .delegate(Node::role(a.role("r0")), Node::role(a.role("r1")))
            .sign(&a)
            .unwrap(),
        supports: vec![],
        issuer: 0,
    });

    let issuers = [&a, &b];
    let mut queries: Vec<(Node, Node)> = Vec::new();
    for u in &users {
        for r in ["r0", "r1", "tp"] {
            queries.push((Node::entity(u), Node::role(a.role(r))));
        }
    }

    let mut published: Vec<(SignedDelegation, usize)> = Vec::new();
    let mut support_published = false;
    let mut support_revoked = false;
    for _ in 0..120 {
        match rng.gen_range(0u32..12) {
            0..=4 if !pool.is_empty() => {
                let item = pool.swap_remove(rng.gen_range(0..pool.len()));
                let is_tp = !item.supports.is_empty();
                // A short-lived credential may already be dead, in which
                // case publication is (correctly) rejected — skip it.
                if wallet.publish(item.cert.clone(), item.supports).is_ok() {
                    published.push((item.cert, item.issuer));
                    support_published |= is_tp;
                }
            }
            5..=6 if !published.is_empty() => {
                let (cert, issuer) = published.swap_remove(rng.gen_range(0..published.len()));
                let rev = SignedRevocation::revoke(&cert, issuers[issuer], wallet.now()).unwrap();
                // The credential may have expired out of the wallet.
                let _ = wallet.revoke(&rev);
            }
            7 if support_published && !support_revoked => {
                // Revoke the broker's authority itself: every cached
                // third-party answer must die with its support proof.
                let rev = SignedRevocation::revoke(&admin_grant, &a, wallet.now()).unwrap();
                wallet.revoke(&rev).unwrap();
                support_revoked = true;
            }
            8 => {
                // Advance time WITHOUT sweeping: expiry must be enforced
                // by the cache itself (min-expiry eviction), not only by
                // process_expiries().
                clock.advance(Ticks(rng.gen_range(1..3)));
            }
            9 => {
                clock.advance(Ticks(rng.gen_range(1..3)));
                wallet.process_expiries();
            }
            _ => {}
        }
        for _ in 0..2 {
            let (s, o) = &queries[rng.gen_range(0..queries.len())];
            assert_coherent(&wallet, s, o);
        }
    }
    // Final sweep over every key, then confirm the cache actually served.
    for (s, o) in &queries {
        assert_coherent(&wallet, s, o);
    }
    assert!(
        wallet.cached_query_answers() > 0,
        "seed {seed}: the proof cache was never exercised"
    );
}

#[test]
fn cache_never_serves_revoked_or_expired_answers() {
    let seed = chaos_seed();
    // Three interleavings per run; check.sh sweeps the base seed 1–3.
    for salt in 0..3u64 {
        run_interleaving(seed.wrapping_add(salt.wrapping_mul(0x9E37_79B9)));
    }
}

#[test]
fn revoking_a_support_proof_invalidates_cached_third_party_answers() {
    let mut rng = StdRng::seed_from_u64(chaos_seed());
    let g = SchnorrGroup::test_256();
    let a = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let b = LocalEntity::generate("Broker", g.clone(), &mut rng);
    let maria = LocalEntity::generate("Maria", g, &mut rng);
    let wallet = Wallet::new("tp", SimClock::new());

    let admin_grant = a
        .delegate(Node::entity(&b), Node::role_admin(a.role("member")))
        .sign(&a)
        .unwrap();
    let support = Proof::from_steps(vec![ProofStep::new(admin_grant.clone())]).unwrap();
    let enrollment = b
        .delegate(Node::entity(&maria), Node::role(a.role("member")))
        .sign(&b)
        .unwrap();
    wallet.publish(enrollment, vec![support]).unwrap();

    let subject = Node::entity(&maria);
    let object = Node::role(a.role("member"));

    // Warm the cache and confirm the cached proof depends on the
    // support grant (the dependency the invalidation must track).
    let monitor = wallet
        .query_direct(&subject, &object, &[])
        .expect("Maria is enrolled");
    let (cached, stats) = wallet.query_direct_with_stats(&subject, &object, &[]);
    let cached = cached.expect("warm cache still grants");
    assert_eq!(stats, SearchStats::default(), "second query should hit the cache");
    assert!(
        cached.proof().delegation_ids().contains(&admin_grant.id()),
        "the cached proof's dependency set includes its support grant"
    );

    let invalidations = Arc::new(AtomicUsize::new(0));
    {
        let invalidations = Arc::clone(&invalidations);
        monitor.on_invalidate(move |_| {
            invalidations.fetch_add(1, Ordering::SeqCst);
        });
    }

    // Revoke ONLY the support grant; the enrollment itself is untouched.
    let rev = SignedRevocation::revoke(&admin_grant, &a, wallet.now()).unwrap();
    wallet.revoke(&rev).unwrap();

    assert!(
        wallet.query_direct(&subject, &object, &[]).is_none(),
        "a cached proof outlived its revoked support"
    );
    assert!(!monitor.is_valid(), "the monitor saw the support die");
    assert_eq!(
        invalidations.load(Ordering::SeqCst),
        1,
        "the monitor callback fired exactly once for the support revocation"
    );
}

#[test]
fn expired_support_is_not_served_from_cache() {
    let mut rng = StdRng::seed_from_u64(chaos_seed());
    let g = SchnorrGroup::test_256();
    let a = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let b = LocalEntity::generate("Broker", g.clone(), &mut rng);
    let maria = LocalEntity::generate("Maria", g, &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("ttl", clock.clone());

    // The support grant expires at T=10; the enrollment never does.
    let admin_grant = a
        .delegate(Node::entity(&b), Node::role_admin(a.role("member")))
        .expires(Timestamp(10))
        .sign(&a)
        .unwrap();
    let support = Proof::from_steps(vec![ProofStep::new(admin_grant)]).unwrap();
    let enrollment = b
        .delegate(Node::entity(&maria), Node::role(a.role("member")))
        .sign(&b)
        .unwrap();
    wallet.publish(enrollment, vec![support]).unwrap();

    let subject = Node::entity(&maria);
    let object = Node::role(a.role("member"));
    assert!(wallet.query_direct(&subject, &object, &[]).is_some());
    let (hit, stats) = wallet.query_direct_with_stats(&subject, &object, &[]);
    assert!(hit.is_some() && stats == SearchStats::default());

    // Advance past the support's expiry WITHOUT process_expiries(): the
    // cached entry's min-expiry must evict it on read, and revalidation
    // of a fresh search must deny.
    clock.advance(Ticks(11));
    assert!(
        wallet.query_direct(&subject, &object, &[]).is_none(),
        "a cached proof outlived its expired support"
    );

    // Sweeping afterwards changes nothing observable.
    wallet.process_expiries();
    assert!(wallet.query_direct(&subject, &object, &[]).is_none());
}
