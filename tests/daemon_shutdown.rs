//! Shutdown-accounting regression suite: `WalletDaemon::shutdown` must
//! join every thread it ever spawned — pumps, workers, per-connection
//! readers/writers — even when a client is wedged mid-frame, instead
//! of leaking detached threads the way the thread-per-connection
//! daemon did. `docs/OPERATIONS.md` leans on this behavior for
//! rolling restarts; `live_threads()` is the accounting seam.

use std::io::Write as _;
use std::time::{Duration, Instant};

use drbac::core::SimClock;
use drbac::net::proto::{Reply, Request};
use drbac::net::{DaemonConfig, TcpConfig, TcpTransport, Transport, WalletDaemon};
use drbac::wallet::Wallet;

/// Polls `cond` until it holds or `timeout` lapses.
fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

/// An idle daemon shuts down promptly and accounts for every thread:
/// the worker pool joins and `live_threads` lands on zero.
#[test]
fn idle_shutdown_joins_the_worker_pool() {
    let daemon = WalletDaemon::bind(
        "127.0.0.1:0",
        Wallet::new("home.idle", SimClock::new()),
        TcpConfig::fast(),
    )
    .unwrap();
    assert!(daemon.live_threads() >= 1, "the worker pool is running");
    daemon.shutdown();
    assert_eq!(daemon.live_threads(), 0, "every thread joined");
    // Idempotent: a second shutdown is a no-op, not a deadlock.
    daemon.shutdown();
    assert_eq!(daemon.live_threads(), 0);
}

/// The hung-client regression: a peer that writes half a frame and
/// then goes silent leaves its connection reader blocked mid-read.
/// Shutdown must shut the socket down underneath it (unblocking the
/// read), join the pump, and return well inside the deadline — the old
/// thread-per-connection daemon leaked this thread forever.
#[test]
fn shutdown_joins_connection_pumps_despite_hung_client() {
    let daemon = WalletDaemon::bind_with(
        "127.0.0.1:0",
        Wallet::new("home.hung", SimClock::new()),
        TcpConfig::fast(),
        DaemonConfig {
            shutdown_deadline: Duration::from_secs(3),
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let base_threads = daemon.live_threads();

    // A well-behaved client first, so the daemon is provably serving.
    let transport = TcpTransport::new(TcpConfig::fast());
    transport.add_route("home.hung", daemon.local_addr());
    let reply = transport
        .request(&"home.hung".into(), Request::FetchDeclarations)
        .unwrap();
    assert!(matches!(reply, Reply::Declarations(_)));

    // The hung clients: each writes a torn frame — a valid header
    // promising payload bytes that never arrive — and then just holds
    // the connection open. The daemon-side readers block awaiting the
    // rest of the frame.
    let mut hung = Vec::new();
    for _ in 0..3 {
        let mut s = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
        let mut frame = Vec::new();
        frame.extend_from_slice(b"dRBW");
        frame.push(1); // version
        frame.push(1); // kind: request
        frame.extend_from_slice(&1024u32.to_be_bytes()); // promised length...
        frame.extend_from_slice(&0u32.to_be_bytes()); // (bogus crc)
        s.write_all(&frame).unwrap(); // ...and no payload, ever
        hung.push(s);
    }
    assert!(
        wait_until(Duration::from_secs(2), || {
            daemon.live_threads() > base_threads
        }),
        "the hung connections spawned their pumps"
    );

    // Shutdown must unwedge those readers itself and return promptly.
    let started = Instant::now();
    daemon.shutdown();
    let took = started.elapsed();
    assert_eq!(
        daemon.live_threads(),
        0,
        "every pump joined despite clients that never spoke again"
    );
    assert!(
        took < Duration::from_secs(10),
        "shutdown returned promptly, took {took:?}"
    );
    drop(hung); // the clients outlived the daemon the whole time
}
