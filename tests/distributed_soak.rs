//! Generator-driven distributed soak: every topology family from
//! `drbac::scenario` must answer exactly like the centralized oracle
//! graph — across a seed matrix, on a pristine SimNet, under FaultPlan
//! chaos with partition/heal and crash/restart cycles, and over a real
//! TCP daemon federation — while every discovered proof stays sound and
//! every session built on a later-revoked delegation terminates.
//!
//! Worlds follow the paper's storage discipline (every delegation at
//! its *subject's* home wallet, every node tagged `S`), which is the
//! condition under which §4.2.1 forward search is complete; the
//! `completeness_property` module at the bottom checks that condition
//! directly as a shrinkable property.

mod common;

use std::sync::Arc;

use common::chaos_seed_matrix;
use drbac::scenario::{
    run_simnet, run_tcp, Family, RunConfig, Scale, ScenarioSpec, SimFederation, SoakReport,
};

/// One soak cell: generate, run, and hold the universal invariants.
fn soak(family: Family, seed: u64, cfg: &RunConfig) -> SoakReport {
    let scenario = ScenarioSpec::new(family, seed).generate();
    let report = run_simnet(&scenario, cfg);
    assert_eq!(
        report.unsound, 0,
        "{family}/{seed}: discovered proofs must validate"
    );
    assert_eq!(
        report.hard_mismatches(),
        0,
        "{family}/{seed}: non-degraded strict query diverged from oracle"
    );
    assert_eq!(
        report.termination_failures, 0,
        "{family}/{seed}: session outlived a revoked dependency"
    );
    assert_eq!(
        report.spurious_terminations, 0,
        "{family}/{seed}: live session wrongly terminated"
    );
    report
}

#[test]
fn fault_free_soak_is_oracle_equivalent_across_families_and_seeds() {
    for seed in chaos_seed_matrix(&[1, 2, 3]) {
        for family in Family::ALL {
            let report = soak(family, seed, &RunConfig::fault_free());
            // Pristine network: nothing may even be *flagged* degraded,
            // so oracle equivalence above was total, and the schedule
            // must have exercised both decisions.
            assert_eq!(
                report.degraded_rate(),
                0.0,
                "{family}/{seed}: degradation on a pristine network"
            );
            assert!(report.grants() > 0, "{family}/{seed}: no grants");
            assert!(report.denials() > 0, "{family}/{seed}: no denials");
        }
    }
}

#[test]
fn chaos_soak_holds_invariants_under_loss_partitions_and_crashes() {
    for seed in chaos_seed_matrix(&[1, 2, 3]) {
        for family in Family::ALL {
            // soak() already holds the bar that matters: zero unsound
            // proofs, zero non-degraded divergence, zero termination
            // failures — under seeded loss, a partition/heal cycle, and
            // a crash/restart cycle.
            soak(family, seed, &RunConfig::chaos(seed.wrapping_mul(31) ^ 5));
        }
    }
}

#[test]
fn revocation_families_exercise_session_termination() {
    // The termination machinery must actually fire, not vacuously pass:
    // storm and churn schedules revoke delegations under live monitors.
    let mut expected_dead = 0;
    for family in [Family::RevocationStorm, Family::Churn] {
        for seed in chaos_seed_matrix(&[1, 2, 3]) {
            let report = soak(family, seed, &RunConfig::fault_free());
            assert!(report.revocations > 0, "{family}/{seed}: no revocations");
            expected_dead += report.monitors_expected_dead;
        }
    }
    assert!(
        expected_dead > 0,
        "no monitored session ever depended on a revoked delegation"
    );
}

#[test]
fn simnet_and_tcp_federations_produce_byte_identical_proofs() {
    // The same schedule over the deterministic SimNet and over real TCP
    // daemons must reach the same decisions *and* the same proof bytes
    // (compared via the timing-free decision digest).
    for family in [Family::DeepLadder, Family::CrossFederation] {
        let scenario = ScenarioSpec::new(family, 1)
            .with_scale(Scale::smoke())
            .generate();
        let sim = run_simnet(&scenario, &RunConfig::fault_free());
        let tcp = run_tcp(&scenario, None).expect("tcp federation deploys");
        assert_eq!(tcp.unsound, 0, "{family}: tcp proofs validate");
        assert_eq!(tcp.hard_mismatches(), 0, "{family}: tcp oracle divergence");
        assert_eq!(tcp.termination_failures, 0, "{family}: tcp termination");
        assert_eq!(
            sim.proof_digests(),
            tcp.proof_digests(),
            "{family}: per-query proof bytes diverged across substrates"
        );
        assert_eq!(
            sim.decision_digest(),
            tcp.decision_digest(),
            "{family}: decision digests diverged across substrates"
        );
    }
}

#[test]
fn storage_discipline_passes_the_registry_audit() {
    // Deploy and soak a full generated world, then audit every org
    // wallet for the subject-home storage discipline the generator
    // promises (DeepLadder publishes but never revokes, so the audit
    // sees the steady-state credential placement).
    let scenario = ScenarioSpec::new(Family::DeepLadder, 0x50a4).generate();
    let mut fed = SimFederation::deploy(&scenario, &RunConfig::fault_free());
    fed.soak(&scenario);
    let violations = drbac::net::audit_store_compliance(fed.net(), &fed.host_addrs());
    assert!(
        violations.is_empty(),
        "soak world is registry-compliant: {violations:?}"
    );
}

mod completeness_property {
    //! The §4.2.1 completeness condition as a property: in any world
    //! where every node is tagged `S` and every delegation is stored at
    //! its subject's home wallet, tag-directed discovery finds a proof
    //! exactly when the union graph has one.

    use super::*;
    use drbac::core::{
        DiscoveryTag, LocalEntity, Node, SignedDelegation, SimClock, SubjectFlag, Ticks,
    };
    use drbac::crypto::SchnorrGroup;
    use drbac::graph::{DelegationGraph, SearchOptions};
    use drbac::net::{Directory, DiscoveryAgent, SimNet, WalletHost};
    use drbac::wallet::Wallet;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A compact world description proptest can shrink.
    #[derive(Debug, Clone)]
    struct SmallWorld {
        /// Edges as (subject index, object role index) over a universe of
        /// 2 users + 4 roles (2 per org); subjects index the whole
        /// universe, objects only roles.
        edges: Vec<(usize, usize)>,
    }

    fn arb_world() -> impl Strategy<Value = SmallWorld> {
        prop::collection::vec((0usize..6, 0usize..4), 1..12).prop_map(|edges| SmallWorld { edges })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn discovery_complete_under_s_tags(world in arb_world(), query_user in 0usize..2, query_role in 0usize..4) {
            let mut rng = StdRng::seed_from_u64(4242);
            let g = SchnorrGroup::test_256();
            let clock = SimClock::new();
            let net = SimNet::new(clock.clone(), Ticks(1));
            let orgs: Vec<LocalEntity> =
                (0..2).map(|i| LocalEntity::generate(format!("O{i}"), g.clone(), &mut rng)).collect();
            let users: Vec<LocalEntity> =
                (0..2).map(|i| LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng)).collect();
            let hosts: Vec<WalletHost> = (0..2)
                .map(|i| {
                    let addr = format!("w{i}");
                    net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()))
                })
                .collect();
            let tag = |i: usize| {
                DiscoveryTag::new(format!("w{i}").as_str())
                    .with_ttl(Ticks(100))
                    .with_subject_flag(SubjectFlag::Search)
            };
            // Universe: users 0-1, then roles (org 0: r0 r1, org 1: r0 r1).
            let node = |i: usize| -> Node {
                if i < 2 {
                    Node::entity(&users[i])
                } else {
                    let org = (i - 2) / 2;
                    Node::role(orgs[org].role(&format!("r{}", (i - 2) % 2)))
                }
            };
            let home_of = |n: &Node| -> usize {
                match n {
                    Node::Entity(id) => users.iter().position(|u| u.id() == *id).unwrap_or(0) % 2,
                    other => orgs.iter().position(|o| o.id() == other.namespace()).unwrap(),
                }
            };

            let mut oracle = DelegationGraph::new();
            for (serial, (s, o)) in world.edges.iter().enumerate() {
                let subject = node(*s);
                let object = node(o + 2);
                if subject == object {
                    continue;
                }
                let org = orgs.iter().find(|org| org.id() == object.namespace()).unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(
                    org.delegate(subject.clone(), object.clone())
                        .serial(serial as u64)
                        .subject_tag(tag(home_of(&subject)))
                        .object_tag(tag(home_of(&object)))
                        .sign(org)
                        .unwrap(),
                );
                hosts[home_of(&subject)].wallet().publish(Arc::clone(&cert), vec![]).unwrap();
                oracle.insert(cert);
            }

            let server = net.add_host("server", Wallet::new("server", clock.clone()));
            let mut dir = Directory::new();
            for (i, org) in orgs.iter().enumerate() {
                dir.register_entity(org.id(), tag(i));
            }
            for (i, user) in users.iter().enumerate() {
                dir.register(Node::entity(user), tag(i % 2));
            }
            let mut agent = DiscoveryAgent::new(net.clone(), server, dir);

            let subject = node(query_user);
            let object = node(query_role + 2);
            let outcome = agent.discover(&subject, &object, &[]);
            let (oracle_proof, _) =
                oracle.direct_query(&subject, &object, &SearchOptions::at(clock.now()));
            prop_assert_eq!(
                outcome.found(),
                oracle_proof.is_some(),
                "world {:?}: discovery {} vs oracle {} for {} => {} (trace {:?})",
                world,
                outcome.found(),
                oracle_proof.is_some(),
                subject,
                object,
                outcome.trace
            );
        }
    }
}
