//! Randomized distributed soak test: a network of per-organization
//! wallets must answer exactly like a single centralized oracle graph —
//! before and after random revocations — and constrained discovery must
//! never return an invalid proof.
//!
//! Setup mirrors the paper's storage discipline: every delegation is
//! stored at its *subject's* home wallet and every node carries an
//! `S` (search-from-subject) tag, which is the condition under which the
//! §4.2.1 forward search is complete.

use std::sync::Arc;

use drbac::core::{
    AttrConstraint, AttrOp, DiscoveryTag, LocalEntity, Node, ProofValidator, SignedDelegation,
    SignedRevocation, SimClock, SubjectFlag, Ticks, Timestamp, ValidationContext,
};
use drbac::crypto::SchnorrGroup;
use drbac::graph::{DelegationGraph, SearchOptions};
use drbac::net::{proto::Request, Directory, DiscoveryAgent, SimNet, WalletHost};
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ORGS: usize = 4;
const USERS: usize = 5;
const ROLES_PER_ORG: usize = 4;
const DELEGATIONS: usize = 60;

struct World {
    net: SimNet,
    clock: SimClock,
    orgs: Vec<LocalEntity>,
    users: Vec<LocalEntity>,
    /// Kept alive so the hosts stay registered on the network.
    _hosts: Vec<WalletHost>,
    oracle: DelegationGraph,
    certs: Vec<Arc<SignedDelegation>>,
    bw: drbac::core::AttrRef,
}

fn org_wallet_addr(i: usize) -> String {
    format!("wallet.org{i}")
}

/// The wallet that stores delegations whose subject is `node`.
fn subject_home(world_orgs: &[LocalEntity], users: &[LocalEntity], node: &Node) -> usize {
    match node {
        Node::Entity(id) => {
            // Users are assigned a home org by index; orgs host themselves.
            if let Some(u) = users.iter().position(|u| u.id() == *id) {
                u % ORGS
            } else {
                world_orgs.iter().position(|o| o.id() == *id).unwrap_or(0)
            }
        }
        _ => world_orgs
            .iter()
            .position(|o| o.id() == node.namespace())
            .expect("roles belong to orgs"),
    }
}

fn build(seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));

    let orgs: Vec<LocalEntity> = (0..ORGS)
        .map(|i| LocalEntity::generate(format!("Org{i}"), g.clone(), &mut rng))
        .collect();
    let users: Vec<LocalEntity> = (0..USERS)
        .map(|i| LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng))
        .collect();
    let hosts: Vec<WalletHost> = (0..ORGS)
        .map(|i| {
            let addr = org_wallet_addr(i);
            net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()))
        })
        .collect();

    let bw = orgs[0].attr("bw", AttrOp::Min);
    let tag = |i: usize| {
        DiscoveryTag::new(org_wallet_addr(i).as_str())
            .with_ttl(Ticks(1000))
            .with_subject_flag(SubjectFlag::Search)
    };

    // Node universe: user entities + org roles.
    let mut nodes: Vec<Node> = users.iter().map(Node::entity).collect();
    for org in &orgs {
        for r in 0..ROLES_PER_ORG {
            nodes.push(Node::role(org.role(&format!("r{r}"))));
        }
    }

    let mut oracle = DelegationGraph::new();
    let mut certs = Vec::new();
    for serial in 0..DELEGATIONS {
        let subject = nodes[rng.gen_range(0..nodes.len())].clone();
        // Objects are roles; the issuing org is the object's owner
        // (self-certified, so the soak isolates search/distribution).
        let org_idx = rng.gen_range(0..ORGS);
        let object =
            Node::role(orgs[org_idx].role(&format!("r{}", rng.gen_range(0..ROLES_PER_ORG))));
        if subject == object {
            continue;
        }
        let mut builder = orgs[org_idx]
            .delegate(subject.clone(), object.clone())
            .serial(serial as u64)
            .subject_tag(tag(subject_home(&orgs, &users, &subject)))
            .object_tag(tag(org_idx));
        // Attribute clauses only on Org0's own delegations (self-owned
        // attribute namespace; foreign clauses would need attr-admin
        // supports, which this soak deliberately leaves out of scope).
        if org_idx == 0 && rng.gen_bool(0.5) {
            builder = builder
                .with_attr(bw.clone(), rng.gen_range(1.0..100.0))
                .unwrap();
        }
        let cert: Arc<SignedDelegation> = Arc::new(builder.sign(&orgs[org_idx]).unwrap());

        let home = subject_home(&orgs, &users, &subject);
        hosts[home]
            .wallet()
            .publish(Arc::clone(&cert), vec![])
            .unwrap();
        oracle.insert(Arc::clone(&cert));
        certs.push(cert);
    }

    World {
        net,
        clock,
        orgs,
        users,
        _hosts: hosts,
        oracle,
        certs,
        bw,
    }
}

fn fresh_agent(w: &World, n: usize) -> DiscoveryAgent {
    let addr = format!("server{n}");
    let server = w
        .net
        .add_host(addr.as_str(), Wallet::new(addr.as_str(), w.clock.clone()));
    let mut dir = Directory::new();
    let tag = |i: usize| {
        DiscoveryTag::new(org_wallet_addr(i).as_str())
            .with_ttl(Ticks(1000))
            .with_subject_flag(SubjectFlag::Search)
    };
    for (i, org) in w.orgs.iter().enumerate() {
        dir.register_entity(org.id(), tag(i));
    }
    for (i, user) in w.users.iter().enumerate() {
        dir.register(Node::entity(user), tag(i % ORGS));
    }
    DiscoveryAgent::new(w.net.clone(), server, dir)
}

#[test]
fn distributed_discovery_matches_centralized_oracle() {
    let w = build(0x50a1);
    let opts = SearchOptions::at(Timestamp(0));
    let mut server_counter = 0;
    for user in &w.users {
        for org in &w.orgs {
            for r in 0..ROLES_PER_ORG {
                let target = Node::role(org.role(&format!("r{r}")));
                let (oracle_proof, _) = w.oracle.direct_query(&Node::entity(user), &target, &opts);
                server_counter += 1;
                let mut agent = fresh_agent(&w, server_counter);
                let outcome = agent.discover(&Node::entity(user), &target, &[]);
                assert_eq!(
                    outcome.found(),
                    oracle_proof.is_some(),
                    "disagreement for {} => {target} (trace: {:?})",
                    user.name(),
                    outcome.trace
                );
            }
        }
    }
}

#[test]
fn revocations_propagate_and_answers_stay_consistent() {
    let w = build(0x50a2);
    let mut rng = StdRng::seed_from_u64(9);
    let mut oracle = w.oracle.clone();

    // Revoke ~25% of delegations at their home wallets.
    for cert in &w.certs {
        if !rng.gen_bool(0.25) {
            continue;
        }
        let issuer = w
            .orgs
            .iter()
            .find(|o| o.id() == cert.delegation().issuer())
            .unwrap();
        let revocation = SignedRevocation::revoke(cert, issuer, w.clock.now()).unwrap();
        // The revocation goes to the wallet that stores the credential.
        let home = subject_home(&w.orgs, &w.users, cert.delegation().subject());
        let reply = w
            .net
            .request(
                &org_wallet_addr(home).as_str().into(),
                Request::Revoke(revocation),
            )
            .unwrap();
        assert!(!reply.is_error(), "{reply:?}");
        oracle.revoke(cert.id());
    }
    w.net.run_until_idle();

    let opts = SearchOptions::at(w.clock.now());
    let mut server_counter = 1000;
    for user in &w.users {
        for org in &w.orgs {
            let target = Node::role(org.role("r0"));
            let (oracle_proof, _) = w.oracle.direct_query(&Node::entity(user), &target, &opts);
            let (revoked_oracle_proof, _) =
                oracle.direct_query(&Node::entity(user), &target, &opts);
            // Sanity: revocation can only remove access.
            if revoked_oracle_proof.is_some() {
                assert!(oracle_proof.is_some());
            }
            server_counter += 1;
            let mut agent = fresh_agent(&w, server_counter);
            let outcome = agent.discover(&Node::entity(user), &target, &[]);
            assert_eq!(
                outcome.found(),
                revoked_oracle_proof.is_some(),
                "post-revocation disagreement for {} => {target}",
                user.name()
            );
        }
    }
}

#[test]
fn constrained_discovery_is_sound() {
    // Distributed constrained discovery may legitimately miss a
    // satisfying path (segment selection is greedy), but everything it
    // returns must validate and satisfy the constraint.
    let w = build(0x50a3);
    let mut server_counter = 2000;
    for threshold in [10.0, 50.0, 90.0] {
        let constraint = AttrConstraint::at_least(w.bw.clone(), threshold);
        for user in &w.users {
            for org in &w.orgs {
                let target = Node::role(org.role("r1"));
                server_counter += 1;
                let mut agent = fresh_agent(&w, server_counter);
                let outcome = agent.discover(
                    &Node::entity(user),
                    &target,
                    std::slice::from_ref(&constraint),
                );
                if let Some(monitor) = outcome.monitor {
                    let proof = monitor.proof();
                    let v = ProofValidator::new(ValidationContext::at(w.clock.now()));
                    v.validate(proof).expect("discovered proof validates");
                    assert!(
                        proof
                            .accumulate()
                            .satisfies(std::slice::from_ref(&constraint), w.oracle.declarations()),
                        "constraint violated by discovered proof"
                    );
                }
            }
        }
    }
}

mod completeness_property {
    //! The §4.2.1 completeness condition as a property: in any world
    //! where every node is tagged `S` and every delegation is stored at
    //! its subject's home wallet, tag-directed discovery finds a proof
    //! exactly when the union graph has one.

    use super::*;
    use proptest::prelude::*;

    /// A compact world description proptest can shrink.
    #[derive(Debug, Clone)]
    struct SmallWorld {
        /// Edges as (subject index, object role index) over a universe of
        /// 2 users + 4 roles (2 per org); subjects index the whole
        /// universe, objects only roles.
        edges: Vec<(usize, usize)>,
    }

    fn arb_world() -> impl Strategy<Value = SmallWorld> {
        prop::collection::vec((0usize..6, 0usize..4), 1..12).prop_map(|edges| SmallWorld { edges })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        #[test]
        fn discovery_complete_under_s_tags(world in arb_world(), query_user in 0usize..2, query_role in 0usize..4) {
            let mut rng = StdRng::seed_from_u64(4242);
            let g = SchnorrGroup::test_256();
            let clock = SimClock::new();
            let net = SimNet::new(clock.clone(), Ticks(1));
            let orgs: Vec<LocalEntity> =
                (0..2).map(|i| LocalEntity::generate(format!("O{i}"), g.clone(), &mut rng)).collect();
            let users: Vec<LocalEntity> =
                (0..2).map(|i| LocalEntity::generate(format!("U{i}"), g.clone(), &mut rng)).collect();
            let hosts: Vec<WalletHost> = (0..2)
                .map(|i| {
                    let addr = format!("w{i}");
                    net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()))
                })
                .collect();
            let tag = |i: usize| {
                DiscoveryTag::new(format!("w{i}").as_str())
                    .with_ttl(Ticks(100))
                    .with_subject_flag(SubjectFlag::Search)
            };
            // Universe: users 0-1, then roles (org 0: r0 r1, org 1: r0 r1).
            let node = |i: usize| -> Node {
                if i < 2 {
                    Node::entity(&users[i])
                } else {
                    let org = (i - 2) / 2;
                    Node::role(orgs[org].role(&format!("r{}", (i - 2) % 2)))
                }
            };
            let home_of = |n: &Node| -> usize {
                match n {
                    Node::Entity(id) => users.iter().position(|u| u.id() == *id).unwrap_or(0) % 2,
                    other => orgs.iter().position(|o| o.id() == other.namespace()).unwrap(),
                }
            };

            let mut oracle = DelegationGraph::new();
            for (serial, (s, o)) in world.edges.iter().enumerate() {
                let subject = node(*s);
                let object = node(o + 2);
                if subject == object {
                    continue;
                }
                let org = orgs.iter().find(|org| org.id() == object.namespace()).unwrap();
                let cert: Arc<SignedDelegation> = Arc::new(
                    org.delegate(subject.clone(), object.clone())
                        .serial(serial as u64)
                        .subject_tag(tag(home_of(&subject)))
                        .object_tag(tag(home_of(&object)))
                        .sign(org)
                        .unwrap(),
                );
                hosts[home_of(&subject)].wallet().publish(Arc::clone(&cert), vec![]).unwrap();
                oracle.insert(cert);
            }

            let server = net.add_host("server", Wallet::new("server", clock.clone()));
            let mut dir = Directory::new();
            for (i, org) in orgs.iter().enumerate() {
                dir.register_entity(org.id(), tag(i));
            }
            for (i, user) in users.iter().enumerate() {
                dir.register(Node::entity(user), tag(i % 2));
            }
            let mut agent = DiscoveryAgent::new(net.clone(), server, dir);

            let subject = node(query_user);
            let object = node(query_role + 2);
            let outcome = agent.discover(&subject, &object, &[]);
            let (oracle_proof, _) =
                oracle.direct_query(&subject, &object, &SearchOptions::at(clock.now()));
            prop_assert_eq!(
                outcome.found(),
                oracle_proof.is_some(),
                "world {:?}: discovery {} vs oracle {} for {} => {} (trace {:?})",
                world,
                outcome.found(),
                oracle_proof.is_some(),
                subject,
                object,
                outcome.trace
            );
        }
    }
}

#[test]
fn storage_discipline_passes_the_registry_audit() {
    let w = build(0x50a4);
    let hosts: Vec<drbac::core::WalletAddr> = (0..ORGS)
        .map(|i| org_wallet_addr(i).as_str().into())
        .collect();
    let violations = drbac::net::audit_store_compliance(&w.net, &hosts);
    assert!(
        violations.is_empty(),
        "soak world is registry-compliant: {violations:?}"
    );
}
