//! Scenario-matrix test: every delegation topology shape × the full
//! credential lifecycle (publish → query → serialize → revoke), so each
//! structural form the model supports is exercised through the whole
//! stack in one place.

mod common;

use std::sync::Arc;

use common::{lifecycle_world as world, LifecycleWorld as World};
use drbac::core::{
    AttrConstraint, AttrDeclaration, AttrOp, Node, Proof, ProofStep, SignedAttrDeclaration,
    SignedDelegation, SignedRevocation,
};
use drbac::wallet::Wallet;

/// One topology: a closure that populates the wallet and returns the
/// query target plus every credential on the expected proof.
type Topology = fn(&World) -> (Node, Vec<Arc<SignedDelegation>>);

fn direct_grant(w: &World) -> (Node, Vec<Arc<SignedDelegation>>) {
    let target = Node::role(w.owner.role("direct"));
    let cert = Arc::new(
        w.owner
            .delegate(Node::entity(&w.user), target.clone())
            .sign(&w.owner)
            .unwrap(),
    );
    w.wallet.publish(Arc::clone(&cert), vec![]).unwrap();
    (target, vec![cert])
}

fn role_chain(w: &World) -> (Node, Vec<Arc<SignedDelegation>>) {
    let mid = Node::role(w.owner.role("chain-mid"));
    let target = Node::role(w.owner.role("chain-end"));
    let c1 = Arc::new(
        w.owner
            .delegate(Node::entity(&w.user), mid.clone())
            .sign(&w.owner)
            .unwrap(),
    );
    let c2 = Arc::new(
        w.owner
            .delegate(mid, target.clone())
            .sign(&w.owner)
            .unwrap(),
    );
    w.wallet.publish(Arc::clone(&c1), vec![]).unwrap();
    w.wallet.publish(Arc::clone(&c2), vec![]).unwrap();
    (target, vec![c1, c2])
}

fn third_party(w: &World) -> (Node, Vec<Arc<SignedDelegation>>) {
    let role = w.owner.role("tp");
    let target = Node::role(role.clone());
    let grant = w
        .owner
        .delegate(Node::entity(&w.broker), Node::role_admin(role))
        .sign(&w.owner)
        .unwrap();
    let support = Proof::from_steps(vec![ProofStep::new(grant)]).unwrap();
    let cert = Arc::new(
        w.broker
            .delegate(Node::entity(&w.user), target.clone())
            .sign(&w.broker)
            .unwrap(),
    );
    w.wallet.publish(Arc::clone(&cert), vec![support]).unwrap();
    (target, vec![cert])
}

fn admin_chain_then_grant(w: &World) -> (Node, Vec<Arc<SignedDelegation>>) {
    // Assignment right flows through a role: owner.admins holds R',
    // broker holds owner.admins, broker issues R.
    let role = w.owner.role("ac");
    let target = Node::role(role.clone());
    let admins = Node::role(w.owner.role("ac-admins"));
    w.wallet
        .publish(
            w.owner
                .delegate(admins.clone(), Node::role_admin(role))
                .sign(&w.owner)
                .unwrap(),
            vec![],
        )
        .unwrap();
    w.wallet
        .publish(
            w.owner
                .delegate(Node::entity(&w.broker), admins)
                .sign(&w.owner)
                .unwrap(),
            vec![],
        )
        .unwrap();
    let cert = Arc::new(
        w.broker
            .delegate(Node::entity(&w.user), target.clone())
            .sign(&w.broker)
            .unwrap(),
    );
    w.wallet.publish(Arc::clone(&cert), vec![]).unwrap();
    (target, vec![cert])
}

fn attr_modulated(w: &World) -> (Node, Vec<Arc<SignedDelegation>>) {
    let bw = w.owner.attr("mx-bw", AttrOp::Min);
    let decl =
        SignedAttrDeclaration::sign(AttrDeclaration::new(bw.clone(), 500.0).unwrap(), &w.owner)
            .unwrap();
    w.wallet.publish_declaration(&decl).unwrap();
    let target = Node::role(w.owner.role("attr-target"));
    let cert = Arc::new(
        w.owner
            .delegate(Node::entity(&w.user), target.clone())
            .with_attr(bw, 200.0)
            .unwrap()
            .sign(&w.owner)
            .unwrap(),
    );
    w.wallet.publish(Arc::clone(&cert), vec![]).unwrap();
    (target, vec![cert])
}

fn depth_limited_direct(w: &World) -> (Node, Vec<Arc<SignedDelegation>>) {
    let target = Node::role(w.owner.role("dl"));
    let cert = Arc::new(
        w.owner
            .delegate(Node::entity(&w.user), target.clone())
            .max_extension_depth(0)
            .sign(&w.owner)
            .unwrap(),
    );
    w.wallet.publish(Arc::clone(&cert), vec![]).unwrap();
    (target, vec![cert])
}

const TOPOLOGIES: &[(&str, Topology)] = &[
    ("direct grant", direct_grant),
    ("role chain", role_chain),
    ("third-party with provided support", third_party),
    ("assignment chain then third-party", admin_chain_then_grant),
    ("attribute-modulated grant", attr_modulated),
    ("depth-limited direct grant", depth_limited_direct),
];

#[test]
fn every_topology_survives_the_full_lifecycle() {
    for (i, (name, build)) in TOPOLOGIES.iter().enumerate() {
        let w = world(1000 + i as u64);
        let (target, chain_certs) = build(&w);
        let subject = Node::entity(&w.user);

        // 1. Query succeeds with a live monitor.
        let monitor = w
            .wallet
            .query_direct(&subject, &target, &[])
            .unwrap_or_else(|| panic!("{name}: query failed"));
        assert!(monitor.is_valid(), "{name}");

        // 2. The proof survives a byte-level round trip and re-validates
        //    at a fresh wallet.
        let bytes = monitor.proof().to_bytes();
        let decoded = Proof::from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: decode {e}"));
        assert_eq!(&decoded, monitor.proof(), "{name}");
        let fresh = Wallet::new("fresh", w.clock.clone());
        fresh
            .monitor_external_proof(decoded)
            .unwrap_or_else(|e| panic!("{name}: revalidate {e}"));

        // 3. Wallet persistence preserves the answer.
        let image = w.wallet.export_bytes();
        let restored = Wallet::new("restored", w.clock.clone());
        restored
            .import_bytes(&image)
            .unwrap_or_else(|e| panic!("{name}: import {e}"));
        assert!(
            restored.query_direct(&subject, &target, &[]).is_some(),
            "{name}: restored query"
        );

        // 4. Revoking any chain credential kills the session and the
        //    answer.
        let victim = &chain_certs[0];
        let revocation = SignedRevocation::revoke(
            victim,
            if victim.delegation().issuer() == w.owner.id() {
                &w.owner
            } else {
                &w.broker
            },
            w.clock.now(),
        )
        .unwrap_or_else(|e| panic!("{name}: revoke {e}"));
        w.wallet
            .revoke(&revocation)
            .unwrap_or_else(|e| panic!("{name}: apply revoke {e}"));
        assert!(!monitor.is_valid(), "{name}: monitor survived revocation");
        assert!(
            w.wallet.query_direct(&subject, &target, &[]).is_none(),
            "{name}: answer survived"
        );
    }
}

#[test]
fn attribute_topology_respects_constraints_end_to_end() {
    let w = world(77);
    let (target, _) = attr_modulated(&w);
    let subject = Node::entity(&w.user);
    let bw = w.owner.attr("mx-bw", AttrOp::Min);
    assert!(w
        .wallet
        .query_direct(
            &subject,
            &target,
            &[AttrConstraint::at_least(bw.clone(), 200.0)]
        )
        .is_some());
    assert!(w
        .wallet
        .query_direct(&subject, &target, &[AttrConstraint::at_least(bw, 201.0)])
        .is_none());
}
