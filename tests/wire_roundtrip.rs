//! Wire-codec integration tests: every credential type must survive a
//! byte-level round trip with signatures intact, and malformed input must
//! be rejected without panicking.

use drbac::core::{
    AttrDeclaration, AttrOp, DiscoveryTag, LocalEntity, Node, Proof, ProofStep, ProofValidator,
    SignedAttrDeclaration, SignedDelegation, SignedRevocation, SubjectFlag, Ticks, Timestamp,
    ValidationContext,
};
use drbac::crypto::SchnorrGroup;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Fx {
    a: LocalEntity,
    b: LocalEntity,
    m: LocalEntity,
}

fn fx() -> Fx {
    let mut rng = StdRng::seed_from_u64(0x1717);
    let g = SchnorrGroup::test_256();
    Fx {
        a: LocalEntity::generate("A", g.clone(), &mut rng),
        b: LocalEntity::generate("B", g.clone(), &mut rng),
        m: LocalEntity::generate("M", g, &mut rng),
    }
}

/// A delegation exercising every optional field.
fn kitchen_sink_cert(f: &Fx) -> SignedDelegation {
    let bw = f.a.attr("bw", AttrOp::Min);
    let sc = f.a.attr("scale", AttrOp::Scale);
    let tag = DiscoveryTag::new("wallet.example")
        .with_auth_role(f.a.role("wallet"))
        .with_ttl(Ticks(30))
        .with_subject_flag(SubjectFlag::Search);
    f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
        .with_attr(bw, 123.5)
        .unwrap()
        .with_attr(sc, 0.25)
        .unwrap()
        .expires(Timestamp(1_000_000))
        .subject_tag(tag.clone())
        .object_tag(tag.clone())
        .issuer_tag(tag)
        .acting_as(Node::role_admin(f.a.role("r")))
        .serial(0xdead_beef)
        .sign(&f.a)
        .unwrap()
}

#[test]
fn signed_delegation_round_trip_preserves_everything() {
    let f = fx();
    let cert = kitchen_sink_cert(&f);
    let bytes = cert.to_bytes();
    let decoded = SignedDelegation::from_bytes(&bytes).unwrap();
    assert_eq!(decoded, cert);
    assert_eq!(decoded.id(), cert.id());
    // The signature still verifies after the round trip.
    decoded.verify(Timestamp(0)).unwrap();
}

#[test]
fn proof_with_nested_supports_round_trips() {
    let f = fx();
    let member = f.a.role("member");
    let grant =
        f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
            .sign(&f.a)
            .unwrap();
    let support = Proof::from_steps(vec![ProofStep::new(grant)]).unwrap();
    let cert =
        f.b.delegate(Node::entity(&f.m), Node::role(member))
            .sign(&f.b)
            .unwrap();
    let proof = Proof::from_steps(vec![ProofStep::new(cert).with_support(support)]).unwrap();

    let bytes = proof.to_bytes();
    let decoded = Proof::from_bytes(&bytes).unwrap();
    assert_eq!(decoded, proof);
    // Still validates (supports intact).
    ProofValidator::new(ValidationContext::at(Timestamp(0)))
        .validate(&decoded)
        .unwrap();
}

#[test]
fn trivial_proof_round_trips() {
    let f = fx();
    let proof = Proof::trivial(Node::entity(&f.m));
    let decoded = Proof::from_bytes(&proof.to_bytes()).unwrap();
    assert_eq!(decoded, proof);
    assert!(decoded.is_trivial());
}

#[test]
fn revocation_round_trips_and_verifies() {
    let f = fx();
    let cert =
        f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
            .sign(&f.a)
            .unwrap();
    let revocation = SignedRevocation::revoke(&cert, &f.a, Timestamp(9)).unwrap();
    let decoded = SignedRevocation::from_bytes(&revocation.to_bytes()).unwrap();
    assert_eq!(decoded, revocation);
    decoded.verify().unwrap();
    decoded.verify_against(&cert).unwrap();
}

#[test]
fn declaration_round_trips_and_verifies() {
    let f = fx();
    let bw = f.a.attr("bw", AttrOp::Subtract);
    let mut decl = AttrDeclaration::new(bw, 50.0).unwrap();
    decl.expires = Some(Timestamp(77));
    let signed = SignedAttrDeclaration::sign(decl, &f.a).unwrap();
    let decoded = SignedAttrDeclaration::from_bytes(&signed.to_bytes()).unwrap();
    assert_eq!(decoded, signed);
    decoded.verify(Timestamp(77)).unwrap();
    assert!(decoded.verify(Timestamp(78)).is_err());
}

#[test]
fn truncated_input_rejected_without_panic() {
    let f = fx();
    let bytes = kitchen_sink_cert(&f).to_bytes();
    for len in 0..bytes.len() {
        assert!(
            SignedDelegation::from_bytes(&bytes[..len]).is_err(),
            "truncation to {len} bytes must fail"
        );
    }
}

#[test]
fn wrong_domain_tag_rejected() {
    let f = fx();
    let cert = kitchen_sink_cert(&f);
    let proof_bytes = Proof::from_steps(vec![ProofStep::new(cert.clone())])
        .unwrap()
        .to_bytes();
    // Proof bytes are not a certificate.
    assert!(SignedDelegation::from_bytes(&proof_bytes).is_err());
    // And cert bytes are not a proof.
    assert!(Proof::from_bytes(&cert.to_bytes()).is_err());
}

#[test]
fn trailing_garbage_rejected() {
    let f = fx();
    let mut bytes = kitchen_sink_cert(&f).to_bytes();
    bytes.push(0);
    assert!(SignedDelegation::from_bytes(&bytes).is_err());
}

#[test]
fn bit_flips_never_yield_a_verifying_forgery() {
    // Flip each byte of the encoding; the result must either fail to
    // decode or fail signature verification — never verify as valid.
    let f = fx();
    let cert = kitchen_sink_cert(&f);
    let bytes = cert.to_bytes();
    // Sample positions across the buffer (every 7th byte keeps this fast).
    for pos in (0..bytes.len()).step_by(7) {
        let mut mutated = bytes.clone();
        mutated[pos] ^= 0x01;
        if mutated == bytes {
            continue;
        }
        if let Ok(decoded) = SignedDelegation::from_bytes(&mutated) {
            if decoded == cert {
                continue; // canonical-equivalent decode (shouldn't happen)
            }
            assert!(
                decoded.verify(Timestamp(0)).is_err(),
                "bit flip at {pos} produced a verifying forgery"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Frame-level fuzz: the TCP framing in `drbac::net::wire` must reject
// torn frames, oversized length prefixes, and garbage headers with an
// error — never a panic, and never an allocation sized by attacker-
// controlled bytes.
// ---------------------------------------------------------------------------

mod frame {
    use drbac::net::wire::{
        read_frame, write_frame, FrameKind, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN,
    };
    use proptest::prelude::*;

    fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame(&mut buf, kind, payload).unwrap();
        buf
    }

    #[test]
    fn torn_frame_every_truncation_errors() {
        let frame = encode_frame(FrameKind::Request, b"role-gate payload bytes");
        for len in 0..frame.len() {
            let err = read_frame(&mut &frame[..len]).expect_err("torn frame must error");
            assert!(
                matches!(err, WireError::Io(_)),
                "truncation to {len} bytes surfaced {err:?}, expected unexpected-EOF"
            );
        }
        // The untorn frame still reads back, so the loop above tested
        // real truncations of a valid frame.
        assert!(read_frame(&mut frame.as_slice()).is_ok());
    }

    #[test]
    fn oversized_length_prefix_errors_before_allocating() {
        // Header promising u32::MAX payload bytes — the decoder must
        // refuse at the header, not try to allocate 4 GiB.
        for promised in [MAX_FRAME_LEN as u32 + 1, u32::MAX] {
            let mut frame = Vec::new();
            frame.extend_from_slice(b"dRBW");
            frame.push(1); // version
            frame.push(1); // kind: request
            frame.extend_from_slice(&promised.to_be_bytes());
            frame.extend_from_slice(&0u32.to_be_bytes()); // crc (unread)
            let err = read_frame(&mut frame.as_slice()).unwrap_err();
            assert!(
                matches!(err, WireError::Oversized(n) if n == u64::from(promised)),
                "length {promised} surfaced {err:?}"
            );
        }
    }

    #[test]
    fn garbage_header_fields_error_specifically() {
        let good = encode_frame(FrameKind::Reply, b"x");
        // Bad magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            WireError::BadMagic(_)
        ));
        // Unknown version.
        let mut bad = good.clone();
        bad[4] = 0x7f;
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            WireError::BadVersion(0x7f)
        ));
        // Unknown frame kind.
        let mut bad = good.clone();
        bad[5] = 0xee;
        assert!(matches!(
            read_frame(&mut bad.as_slice()).unwrap_err(),
            WireError::UnknownKind(0xee)
        ));
    }

    #[test]
    fn payload_corruption_is_caught_by_crc() {
        let frame = encode_frame(FrameKind::Push, b"revocation notice");
        for pos in FRAME_HEADER_LEN..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(read_frame(&mut bad.as_slice()).unwrap_err(), WireError::Crc { .. }),
                "payload flip at {pos} escaped the checksum"
            );
        }
    }

    // -- traced (version-2) frames and the Stats/Health payloads -------

    use drbac::net::proto::{Reply, Request};
    use drbac::net::wire::{
        decode_reply, decode_request, encode_reply, encode_request, write_frame_traced,
        TraceContext, WIRE_VERSION_TRACED,
    };
    use drbac::store::crc32;

    fn encode_traced(kind: FrameKind, payload: &[u8], ctx: TraceContext) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame_traced(&mut buf, kind, payload, Some(ctx)).unwrap();
        buf
    }

    #[test]
    fn torn_traced_frame_every_truncation_errors() {
        let ctx = TraceContext {
            trace_id: 0x1122_3344_5566_7788,
            parent_span: 0x99aa_bbcc_ddee_ff00,
        };
        let frame = encode_traced(FrameKind::Request, b"stats probe", ctx);
        assert_eq!(frame[4], WIRE_VERSION_TRACED);
        for len in 0..frame.len() {
            let err = read_frame(&mut &frame[..len]).expect_err("torn traced frame must error");
            assert!(
                matches!(err, WireError::Io(_)),
                "truncation to {len} bytes surfaced {err:?}, expected unexpected-EOF"
            );
        }
        let decoded = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(decoded.trace, Some(ctx));
    }

    #[test]
    fn traced_frame_payload_corruption_is_caught_by_crc() {
        let ctx = TraceContext {
            trace_id: 7,
            parent_span: 0,
        };
        let frame = encode_traced(FrameKind::Request, b"health probe", ctx);
        // Everything after the header + 19-byte ext block is payload.
        for pos in FRAME_HEADER_LEN + 19..frame.len() {
            let mut bad = frame.clone();
            bad[pos] ^= 0x40;
            assert!(
                matches!(read_frame(&mut bad.as_slice()).unwrap_err(), WireError::Crc { .. }),
                "traced-frame payload flip at {pos} escaped the checksum"
            );
        }
    }

    #[test]
    fn old_peer_v1_frames_still_decode_without_trace() {
        // A sender that predates tracing emits version-1 frames; they
        // must decode exactly as before, with no trace context.
        let payload = encode_request(&Request::Stats);
        let buf = encode_frame(FrameKind::Request, &payload);
        assert_eq!(buf[4], 1, "trace-less sends stay version 1");
        let frame = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame.trace, None);
        assert!(matches!(
            decode_request(&frame.payload).unwrap(),
            Request::Stats
        ));
    }

    #[test]
    fn stats_and_health_frames_survive_a_full_wire_pass() {
        // Requests are payload-free; replies carry the snapshot /
        // report. Canonical re-encode equality proves lossless decode.
        for req in [Request::Stats, Request::Health] {
            let buf = encode_frame(FrameKind::Request, &encode_request(&req));
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            let decoded = decode_request(&frame.payload).unwrap();
            assert_eq!(encode_request(&decoded), encode_request(&req));
        }

        let mut snap = drbac::obs::Snapshot::default();
        snap.counters.insert("drbac.net.tcp.accept.count".into(), 3);
        snap.gauges.insert("drbac.store.segments".into(), -2);
        snap.histograms.insert(
            "drbac.net.tcp.service.ns".into(),
            drbac::obs::HistogramSnapshot {
                count: 240,
                sum: 1 << 30,
                max: 6_383_575,
                p50: 16_383,
                p90: 262_143,
                p99: 2_097_151,
                p999: 8_388_607,
            },
        );
        let health = drbac::net::HealthReport {
            ok: true,
            wallet: "w0".into(),
            uptime_ns: 812_345_678,
            delegations: 12,
            subscribers: 2,
            served_requests: 240,
        };
        for reply in [Reply::Stats(snap), Reply::Health(health)] {
            let buf = encode_frame(FrameKind::Reply, &encode_reply(&reply));
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            let decoded = decode_reply(&frame.payload).unwrap();
            assert_eq!(encode_reply(&decoded), encode_reply(&reply));
        }
    }

    #[test]
    fn stats_reply_corruption_never_panics() {
        // Flip each byte of an encoded Stats reply: the decoder must
        // return (Ok or Err), never panic or over-allocate.
        let mut snap = drbac::obs::Snapshot::default();
        snap.counters.insert("c".into(), u64::MAX);
        snap.histograms
            .insert("h".into(), drbac::obs::HistogramSnapshot::default());
        let bytes = encode_reply(&Reply::Stats(snap));
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0xff;
            let _ = decode_reply(&bad);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary bytes never panic the frame reader, and any `Ok`
        /// it returns stays within the frame size bound.
        #[test]
        fn prop_frame_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            if let Ok(frame) = read_frame(&mut bytes.as_slice()) {
                prop_assert!(frame.payload.len() <= MAX_FRAME_LEN);
            }
        }

        /// Arbitrary extension blocks spliced into a version-2 header
        /// never panic the reader — unknown tags are skipped, malformed
        /// blocks error cleanly.
        #[test]
        fn prop_extension_blocks_never_panic(ext in prop::collection::vec(any::<u8>(), 0..64)) {
            let payload = b"p";
            let mut buf = Vec::new();
            buf.extend_from_slice(b"dRBW");
            buf.push(WIRE_VERSION_TRACED);
            buf.push(1); // kind: request
            buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            buf.extend_from_slice(&crc32(payload).to_be_bytes());
            buf.extend_from_slice(&ext);
            buf.extend_from_slice(payload);
            if let Ok(frame) = read_frame(&mut buf.as_slice()) {
                prop_assert_eq!(frame.payload, payload.to_vec());
            }
        }

        /// Any trace context round-trips bit-exact through the ext
        /// block (trace_id 0 means "no trace" and is never emitted).
        #[test]
        fn prop_trace_context_round_trips(trace_id in 1u64..=u64::MAX, parent_span in any::<u64>()) {
            let ctx = TraceContext { trace_id, parent_span };
            let buf = encode_traced(FrameKind::Request, b"q", ctx);
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(frame.trace, Some(ctx));
        }

        /// Any payload round-trips through the framing layer intact.
        #[test]
        fn prop_frames_round_trip(payload in prop::collection::vec(any::<u8>(), 0..2048)) {
            let buf = encode_frame(FrameKind::PushRegister, &payload);
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(frame.kind, FrameKind::PushRegister);
            prop_assert_eq!(frame.payload, payload);
        }
    }
}

// ---------------------------------------------------------------------------
// Multiplexed (version-3) frames: request ids survive interleaving and
// reordering, torn v3 frames error cleanly, and the batched-reader
// helper `buffered_frame_len` never lies about a frame boundary.
// ---------------------------------------------------------------------------

mod mux {
    use drbac::net::wire::{
        buffered_frame_len, read_frame, write_frame, write_frame_mux, write_frame_traced,
        FrameKind, TraceContext, WireError, WIRE_VERSION_MUX,
    };
    use proptest::prelude::*;

    fn mux_frame(kind: FrameKind, payload: &[u8], id: u64, trace: Option<TraceContext>) -> Vec<u8> {
        let mut buf = Vec::new();
        write_frame_mux(&mut buf, kind, payload, id, trace).unwrap();
        buf
    }

    #[test]
    fn interleaved_streams_keep_their_ids() {
        // One connection carrying two logical request streams plus a
        // v1 push register and a v2 traced request, concatenated the
        // way a pipelining client would write them. Every frame must
        // come back with exactly its own id (or none).
        let ctx = TraceContext {
            trace_id: 5,
            parent_span: 6,
        };
        let mut stream = Vec::new();
        stream.extend_from_slice(&mux_frame(FrameKind::Request, b"q-17", 17, None));
        stream.extend_from_slice(&mux_frame(FrameKind::Request, b"q-903", 903, Some(ctx)));
        write_frame(&mut stream, FrameKind::PushRegister, b"wallet.b").unwrap();
        write_frame_traced(&mut stream, FrameKind::Request, b"strict", Some(ctx)).unwrap();
        stream.extend_from_slice(&mux_frame(FrameKind::Request, b"q-18", 18, None));

        let mut r = stream.as_slice();
        let expected: [(Option<u64>, &[u8]); 5] = [
            (Some(17), b"q-17"),
            (Some(903), b"q-903"),
            (None, b"wallet.b"),
            (None, b"strict"),
            (Some(18), b"q-18"),
        ];
        for (id, payload) in expected {
            let frame = read_frame(&mut r).unwrap();
            assert_eq!(frame.request_id, id);
            assert_eq!(frame.payload, payload);
        }
        assert!(r.is_empty());
    }

    #[test]
    fn out_of_order_replies_carry_their_own_ids() {
        // The daemon may answer 19 before 18; ids are the only
        // correlation, so they must survive reordering untouched.
        let mut stream = Vec::new();
        for id in [19u64, 17, 18] {
            stream.extend_from_slice(&mux_frame(
                FrameKind::Reply,
                format!("r-{id}").as_bytes(),
                id,
                None,
            ));
        }
        let mut r = stream.as_slice();
        for want in [19u64, 17, 18] {
            let frame = read_frame(&mut r).unwrap();
            assert_eq!(frame.request_id, Some(want));
            assert_eq!(frame.payload, format!("r-{want}").as_bytes());
        }
    }

    #[test]
    fn torn_mux_frame_every_truncation_errors() {
        let frame = mux_frame(
            FrameKind::Request,
            b"pipelined query",
            u64::MAX,
            Some(TraceContext {
                trace_id: 1,
                parent_span: 2,
            }),
        );
        assert_eq!(frame[4], WIRE_VERSION_MUX);
        for len in 0..frame.len() {
            let err = read_frame(&mut &frame[..len]).expect_err("torn mux frame must error");
            assert!(
                matches!(err, WireError::Io(_)),
                "truncation to {len} bytes surfaced {err:?}, expected unexpected-EOF"
            );
        }
        assert_eq!(
            read_frame(&mut frame.as_slice()).unwrap().request_id,
            Some(u64::MAX)
        );
    }

    #[test]
    fn buffered_frame_len_matches_all_three_versions() {
        let ctx = TraceContext {
            trace_id: 3,
            parent_span: 4,
        };
        let mut v1 = Vec::new();
        write_frame(&mut v1, FrameKind::Request, b"abc").unwrap();
        let mut v2 = Vec::new();
        write_frame_traced(&mut v2, FrameKind::Request, b"abcd", Some(ctx)).unwrap();
        let v3 = mux_frame(FrameKind::Reply, b"abcde", 7, None);
        let v3t = mux_frame(FrameKind::Reply, b"abcdef", 7, Some(ctx));
        for frame in [v1, v2, v3, v3t] {
            assert_eq!(buffered_frame_len(&frame), Some(frame.len()));
            // With trailing bytes of a next frame present, the answer
            // must still be this frame's boundary.
            let mut two = frame.clone();
            two.extend_from_slice(&frame);
            assert_eq!(buffered_frame_len(&two), Some(frame.len()));
        }
    }

    #[test]
    fn buffered_frame_len_never_overclaims_on_prefixes() {
        // For every prefix of a valid frame the helper either says
        // "can't tell yet" or names the true total — a wrong Some
        // would make a batched reader block on a frame it believed
        // complete.
        let frame = mux_frame(
            FrameKind::Request,
            b"window",
            42,
            Some(TraceContext {
                trace_id: 9,
                parent_span: 0,
            }),
        );
        for len in 0..frame.len() {
            let peek = buffered_frame_len(&frame[..len]);
            assert!(
                peek.is_none() || peek == Some(frame.len()),
                "prefix of {len} bytes claimed total {peek:?}, real total {}",
                frame.len()
            );
        }
        assert_eq!(buffered_frame_len(b"not a frame at all"), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any request id round-trips bit-exact — ids are opaque
        /// tokens, so no value may be special-cased by the codec.
        #[test]
        fn prop_any_request_id_round_trips(id in any::<u64>()) {
            let buf = mux_frame(FrameKind::Request, b"q", id, None);
            let frame = read_frame(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(frame.request_id, Some(id));
        }

        /// Arbitrary bytes after a v3 header (fuzzing the id + ext
        /// region) never panic the reader, and `buffered_frame_len`
        /// never panics on any byte soup.
        #[test]
        fn prop_mux_tail_never_panics(tail in prop::collection::vec(any::<u8>(), 0..64)) {
            let mut buf = Vec::new();
            buf.extend_from_slice(b"dRBW");
            buf.push(WIRE_VERSION_MUX);
            buf.push(2); // kind: reply
            buf.extend_from_slice(&1u32.to_be_bytes());
            buf.extend_from_slice(&0u32.to_be_bytes());
            buf.extend_from_slice(&tail);
            let _ = read_frame(&mut buf.as_slice());
            let _ = buffered_frame_len(&buf);
        }

        /// A stream of many v3 frames with arbitrary ids drains frame
        /// by frame via `buffered_frame_len`, reproducing the batched
        /// reader's loop: every boundary is exact, every id lands.
        #[test]
        fn prop_batched_drain_recovers_every_frame(ids in prop::collection::vec(any::<u64>(), 1..12)) {
            let mut stream = Vec::new();
            for &id in &ids {
                stream.extend_from_slice(&mux_frame(FrameKind::Reply, &id.to_be_bytes(), id, None));
            }
            let mut rest = stream.as_slice();
            let mut seen = Vec::new();
            while let Some(total) = buffered_frame_len(rest) {
                prop_assert!(total <= rest.len());
                let frame = read_frame(&mut &rest[..total]).unwrap();
                seen.push(frame.request_id.unwrap());
                rest = &rest[total..];
            }
            prop_assert!(rest.is_empty());
            prop_assert_eq!(seen, ids);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random delegations (structure + attributes + serial) round trip.
    #[test]
    fn prop_random_delegations_round_trip(
        serial in any::<u64>(),
        expires in prop::option::of(0u64..u64::MAX),
        operand in 0.0..10_000.0f64,
        tick in any::<bool>(),
    ) {
        let f = fx();
        let bw = f.a.attr("bw", AttrOp::Min);
        let object = if tick {
            Node::role_admin(f.a.role("r"))
        } else {
            Node::role(f.a.role("r"))
        };
        let mut builder = f.a
            .delegate(Node::entity(&f.m), object)
            .with_attr(bw, operand).unwrap()
            .serial(serial);
        if let Some(at) = expires {
            builder = builder.expires(Timestamp(at));
        }
        let cert = builder.sign(&f.a).unwrap();
        let decoded = SignedDelegation::from_bytes(&cert.to_bytes()).unwrap();
        prop_assert_eq!(&decoded, &cert);
        prop_assert_eq!(decoded.id(), cert.id());
    }

    /// Arbitrary garbage never panics the decoder.
    #[test]
    fn prop_garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = SignedDelegation::from_bytes(&bytes);
        let _ = Proof::from_bytes(&bytes);
        let _ = SignedRevocation::from_bytes(&bytes);
        let _ = SignedAttrDeclaration::from_bytes(&bytes);
    }
}
