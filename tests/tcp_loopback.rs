//! Loopback TCP parity suite: the flows `tests/end_to_end.rs` proves
//! over `SimNet` — cross-wallet discovery, role-gated switchboard
//! connect, revocation push — must behave identically when every
//! wallet sits behind a real `WalletDaemon` socket and the agent's
//! transport is `TcpTransport`. Plus the failure path the simulator
//! cannot exercise: killing a daemon mid-subscription and watching the
//! `SubscriberLink` reconnect, resubscribe, and keep delivering pushes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use drbac::core::{
    DiscoveryTag, LocalEntity, Node, Proof, ProofStep, SignedDelegation, SignedRevocation,
    SimClock, SubjectFlag, Ticks,
};
use drbac::crypto::SchnorrGroup;
use drbac::net::proto::{Reply, Request};
use drbac::net::{
    Directory, DiscoveryAgent, RetryPolicy, SimNet, SubscriberLink, Switchboard, TcpConfig,
    TcpTransport, Transport, WalletDaemon,
};
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Polls `cond` until it holds or `timeout` lapses.
fn wait_until(timeout: Duration, cond: impl Fn() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    cond()
}

fn counter(name: &str) -> u64 {
    drbac::obs::global().counter(name).get()
}

/// A three-org delegation chain `User -> Org0.p -> Org1.p ->
/// Org2.resource`, each hop published in its subject's home wallet
/// (addressed `w0`/`w1`/`w2`), plus the user's presented credential.
struct Chain {
    orgs: Vec<LocalEntity>,
    user: LocalEntity,
    wallets: Vec<Wallet>,
    user_cert: Arc<SignedDelegation>,
    clock: SimClock,
}

fn build_chain(seed: u64) -> Chain {
    let mut rng = StdRng::seed_from_u64(seed);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let orgs: Vec<LocalEntity> = (0..3)
        .map(|i| LocalEntity::generate(format!("Org{i}"), group.clone(), &mut rng))
        .collect();
    let user = LocalEntity::generate("User", group, &mut rng);
    let wallets: Vec<Wallet> = (0..3)
        .map(|i| Wallet::new(format!("w{i}").as_str(), clock.clone()))
        .collect();
    let tag = |i: usize| {
        DiscoveryTag::new(format!("w{i}").as_str())
            .with_ttl(Ticks(60))
            .with_subject_flag(SubjectFlag::Search)
    };
    let user_cert = Arc::new(
        orgs[0]
            .delegate(Node::entity(&user), Node::role(orgs[0].role("p")))
            .object_tag(tag(0))
            .sign(&orgs[0])
            .unwrap(),
    );
    wallets[0].publish(Arc::clone(&user_cert), vec![]).unwrap();
    for i in 0..2 {
        let object = if i == 1 {
            orgs[2].role("resource")
        } else {
            orgs[i + 1].role("p")
        };
        wallets[i]
            .publish(
                orgs[i + 1]
                    .delegate(Node::role(orgs[i].role("p")), Node::role(object))
                    .subject_tag(tag(i))
                    .object_tag(tag(i + 1))
                    .sign(&orgs[i + 1])
                    .unwrap(),
                vec![],
            )
            .unwrap();
    }
    Chain {
        orgs,
        user,
        wallets,
        user_cert,
        clock,
    }
}

/// The discovery directory every variant starts from: the user's tag
/// plus each org's home.
fn directory_for(chain: &Chain) -> Directory {
    let tag = |i: usize| {
        DiscoveryTag::new(format!("w{i}").as_str())
            .with_ttl(Ticks(60))
            .with_subject_flag(SubjectFlag::Search)
    };
    let mut directory = Directory::new();
    directory.register(Node::entity(&chain.user), tag(0));
    for (i, org) in chain.orgs.iter().enumerate() {
        directory.register_entity(org.id(), tag(i));
    }
    directory
}

/// Serves each chain wallet behind its own loopback daemon, returning
/// the daemons plus a transport routed to them (`w<i>` → `127.0.0.1:p`).
fn serve_chain(chain: &Chain) -> (Vec<WalletDaemon>, Arc<TcpTransport>) {
    let transport = Arc::new(TcpTransport::new(TcpConfig::fast()));
    let daemons: Vec<WalletDaemon> = chain
        .wallets
        .iter()
        .map(|w| WalletDaemon::bind("127.0.0.1:0", w.clone(), TcpConfig::fast()).unwrap())
        .collect();
    for (i, d) in daemons.iter().enumerate() {
        transport.add_route(format!("w{i}").as_str(), d.local_addr());
    }
    (daemons, transport)
}

/// Tag-directed discovery finds the same proof over SimNet and over
/// loopback daemons: same decision, same chain shape, same endpoints,
/// same set of wallets contacted.
#[test]
fn discovery_parity_simnet_vs_tcp() {
    // SimNet shape.
    let sim_chain = build_chain(41);
    let net = SimNet::new(sim_chain.clock.clone(), Ticks(1));
    for (i, w) in sim_chain.wallets.iter().enumerate() {
        net.add_host(format!("w{i}").as_str(), w.clone());
    }
    let sim_local = Wallet::new("agent.sim", sim_chain.clock.clone());
    let presented = Proof::from_steps(vec![ProofStep::new(Arc::clone(&sim_chain.user_cert))])
        .unwrap();
    sim_local.absorb_proof(&presented, &"user.device".into()).unwrap();
    let mut sim_agent = DiscoveryAgent::new(net.clone(), sim_local, directory_for(&sim_chain));
    let sim_outcome = sim_agent.discover(
        &Node::entity(&sim_chain.user),
        &Node::role(sim_chain.orgs[2].role("resource")),
        &[],
    );

    // TCP shape: the same chain (same seed → same keys and certs),
    // each wallet behind a real socket daemon.
    let tcp_chain = build_chain(41);
    let (daemons, transport) = serve_chain(&tcp_chain);
    let tcp_local = Wallet::new("agent.tcp", tcp_chain.clock.clone());
    let presented = Proof::from_steps(vec![ProofStep::new(Arc::clone(&tcp_chain.user_cert))])
        .unwrap();
    tcp_local.absorb_proof(&presented, &"user.device".into()).unwrap();
    let mut tcp_agent = DiscoveryAgent::new(
        Arc::clone(&transport),
        tcp_local,
        directory_for(&tcp_chain),
    );
    let tcp_outcome = tcp_agent.discover(
        &Node::entity(&tcp_chain.user),
        &Node::role(tcp_chain.orgs[2].role("resource")),
        &[],
    );

    assert!(sim_outcome.found(), "simnet trace: {:?}", sim_outcome.trace);
    assert!(tcp_outcome.found(), "tcp trace: {:?}", tcp_outcome.trace);
    let sim_proof = sim_outcome.monitor.as_ref().unwrap().proof().clone();
    let tcp_proof = tcp_outcome.monitor.as_ref().unwrap().proof().clone();
    assert_eq!(sim_proof.chain_len(), tcp_proof.chain_len());
    assert_eq!(sim_proof.subject(), tcp_proof.subject());
    assert_eq!(sim_proof.object(), tcp_proof.object());
    assert_eq!(sim_proof.to_bytes(), tcp_proof.to_bytes(), "same wire bytes");
    assert_eq!(
        sim_outcome.wallets_contacted, tcp_outcome.wallets_contacted,
        "same wallets contacted"
    );
    for d in daemons {
        d.shutdown();
    }
}

/// Role-gated switchboard connect works unchanged over TCP, and a
/// revocation delivered to the daemon pushes through the verifier's
/// subscriber link and closes the channel.
#[test]
fn role_gated_connect_and_revocation_push_over_tcp() {
    let mut rng = StdRng::seed_from_u64(42);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let member = LocalEntity::generate("Member", group, &mut rng);

    let home = Wallet::new("home", clock.clone());
    let cert = owner
        .delegate(Node::entity(&member), Node::role(owner.role("r")))
        .sign(&owner)
        .unwrap();
    let cert_id = cert.id();
    home.publish(cert, vec![]).unwrap();

    let daemon = WalletDaemon::bind("127.0.0.1:0", home, TcpConfig::fast()).unwrap();
    let transport = Arc::new(TcpTransport::new(TcpConfig::fast()));
    transport.add_route("home", daemon.local_addr());

    // The verifier keeps its own wallet and a persistent push link so
    // the daemon's revocation pushes reach it.
    let verifier = Wallet::new("verifier", clock.clone());
    let link = SubscriberLink::open("home", verifier.clone(), Arc::clone(&transport)).unwrap();

    let switchboard = Switchboard::new();
    let channel = switchboard
        .connect_role_gated_remote(
            &member,
            &owner,
            transport.as_ref(),
            &"home".into(),
            &verifier,
            owner.role("r"),
            &RetryPolicy::standard(),
            clock.now(),
            &mut rng,
        )
        .expect("role proven over TCP");
    assert!(channel.is_open());
    assert!(
        wait_until(Duration::from_secs(2), || {
            !daemon.subscribers_of(cert_id).is_empty()
        }),
        "connect registered a coherence subscription at the daemon"
    );

    // Revoke at the home daemon: the push must close the channel.
    let revocation = {
        let cert = daemon.wallet().get(cert_id).unwrap();
        SignedRevocation::revoke(&cert, &owner, clock.now()).unwrap()
    };
    let reply = transport
        .request(&"home".into(), Request::Revoke(revocation))
        .unwrap();
    assert!(matches!(reply, Reply::Revoked(_)));
    assert!(
        wait_until(Duration::from_secs(2), || !channel.is_open()),
        "revocation push closed the role-gated channel"
    );
    link.close();
    daemon.shutdown();
}

/// The revocation-push outcome is identical over SimNet and TCP: the
/// subscriber's monitor invalidates and a fresh query denies.
#[test]
fn revocation_push_parity_simnet_vs_tcp() {
    // --- SimNet shape -------------------------------------------------
    let mut rng = StdRng::seed_from_u64(43);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let member = LocalEntity::generate("Member", group.clone(), &mut rng);
    let home = net.add_host("home", Wallet::new("home", clock.clone()));
    let server = net.add_host("server", Wallet::new("server", clock.clone()));
    let cert = Arc::new(
        owner
            .delegate(Node::entity(&member), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
    );
    home.wallet().publish(Arc::clone(&cert), vec![]).unwrap();
    let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();
    server.wallet().absorb_proof(&proof, home.addr()).unwrap();
    net.request(
        &"home".into(),
        Request::Subscribe {
            delegation: cert.id(),
            subscriber: "server".into(),
        },
    )
    .unwrap();
    let sim_monitor = server
        .wallet()
        .query_direct(&Node::entity(&member), &Node::role(owner.role("r")), &[])
        .unwrap();
    assert!(sim_monitor.is_valid());
    let revocation = SignedRevocation::revoke(&cert, &owner, clock.now()).unwrap();
    net.request(&"home".into(), Request::Revoke(revocation)).unwrap();
    net.run_until_idle();
    let sim_invalidated = !sim_monitor.is_valid();
    let sim_requery = server
        .wallet()
        .query_direct(&Node::entity(&member), &Node::role(owner.role("r")), &[])
        .is_none();

    // --- TCP shape (same keys: same seed) -----------------------------
    let mut rng = StdRng::seed_from_u64(43);
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let member = LocalEntity::generate("Member", group.clone(), &mut rng);
    let home = Wallet::new("home", clock.clone());
    let subscriber = Wallet::new("server", clock.clone());
    let cert = Arc::new(
        owner
            .delegate(Node::entity(&member), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
    );
    home.publish(Arc::clone(&cert), vec![]).unwrap();
    let daemon = WalletDaemon::bind("127.0.0.1:0", home, TcpConfig::fast()).unwrap();
    let transport = Arc::new(TcpTransport::new(TcpConfig::fast()));
    transport.add_route("home", daemon.local_addr());
    let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();
    subscriber.absorb_proof(&proof, &"home".into()).unwrap();
    let link = SubscriberLink::open("home", subscriber.clone(), Arc::clone(&transport)).unwrap();
    link.track(cert.id());
    assert!(
        wait_until(Duration::from_secs(2), || {
            !daemon.subscribers_of(cert.id()).is_empty()
        }),
        "subscription registered"
    );
    let tcp_monitor = subscriber
        .query_direct(&Node::entity(&member), &Node::role(owner.role("r")), &[])
        .unwrap();
    assert!(tcp_monitor.is_valid());
    let revocation = SignedRevocation::revoke(&cert, &owner, clock.now()).unwrap();
    let reply = transport
        .request(&"home".into(), Request::Revoke(revocation))
        .unwrap();
    assert!(matches!(reply, Reply::Revoked(_)));
    let tcp_invalidated = wait_until(Duration::from_secs(2), || !tcp_monitor.is_valid());
    let tcp_requery = subscriber
        .query_direct(&Node::entity(&member), &Node::role(owner.role("r")), &[])
        .is_none();

    assert!(sim_invalidated && tcp_invalidated, "both pushes landed");
    assert_eq!(sim_requery, tcp_requery, "both deny after revocation");
    link.close();
    daemon.shutdown();
}

/// Killing the daemon mid-subscription: the `SubscriberLink` notices,
/// reconnects to the restarted daemon (same port), re-registers its
/// push channel, resubscribes, and a post-restart revocation still
/// reaches the subscriber. `drbac.net.tcp.reconnect.count` increments.
#[test]
fn daemon_kill_mid_subscription_reconnects_and_resubscribes() {
    let mut rng = StdRng::seed_from_u64(44);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let member = LocalEntity::generate("Member", group, &mut rng);

    let home = Wallet::new("home", clock.clone());
    let cert = Arc::new(
        owner
            .delegate(Node::entity(&member), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
    );
    home.publish(Arc::clone(&cert), vec![]).unwrap();

    let daemon = WalletDaemon::bind("127.0.0.1:0", home.clone(), TcpConfig::fast()).unwrap();
    let port = daemon.local_addr();
    let transport = Arc::new(TcpTransport::new(TcpConfig::fast()));
    transport.add_route("home", port);

    let subscriber = Wallet::new("server", clock.clone());
    let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();
    subscriber.absorb_proof(&proof, &"home".into()).unwrap();
    let link = SubscriberLink::open("home", subscriber.clone(), Arc::clone(&transport)).unwrap();
    link.track(cert.id());
    assert!(wait_until(Duration::from_secs(2), || {
        !daemon.subscribers_of(cert.id()).is_empty()
    }));
    let monitor = subscriber
        .query_direct(&Node::entity(&member), &Node::role(owner.role("r")), &[])
        .unwrap();
    assert!(monitor.is_valid());

    // Kill the daemon mid-subscription. Its subscriber registry (and
    // the push link) die with it.
    let reconnects_before = counter("drbac.net.tcp.reconnect.count");
    daemon.shutdown();
    drop(daemon);
    // Stale pooled connections point at the dead daemon.
    transport.drain_pool();

    // Restart on the same port, serving the same (shared-state) wallet
    // — the registry starts empty, like a SimNet host after crash.
    let restarted = WalletDaemon::bind(port, home, TcpConfig::fast()).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || {
            !restarted.subscribers_of(cert.id()).is_empty()
        }),
        "link reconnected and resubscribed at the restarted daemon"
    );
    assert!(
        counter("drbac.net.tcp.reconnect.count") > reconnects_before,
        "reconnect counter incremented"
    );

    // A revocation issued *after* the restart still reaches the
    // subscriber over the re-established push link.
    let revocation = SignedRevocation::revoke(&cert, &owner, clock.now()).unwrap();
    let reply = transport
        .request(&"home".into(), Request::Revoke(revocation))
        .unwrap();
    assert!(matches!(reply, Reply::Revoked(_)));
    assert!(
        wait_until(Duration::from_secs(2), || !monitor.is_valid()),
        "post-restart revocation push invalidated the subscriber's monitor"
    );
    link.close();
    restarted.shutdown();
}

/// Stats and Health are served over the wire: a live daemon answers
/// `Request::Health` with its inventory and `Request::Stats` with a
/// snapshot whose service-time histogram covers the requests it served.
#[test]
fn stats_and_health_served_over_the_wire() {
    let mut rng = StdRng::seed_from_u64(45);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let member = LocalEntity::generate("Member", group, &mut rng);

    let home = Wallet::new("home.stats", clock);
    home.publish(
        owner
            .delegate(Node::entity(&member), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
        vec![],
    )
    .unwrap();
    let daemon = WalletDaemon::bind("127.0.0.1:0", home, TcpConfig::fast()).unwrap();
    let transport = TcpTransport::new(TcpConfig::fast());
    transport.add_route("home.stats", daemon.local_addr());

    // Serve a real query first so the service histogram has traffic.
    let reply = transport
        .request(
            &"home.stats".into(),
            Request::DirectQuery {
                subject: Node::entity(&member),
                object: Node::role(owner.role("r")),
                constraints: vec![],
            },
        )
        .unwrap();
    assert!(matches!(reply, Reply::Proofs(ref p) if !p.is_empty()));

    let Reply::Health(health) = transport
        .request(&"home.stats".into(), Request::Health)
        .unwrap()
    else {
        panic!("expected a health report");
    };
    assert!(health.ok);
    assert_eq!(health.wallet, "home.stats");
    assert_eq!(health.delegations, 1);
    assert!(health.served_requests >= 1, "the query was counted");

    let Reply::Stats(snapshot) = transport
        .request(&"home.stats".into(), Request::Stats)
        .unwrap()
    else {
        panic!("expected a stats snapshot");
    };
    let service = snapshot
        .histograms
        .get("drbac.net.tcp.service.ns")
        .expect("scraped snapshot carries the daemon service-time histogram");
    assert!(service.count >= 1, "service histogram covers the query");
    assert!(service.max > 0, "service time is non-zero");
    daemon.shutdown();
}

/// One distributed trace spans both processes' roles: the client's
/// request span and the daemon's serve span carry the same trace id,
/// and the serve span hangs beneath the request span.
#[test]
fn query_trace_spans_client_and_daemon_sides() {
    let mut rng = StdRng::seed_from_u64(46);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let member = LocalEntity::generate("Member", group, &mut rng);

    let home = Wallet::new("home.traced", clock);
    home.publish(
        owner
            .delegate(Node::entity(&member), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
        vec![],
    )
    .unwrap();
    let daemon = WalletDaemon::bind("127.0.0.1:0", home, TcpConfig::fast()).unwrap();
    let transport = TcpTransport::new(TcpConfig::fast());
    transport.add_route("home.traced", daemon.local_addr());

    let recorder = drbac::obs::RingRecorder::install(4096);
    let reply = transport
        .request(
            &"home.traced".into(),
            Request::DirectQuery {
                subject: Node::entity(&member),
                object: Node::role(owner.role("r")),
                constraints: vec![],
            },
        )
        .unwrap();
    assert!(matches!(reply, Reply::Proofs(ref p) if !p.is_empty()));
    // The serve span is emitted on the daemon's connection thread;
    // give it a beat to land in the ring.
    assert!(
        wait_until(Duration::from_secs(2), || {
            recorder
                .events()
                .iter()
                .any(|e| e.name == "drbac.net.tcp.serve")
        }),
        "daemon-side serve span was recorded"
    );
    let events = recorder.events();
    drbac::obs::clear_recorder();

    let request_start = events
        .iter()
        .find(|e| {
            e.kind == drbac::obs::TraceKind::SpanStart && e.name == "drbac.net.tcp.request"
        })
        .expect("client-side request span");
    let serve_start = events
        .iter()
        .find(|e| e.kind == drbac::obs::TraceKind::SpanStart && e.name == "drbac.net.tcp.serve")
        .expect("daemon-side serve span");
    assert_ne!(request_start.trace_id, 0, "the root span minted a trace id");
    assert_eq!(
        request_start.trace_id, serve_start.trace_id,
        "one trace id spans both sides of the exchange"
    );
    assert_eq!(
        serve_start.parent, request_start.span,
        "the serve span hangs beneath the client's request span"
    );
    daemon.shutdown();
}

/// A daemon that is fed garbage — partial frames, wrong magic, a huge
/// length prefix — stays alive and keeps serving well-formed clients.
#[test]
fn daemon_survives_garbage_connections() {
    use std::io::Write as _;

    let clock = SimClock::new();
    let wallet = Wallet::new("home", clock);
    let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast()).unwrap();
    let addr = daemon.local_addr();

    // Garbage: wrong magic.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    drop(s);
    // Garbage: valid magic, absurd length prefix.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(b"dRBW");
    frame.push(1); // version
    frame.push(1); // kind: request
    frame.extend_from_slice(&u32::MAX.to_be_bytes()); // oversized length
    frame.extend_from_slice(&0u32.to_be_bytes());
    s.write_all(&frame).unwrap();
    drop(s);
    // Torn frame: header promises bytes that never arrive.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(b"dRBW");
    frame.push(1);
    frame.push(1);
    frame.extend_from_slice(&1024u32.to_be_bytes());
    frame.extend_from_slice(&0u32.to_be_bytes());
    s.write_all(&frame).unwrap(); // ...and no payload
    drop(s);

    // A well-formed client still gets served.
    let transport = TcpTransport::new(TcpConfig::fast());
    transport.add_route("home", addr);
    let reply = transport
        .request(&"home".into(), Request::FetchDeclarations)
        .unwrap();
    assert!(matches!(reply, Reply::Declarations(_)));
    daemon.shutdown();
}

/// A pipelined (wire v3) client gets byte-identical proofs to the same
/// queries over SimNet — and waiting on the replies in reverse send
/// order still pairs every reply with its own request.
#[test]
fn pipelined_query_parity_simnet_vs_tcp() {
    let queries = |chain: &Chain| {
        vec![
            // The single published hop.
            Request::DirectQuery {
                subject: Node::entity(&chain.user),
                object: Node::role(chain.orgs[0].role("p")),
                constraints: vec![],
            },
            // A two-step chain the wallet must assemble.
            Request::DirectQuery {
                subject: Node::entity(&chain.user),
                object: Node::role(chain.orgs[1].role("p")),
                constraints: vec![],
            },
            // A miss: w0 cannot prove the final hop on its own.
            Request::DirectQuery {
                subject: Node::role(chain.orgs[2].role("resource")),
                object: Node::role(chain.orgs[0].role("p")),
                constraints: vec![],
            },
        ]
    };

    // SimNet shape: strict request/reply against host w0.
    let sim_chain = build_chain(47);
    let net = SimNet::new(sim_chain.clock.clone(), Ticks(1));
    for (i, w) in sim_chain.wallets.iter().enumerate() {
        net.add_host(format!("w{i}").as_str(), w.clone());
    }
    let sim_replies: Vec<Reply> = queries(&sim_chain)
        .into_iter()
        .map(|q| net.request(&"w0".into(), q).unwrap())
        .collect();

    // TCP shape (same seed → same bytes): one pipelined connection,
    // the whole window written as a single batch, completions awaited
    // in REVERSE order so replies must be matched by id, not arrival.
    let tcp_chain = build_chain(47);
    let (daemons, transport) = serve_chain(&tcp_chain);
    let client = transport.pipelined(&"w0".into()).unwrap();
    let ids = client.send_many(&queries(&tcp_chain)).unwrap();
    let mut tcp_replies: Vec<(usize, Reply)> = ids
        .iter()
        .enumerate()
        .rev()
        .map(|(i, id)| (i, client.wait(*id).unwrap()))
        .collect();
    tcp_replies.sort_by_key(|(i, _)| *i);

    for (sim, (_, tcp)) in sim_replies.iter().zip(&tcp_replies) {
        let (Reply::Proofs(sim_proofs), Reply::Proofs(tcp_proofs)) = (sim, tcp) else {
            panic!("expected proofs from both shapes, got {sim:?} / {tcp:?}");
        };
        assert_eq!(sim_proofs.len(), tcp_proofs.len());
        for (s, t) in sim_proofs.iter().zip(tcp_proofs) {
            assert_eq!(s.to_bytes(), t.to_bytes(), "same wire bytes");
        }
    }
    // The two chain queries proved, the miss came back empty.
    assert!(matches!(&tcp_replies[0].1, Reply::Proofs(p) if p.len() == 1));
    assert!(matches!(&tcp_replies[1].1, Reply::Proofs(p) if !p.is_empty()));
    assert!(matches!(&tcp_replies[2].1, Reply::Proofs(p) if p.is_empty()));

    client.close();
    for d in daemons {
        d.shutdown();
    }
}

/// Backpressure is an explicit reply, not a silent stall: with the job
/// queue bound set to zero every pipelined request is shed with an
/// `overloaded:` error echoing its id — while strict v1 requests on
/// the same daemon still serve (they never touch the queue).
#[test]
fn pipelined_overload_is_explicit_and_v1_still_serves() {
    use drbac::net::DaemonConfig;

    let clock = SimClock::new();
    let wallet = Wallet::new("home.shed", clock);
    let daemon = WalletDaemon::bind_with(
        "127.0.0.1:0",
        wallet,
        TcpConfig::fast(),
        DaemonConfig {
            queue_capacity: 0,
            ..DaemonConfig::default()
        },
    )
    .unwrap();
    let transport = Arc::new(TcpTransport::new(TcpConfig::fast()));
    transport.add_route("home.shed", daemon.local_addr());

    let client = transport.pipelined(&"home.shed".into()).unwrap();
    let window: Vec<Request> = (0..4).map(|_| Request::FetchDeclarations).collect();
    let ids = client.send_many(&window).unwrap();
    for id in ids {
        let reply = client.wait(id).unwrap();
        assert!(
            reply.is_overload(),
            "queue_capacity=0 must shed every pipelined request, got {reply:?}"
        );
        assert!(
            matches!(&reply, Reply::Error(m) if m.contains("job queue full")),
            "the overload reply names the tripped bound: {reply:?}"
        );
    }

    // Strict v1 requests are served inline on the reader thread and
    // never queue — the shed daemon still answers them.
    let reply = transport
        .request(&"home.shed".into(), Request::FetchDeclarations)
        .unwrap();
    assert!(matches!(reply, Reply::Declarations(_)));

    client.close();
    daemon.shutdown();
}

/// A pre-v3 peer speaking version 0x01 gets a byte-identical v1
/// exchange from the multiplexed daemon: the reply frame's version
/// byte is 0x01 and carries no request id.
#[test]
fn v1_peer_interoperates_byte_identically() {
    use drbac::net::wire;
    use std::io::Read as _;

    let clock = SimClock::new();
    let wallet = Wallet::new("home.v1", clock);
    let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast()).unwrap();

    let mut s = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = wire::encode_request(&Request::FetchDeclarations);
    wire::write_frame(&mut s, wire::FrameKind::Request, &payload).unwrap();

    // Read the reply's raw header: magic, version 0x01, kind Reply.
    let mut header = [0u8; 14];
    s.read_exact(&mut header).unwrap();
    assert_eq!(&header[0..4], b"dRBW", "reply carries the frame magic");
    assert_eq!(header[4], 0x01, "reply to a v1 request is a v1 frame");
    assert_eq!(header[5], 0x02, "reply kind");
    let len = u32::from_be_bytes(header[6..10].try_into().unwrap()) as usize;
    let mut reply_payload = vec![0u8; len];
    s.read_exact(&mut reply_payload).unwrap();
    let reply = wire::decode_reply(&reply_payload).unwrap();
    assert!(matches!(reply, Reply::Declarations(_)));
    drop(s);
    daemon.shutdown();
}

/// Request ids are opaque tokens the daemon echoes verbatim — it never
/// interprets them, so a peer reusing the same id gets each reply
/// tagged with that id (disambiguation is the client's problem, which
/// is why `PipelinedClient` never reuses a live id).
#[test]
fn daemon_echoes_duplicate_request_ids_verbatim() {
    use drbac::net::wire;

    let clock = SimClock::new();
    let wallet = Wallet::new("home.dup", clock);
    let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast()).unwrap();

    let mut s = std::net::TcpStream::connect(daemon.local_addr()).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = wire::encode_request(&Request::FetchDeclarations);
    wire::write_frame_mux(&mut s, wire::FrameKind::Request, &payload, 7, None).unwrap();
    wire::write_frame_mux(&mut s, wire::FrameKind::Request, &payload, 7, None).unwrap();

    for _ in 0..2 {
        let frame = wire::read_frame(&mut s).unwrap();
        assert_eq!(frame.kind, wire::FrameKind::Reply);
        assert_eq!(frame.request_id, Some(7), "the id is echoed verbatim");
        let reply = wire::decode_reply(&frame.payload).unwrap();
        assert!(matches!(reply, Reply::Declarations(_)));
    }
    drop(s);
    daemon.shutdown();
}
