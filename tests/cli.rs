//! End-to-end tests of the `drbac` CLI binary: a full coalition workflow
//! driven through the command-line interface with on-disk persistence.

use std::path::Path;
use std::process::{Command, Output};

fn drbac(home: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_drbac"))
        .arg("--home")
        .arg(home)
        .args(args)
        .output()
        .expect("binary runs")
}

fn ok(home: &Path, args: &[&str]) -> String {
    let out = drbac(home, args);
    assert!(
        out.status.success(),
        "command {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn fails(home: &Path, args: &[&str]) -> String {
    let out = drbac(home, args);
    assert!(
        !out.status.success(),
        "command {args:?} unexpectedly succeeded"
    );
    String::from_utf8(out.stderr).expect("utf8 stderr")
}

fn temp_home(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("drbac-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_workflow_through_the_cli() {
    let home = temp_home("workflow");

    // Identities.
    for name in ["BigISP", "Mark", "Maria"] {
        let out = ok(&home, &["keygen", name]);
        assert!(out.contains(name), "{out}");
    }
    let listing = ok(&home, &["entities"]);
    assert!(listing.contains("BigISP") && listing.contains("(local key)"));

    // Table 1 delegations through the syntax frontend.
    ok(
        &home,
        &["delegate", "[Mark -> BigISP.memberServices] BigISP"],
    );
    ok(
        &home,
        &[
            "delegate",
            "[BigISP.memberServices -> BigISP.member'] BigISP",
        ],
    );
    ok(&home, &["delegate", "[Maria -> BigISP.member] Mark"]);

    // Query — state persisted across invocations.
    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");
    assert!(answer.contains("[Maria -> BigISP.member] Mark"), "{answer}");

    // List shows three credentials with ids, plus a metrics summary.
    let listing = ok(&home, &["list"]);
    assert_eq!(
        listing.lines().filter(|l| l.starts_with('#')).count(),
        3,
        "{listing}"
    );
    assert!(listing.contains("3 delegations"), "{listing}");

    // Revoke Maria's enrollment by id prefix and re-query.
    let line = listing
        .lines()
        .find(|l| l.contains("[Maria ->"))
        .expect("in list");
    let id_prefix = &line[1..9];
    let out = ok(&home, &["revoke", id_prefix]);
    assert!(out.contains("revoked"), "{out}");
    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("DENIED"), "{answer}");

    let _ = std::fs::remove_dir_all(&home);
}

#[test]
fn attributes_and_constraints_through_the_cli() {
    let home = temp_home("attrs");
    ok(&home, &["keygen", "AirNet"]);
    ok(&home, &["keygen", "Maria"]);
    ok(&home, &["declare", "AirNet", "BW", "<=", "200"]);
    ok(
        &home,
        &[
            "delegate",
            "[Maria -> AirNet.access with AirNet.BW <= 100] AirNet",
        ],
    );

    let granted = ok(
        &home,
        &["query", "Maria", "AirNet.access", "AirNet.BW", "100"],
    );
    assert!(granted.starts_with("GRANTED"), "{granted}");
    assert!(granted.contains("BW=100"), "{granted}");
    let denied = ok(
        &home,
        &["query", "Maria", "AirNet.access", "AirNet.BW", "150"],
    );
    assert!(denied.starts_with("DENIED"), "{denied}");

    let _ = std::fs::remove_dir_all(&home);
}

/// Two fully separate context directories (two administrative domains)
/// exchanging identities and credentials through files — decentralization
/// with no shared state at all.
#[test]
fn two_homes_exchange_credentials_through_files() {
    let isp_home = temp_home("isp");
    let airport_home = temp_home("airport");
    let exchange = temp_home("exchange");
    std::fs::create_dir_all(&exchange).unwrap();
    let card = exchange.join("maria.entity");
    let cert_file = exchange.join("membership.cert");

    // The ISP domain: creates Maria and her membership credential.
    ok(&isp_home, &["keygen", "BigISP"]);
    ok(&isp_home, &["keygen", "Maria"]);
    ok(&isp_home, &["delegate", "[Maria -> BigISP.member] BigISP"]);
    ok(
        &isp_home,
        &["export-entity", "Maria", card.to_str().unwrap()],
    );
    ok(
        &isp_home,
        &[
            "export-entity",
            "BigISP",
            exchange.join("bigisp.entity").to_str().unwrap(),
        ],
    );
    let listing = ok(&isp_home, &["list"]);
    let id_prefix = &listing.lines().next().unwrap()[1..9];
    ok(
        &isp_home,
        &["export-cert", id_prefix, cert_file.to_str().unwrap()],
    );

    // The airport domain: knows nothing of the ISP until the files arrive.
    ok(&airport_home, &["keygen", "AirNet"]);
    assert!(fails(&airport_home, &["query", "Maria", "BigISP.member"]).contains("unknown entity"));
    ok(&airport_home, &["import-entity", card.to_str().unwrap()]);
    ok(
        &airport_home,
        &[
            "import-entity",
            exchange.join("bigisp.entity").to_str().unwrap(),
        ],
    );
    let out = ok(&airport_home, &["import-cert", cert_file.to_str().unwrap()]);
    assert!(out.contains("verified and published"), "{out}");

    // The signature carried across: the airport can now answer.
    let answer = ok(&airport_home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");

    // A tampered credential file is rejected.
    let mut bytes = std::fs::read(&cert_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&cert_file, bytes).unwrap();
    let err = fails(&airport_home, &["import-cert", cert_file.to_str().unwrap()]);
    assert!(
        err.contains("malformed") || err.contains("rejected"),
        "{err}"
    );

    // Name-collision defense: a *different* key arriving under an
    // already-known name is refused (two homes each mint their own
    // "Maria"; the airport keeps the one it trusted first).
    let second_isp = temp_home("isp2");
    ok(&second_isp, &["keygen", "Maria"]);
    ok(
        &second_isp,
        &["export-entity", "Maria", card.to_str().unwrap()],
    );
    let err = fails(&airport_home, &["import-entity", card.to_str().unwrap()]);
    assert!(err.contains("DIFFERENT key"), "{err}");
    let _ = std::fs::remove_dir_all(&second_isp);
    for dir in [&isp_home, &airport_home, &exchange] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// The store subcommands over a real on-disk context: inspect lists the
/// journaled records, verify reports a clean log, compact snapshots and
/// shrinks it, and the wallet still answers afterwards.
#[test]
fn store_subcommands_inspect_verify_compact() {
    let home = temp_home("store");
    ok(&home, &["keygen", "BigISP"]);
    ok(&home, &["keygen", "Mark"]);
    ok(&home, &["keygen", "Maria"]);
    ok(
        &home,
        &["delegate", "[Mark -> BigISP.memberServices] BigISP"],
    );
    ok(
        &home,
        &[
            "delegate",
            "[BigISP.memberServices -> BigISP.member'] BigISP",
        ],
    );
    ok(&home, &["delegate", "[Maria -> BigISP.member] Mark"]);

    let inspected = ok(&home, &["store", "inspect"]);
    assert!(inspected.contains("3 record(s)"), "{inspected}");
    assert_eq!(
        inspected.lines().filter(|l| l.contains("publish")).count(),
        3,
        "{inspected}"
    );

    let verified = ok(&home, &["store", "verify"]);
    assert!(verified.contains("clean"), "{verified}");

    let compacted = ok(&home, &["store", "compact"]);
    assert!(compacted.contains("snapshot now covers seq 3"), "{compacted}");
    let inspected = ok(&home, &["store", "inspect"]);
    assert!(inspected.contains("0 record(s)"), "{inspected}");
    assert!(inspected.contains("covers seq 3"), "{inspected}");

    // The wallet state survives compaction: queries answer from the
    // snapshot, and new mutations journal on top of it.
    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");
    ok(&home, &["delegate", "[Maria -> BigISP.memberServices] BigISP"]);
    let inspected = ok(&home, &["store", "inspect"]);
    assert!(inspected.contains("1 record(s)"), "{inspected}");

    let _ = std::fs::remove_dir_all(&home);
}

/// A torn final record — an append interrupted mid-write — is reported
/// by `store verify` (exit 1, read-only) and healed by the next normal
/// command, which recovers every fully written record.
#[test]
fn store_verify_flags_torn_tail_and_recovery_heals_it() {
    let home = temp_home("torn");
    ok(&home, &["keygen", "BigISP"]);
    ok(&home, &["keygen", "Maria"]);
    ok(&home, &["delegate", "[Maria -> BigISP.member] BigISP"]);

    // Tear the log: a half-written frame — a plausible header claiming
    // a 100-byte payload, but only 3 payload bytes made it to disk.
    let log_path = home.join("store").join("wal.log");
    let mut bytes = std::fs::read(&log_path).unwrap();
    let intact_len = bytes.len();
    bytes.extend_from_slice(&[0, 0, 0, 100]); // length prefix
    bytes.extend_from_slice(&[0xAB; 7]); // crc + a truncated payload
    std::fs::write(&log_path, &bytes).unwrap();

    let err = fails(&home, &["store", "verify"]);
    assert!(err.contains("NOT CLEAN"), "{err}");
    assert!(err.contains("torn tail"), "{err}");
    assert_eq!(
        std::fs::read(&log_path).unwrap().len(),
        intact_len + 11,
        "verify must not modify the log"
    );

    // Normal startup recovers: the committed delegation is still there,
    // and the heal leaves a clean log behind.
    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");
    ok(&home, &["list"]);
    let verified = ok(&home, &["store", "verify"]);
    assert!(verified.contains("clean"), "{verified}");

    let _ = std::fs::remove_dir_all(&home);
}

/// A context created before the write-ahead store (a bare `wallet.bin`
/// image) is migrated into the store on first load.
#[test]
fn legacy_wallet_image_is_migrated_into_the_store() {
    let home = temp_home("legacy");
    ok(&home, &["keygen", "BigISP"]);
    ok(&home, &["keygen", "Maria"]);
    ok(&home, &["delegate", "[Maria -> BigISP.member] BigISP"]);

    // Fake the pre-store layout: export the wallet image the old code
    // would have written, then delete the store directory entirely.
    let inspected = ok(&home, &["store", "inspect"]);
    assert!(inspected.contains("1 record(s)"), "{inspected}");
    ok(&home, &["store", "compact"]);
    let snapshot = std::fs::read(home.join("store").join("snapshot.bin")).unwrap();
    // snapshot.bin = magic(8) + seq(8) + len(4) + crc(4) + image.
    std::fs::write(home.join("wallet.bin"), &snapshot[24..]).unwrap();
    std::fs::remove_dir_all(home.join("store")).unwrap();

    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");
    let inspected = ok(&home, &["store", "inspect"]);
    assert!(
        inspected.contains("publish"),
        "migration journals the legacy credentials: {inspected}"
    );

    let _ = std::fs::remove_dir_all(&home);
}

#[test]
fn cli_error_paths() {
    let home = temp_home("errors");
    // Unknown command and missing args.
    assert!(fails(&home, &["frobnicate"]).contains("unknown command"));
    assert!(fails(&home, &["keygen"]).contains("usage"));
    // Unknown issuer entity in a delegation.
    ok(&home, &["keygen", "A"]);
    assert!(fails(&home, &["delegate", "[A -> Nobody.r] A"]).contains("unknown entity"));
    // Delegating for an entity we hold no key for.
    let err = fails(&home, &["delegate", "[A -> A.r] A0"]);
    assert!(
        err.contains("unknown entity") || err.contains("no local key"),
        "{err}"
    );
    // Duplicate keygen.
    assert!(fails(&home, &["keygen", "A"]).contains("already exists"));
    // Ambiguous / missing revoke prefix.
    assert!(fails(&home, &["revoke", "ffff"]).contains("no delegation matches"));

    let _ = std::fs::remove_dir_all(&home);
}
