//! End-to-end tests of the `drbac` CLI binary: a full coalition workflow
//! driven through the command-line interface with on-disk persistence.

use std::path::Path;
use std::process::{Command, Output};

fn drbac(home: &Path, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_drbac"))
        .arg("--home")
        .arg(home)
        .args(args)
        .output()
        .expect("binary runs")
}

fn ok(home: &Path, args: &[&str]) -> String {
    let out = drbac(home, args);
    assert!(
        out.status.success(),
        "command {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

fn fails(home: &Path, args: &[&str]) -> String {
    let out = drbac(home, args);
    assert!(
        !out.status.success(),
        "command {args:?} unexpectedly succeeded"
    );
    String::from_utf8(out.stderr).expect("utf8 stderr")
}

fn temp_home(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("drbac-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_workflow_through_the_cli() {
    let home = temp_home("workflow");

    // Identities.
    for name in ["BigISP", "Mark", "Maria"] {
        let out = ok(&home, &["keygen", name]);
        assert!(out.contains(name), "{out}");
    }
    let listing = ok(&home, &["entities"]);
    assert!(listing.contains("BigISP") && listing.contains("(local key)"));

    // Table 1 delegations through the syntax frontend.
    ok(
        &home,
        &["delegate", "[Mark -> BigISP.memberServices] BigISP"],
    );
    ok(
        &home,
        &[
            "delegate",
            "[BigISP.memberServices -> BigISP.member'] BigISP",
        ],
    );
    ok(&home, &["delegate", "[Maria -> BigISP.member] Mark"]);

    // Query — state persisted across invocations.
    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");
    assert!(answer.contains("[Maria -> BigISP.member] Mark"), "{answer}");

    // List shows three credentials with ids, plus a metrics summary.
    let listing = ok(&home, &["list"]);
    assert_eq!(
        listing.lines().filter(|l| l.starts_with('#')).count(),
        3,
        "{listing}"
    );
    assert!(listing.contains("3 delegations"), "{listing}");

    // Revoke Maria's enrollment by id prefix and re-query.
    let line = listing
        .lines()
        .find(|l| l.contains("[Maria ->"))
        .expect("in list");
    let id_prefix = &line[1..9];
    let out = ok(&home, &["revoke", id_prefix]);
    assert!(out.contains("revoked"), "{out}");
    let answer = ok(&home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("DENIED"), "{answer}");

    let _ = std::fs::remove_dir_all(&home);
}

#[test]
fn attributes_and_constraints_through_the_cli() {
    let home = temp_home("attrs");
    ok(&home, &["keygen", "AirNet"]);
    ok(&home, &["keygen", "Maria"]);
    ok(&home, &["declare", "AirNet", "BW", "<=", "200"]);
    ok(
        &home,
        &[
            "delegate",
            "[Maria -> AirNet.access with AirNet.BW <= 100] AirNet",
        ],
    );

    let granted = ok(
        &home,
        &["query", "Maria", "AirNet.access", "AirNet.BW", "100"],
    );
    assert!(granted.starts_with("GRANTED"), "{granted}");
    assert!(granted.contains("BW=100"), "{granted}");
    let denied = ok(
        &home,
        &["query", "Maria", "AirNet.access", "AirNet.BW", "150"],
    );
    assert!(denied.starts_with("DENIED"), "{denied}");

    let _ = std::fs::remove_dir_all(&home);
}

/// Two fully separate context directories (two administrative domains)
/// exchanging identities and credentials through files — decentralization
/// with no shared state at all.
#[test]
fn two_homes_exchange_credentials_through_files() {
    let isp_home = temp_home("isp");
    let airport_home = temp_home("airport");
    let exchange = temp_home("exchange");
    std::fs::create_dir_all(&exchange).unwrap();
    let card = exchange.join("maria.entity");
    let cert_file = exchange.join("membership.cert");

    // The ISP domain: creates Maria and her membership credential.
    ok(&isp_home, &["keygen", "BigISP"]);
    ok(&isp_home, &["keygen", "Maria"]);
    ok(&isp_home, &["delegate", "[Maria -> BigISP.member] BigISP"]);
    ok(
        &isp_home,
        &["export-entity", "Maria", card.to_str().unwrap()],
    );
    ok(
        &isp_home,
        &[
            "export-entity",
            "BigISP",
            exchange.join("bigisp.entity").to_str().unwrap(),
        ],
    );
    let listing = ok(&isp_home, &["list"]);
    let id_prefix = &listing.lines().next().unwrap()[1..9];
    ok(
        &isp_home,
        &["export-cert", id_prefix, cert_file.to_str().unwrap()],
    );

    // The airport domain: knows nothing of the ISP until the files arrive.
    ok(&airport_home, &["keygen", "AirNet"]);
    assert!(fails(&airport_home, &["query", "Maria", "BigISP.member"]).contains("unknown entity"));
    ok(&airport_home, &["import-entity", card.to_str().unwrap()]);
    ok(
        &airport_home,
        &[
            "import-entity",
            exchange.join("bigisp.entity").to_str().unwrap(),
        ],
    );
    let out = ok(&airport_home, &["import-cert", cert_file.to_str().unwrap()]);
    assert!(out.contains("verified and published"), "{out}");

    // The signature carried across: the airport can now answer.
    let answer = ok(&airport_home, &["query", "Maria", "BigISP.member"]);
    assert!(answer.starts_with("GRANTED"), "{answer}");

    // A tampered credential file is rejected.
    let mut bytes = std::fs::read(&cert_file).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&cert_file, bytes).unwrap();
    let err = fails(&airport_home, &["import-cert", cert_file.to_str().unwrap()]);
    assert!(
        err.contains("malformed") || err.contains("rejected"),
        "{err}"
    );

    // Name-collision defense: a *different* key arriving under an
    // already-known name is refused (two homes each mint their own
    // "Maria"; the airport keeps the one it trusted first).
    let second_isp = temp_home("isp2");
    ok(&second_isp, &["keygen", "Maria"]);
    ok(
        &second_isp,
        &["export-entity", "Maria", card.to_str().unwrap()],
    );
    let err = fails(&airport_home, &["import-entity", card.to_str().unwrap()]);
    assert!(err.contains("DIFFERENT key"), "{err}");
    let _ = std::fs::remove_dir_all(&second_isp);
    for dir in [&isp_home, &airport_home, &exchange] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn cli_error_paths() {
    let home = temp_home("errors");
    // Unknown command and missing args.
    assert!(fails(&home, &["frobnicate"]).contains("unknown command"));
    assert!(fails(&home, &["keygen"]).contains("usage"));
    // Unknown issuer entity in a delegation.
    ok(&home, &["keygen", "A"]);
    assert!(fails(&home, &["delegate", "[A -> Nobody.r] A"]).contains("unknown entity"));
    // Delegating for an entity we hold no key for.
    let err = fails(&home, &["delegate", "[A -> A.r] A0"]);
    assert!(
        err.contains("unknown entity") || err.contains("no local key"),
        "{err}"
    );
    // Duplicate keygen.
    assert!(fails(&home, &["keygen", "A"]).contains("already exists"));
    // Ambiguous / missing revoke prefix.
    assert!(fails(&home, &["revoke", "ffff"]).contains("no delegation matches"));

    let _ = std::fs::remove_dir_all(&home);
}
