//! End-to-end lifecycle tests across the whole stack: coalition setup,
//! distributed discovery, caching coherence, expiry, and recovery.

use std::sync::Arc;

use drbac::core::{
    AttrConstraint, DiscoveryTag, LocalEntity, Node, Proof, ProofStep, SignedRevocation, SimClock,
    SubjectFlag, Ticks,
};
use drbac::crypto::SchnorrGroup;
use drbac::disco::{CoalitionScenario, ProtectedResource};
use drbac::net::{proto::Request, Directory, DiscoveryAgent, SimNet};
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario() -> CoalitionScenario {
    CoalitionScenario::build(&mut StdRng::seed_from_u64(77))
}

/// The DisCo layer end to end: a protected resource authorizes Maria via
/// discovery, the session carries the right grants, and the partnership
/// revocation terminates it.
#[test]
fn protected_resource_full_lifecycle() {
    let s = scenario();
    let resource =
        ProtectedResource::new("airport-uplink", s.access_role(), s.server.wallet().clone());

    let presented = s.present_credentials();
    let mut agent = s.server_agent(&presented);
    let session = resource
        .authorize_with_discovery(&Node::entity(&s.maria), &mut agent)
        .expect("coalition authorizes Maria");
    assert!(session.is_active());
    assert_eq!(session.grants().get(&s.bw), Some(100.0));

    s.revoke_partnership();
    assert!(!session.is_active());

    // A second authorization attempt now fails outright.
    let mut agent = s.server_agent(&s.present_credentials());
    assert!(resource
        .authorize_with_discovery(&Node::entity(&s.maria), &mut agent)
        .is_err());
}

/// Constraints flow through distributed discovery: a demanding resource
/// rejects Maria even though the unconstrained proof exists.
#[test]
fn constrained_discovery_respects_attribute_limits() {
    let s = scenario();
    let presented = s.present_credentials();

    // Maria's effective BW is 100; demanding 150 must fail...
    let mut agent = s.server_agent(&presented);
    let outcome = agent.discover(
        &Node::entity(&s.maria),
        &Node::role(s.access_role()),
        &[AttrConstraint::at_least(s.bw.clone(), 150.0)],
    );
    assert!(!outcome.found(), "trace: {:?}", outcome.trace);

    // ...while demanding 100 succeeds.
    let mut agent = s.server_agent(&presented);
    let outcome = agent.discover(
        &Node::entity(&s.maria),
        &Node::role(s.access_role()),
        &[AttrConstraint::at_least(s.bw.clone(), 100.0)],
    );
    assert!(outcome.found(), "trace: {:?}", outcome.trace);
}

/// Cache coherence: after discovery, the server wallet holds validated
/// copies with TTL metadata; advancing past the TTL marks them stale.
#[test]
fn absorbed_credentials_carry_ttl_coherence() {
    let s = scenario();
    let outcome = s.establish_access();
    assert!(outcome.found());
    // Remote credentials were cached (partnership chain + access root).
    assert!(s.server.wallet().len() >= 3);
    assert!(s.server.wallet().stale_entries().is_empty());
    // The scenario tags use TTL 240.
    s.clock.advance(Ticks(241));
    assert!(!s.server.wallet().stale_entries().is_empty());
}

/// Expiry propagates like revocation: a short-lived partnership ends by
/// itself, and the push reaches the server's monitor.
#[test]
fn expiring_partnership_terminates_sessions() {
    let mut rng = StdRng::seed_from_u64(88);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let user = LocalEntity::generate("User", group, &mut rng);
    let home = net.add_host("home", Wallet::new("home", clock.clone()));
    let server = net.add_host("server", Wallet::new("server", clock.clone()));

    let cert: Arc<_> = Arc::new(
        owner
            .delegate(Node::entity(&user), Node::role(owner.role("r")))
            .expires(clock.now().after(Ticks(50)))
            .subject_tag(
                DiscoveryTag::new("home")
                    .with_ttl(Ticks(10))
                    .with_subject_flag(SubjectFlag::Search),
            )
            .sign(&owner)
            .unwrap(),
    );
    home.wallet().publish(Arc::clone(&cert), vec![]).unwrap();

    let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();
    server.wallet().absorb_proof(&proof, home.addr()).unwrap();
    net.request(
        &"home".into(),
        Request::Subscribe {
            delegation: cert.id(),
            subscriber: "server".into(),
        },
    )
    .unwrap();
    let monitor = server
        .wallet()
        .query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[])
        .unwrap();
    assert!(monitor.is_valid());

    clock.advance(Ticks(60));
    assert_eq!(home.process_expiries(&net), 1);
    net.run_until_idle();
    assert!(!monitor.is_valid());
    assert!(server
        .wallet()
        .query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[])
        .is_none());
}

/// Recovery after revocation through an alternate path: when one
/// authorization chain dies, a newly published independent chain
/// re-enables access, and the pending-proof watch fires.
#[test]
fn alternate_path_recovery_with_proof_watch() {
    let mut rng = StdRng::seed_from_u64(99);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let owner = LocalEntity::generate("Owner", group.clone(), &mut rng);
    let broker = LocalEntity::generate("Broker", group.clone(), &mut rng);
    let user = LocalEntity::generate("User", group, &mut rng);
    let wallet = Wallet::new("w", clock.clone());

    // Chain 1 via the broker.
    wallet
        .publish(
            owner
                .delegate(Node::entity(&broker), Node::role_admin(owner.role("r")))
                .sign(&owner)
                .unwrap(),
            vec![],
        )
        .unwrap();
    let enrollment = broker
        .delegate(Node::entity(&user), Node::role(owner.role("r")))
        .sign(&broker)
        .unwrap();
    wallet.publish(enrollment.clone(), vec![]).unwrap();
    let monitor = wallet
        .query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[])
        .unwrap();

    // Kill chain 1.
    let revocation = SignedRevocation::revoke(&enrollment, &broker, clock.now()).unwrap();
    wallet.revoke(&revocation).unwrap();
    assert!(!monitor.is_valid());

    // Register a pending-proof watch: fires when access becomes possible
    // again (paper §4.2.2: "the entity object can register a callback
    // that will be activated when such a proof is available").
    let recovered = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let recovered2 = Arc::clone(&recovered);
    wallet.watch_for_proof(
        Node::entity(&user),
        Node::role(owner.role("r")),
        vec![],
        move |m| {
            assert!(m.is_valid());
            recovered2.store(true, std::sync::atomic::Ordering::SeqCst);
        },
    );
    assert!(!recovered.load(std::sync::atomic::Ordering::SeqCst));

    // Chain 2: direct enrollment by the owner.
    wallet
        .publish(
            owner
                .delegate(Node::entity(&user), Node::role(owner.role("r")))
                .sign(&owner)
                .unwrap(),
            vec![],
        )
        .unwrap();
    assert!(recovered.load(std::sync::atomic::Ordering::SeqCst));
}

/// Discovery across four organizations (deep chain), asserting the
/// number of wallets contacted grows with the chain, not the graph.
#[test]
fn deep_chain_discovery_contacts_each_home_once() {
    let mut rng = StdRng::seed_from_u64(111);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let orgs: Vec<LocalEntity> = (0..4)
        .map(|i| LocalEntity::generate(format!("Org{i}"), group.clone(), &mut rng))
        .collect();
    let user = LocalEntity::generate("User", group, &mut rng);
    let hosts: Vec<_> = (0..4)
        .map(|i| {
            let addr = format!("w{i}");
            net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()))
        })
        .collect();
    let server = net.add_host("server", Wallet::new("server", clock.clone()));

    let tag = |i: usize| {
        DiscoveryTag::new(format!("w{i}").as_str())
            .with_ttl(Ticks(30))
            .with_subject_flag(SubjectFlag::Search)
    };
    let user_cert = Arc::new(
        orgs[0]
            .delegate(Node::entity(&user), Node::role(orgs[0].role("p")))
            .object_tag(tag(0))
            .sign(&orgs[0])
            .unwrap(),
    );
    hosts[0]
        .wallet()
        .publish(Arc::clone(&user_cert), vec![])
        .unwrap();
    for i in 0..3 {
        let object = if i == 2 {
            orgs[3].role("resource")
        } else {
            orgs[i + 1].role("p")
        };
        hosts[i]
            .wallet()
            .publish(
                orgs[i + 1]
                    .delegate(Node::role(orgs[i].role("p")), Node::role(object))
                    .subject_tag(tag(i))
                    .object_tag(tag(i + 1))
                    .sign(&orgs[i + 1])
                    .unwrap(),
                vec![],
            )
            .unwrap();
    }

    let presented = Proof::from_steps(vec![ProofStep::new(user_cert)]).unwrap();
    server
        .wallet()
        .absorb_proof(&presented, &"user.device".into())
        .unwrap();
    let mut directory = Directory::new();
    directory.learn_from_proof(&presented);
    let mut agent = DiscoveryAgent::new(net.clone(), server.clone(), directory);

    let outcome = agent.discover(
        &Node::entity(&user),
        &Node::role(orgs[3].role("resource")),
        &[],
    );
    assert!(outcome.found(), "trace: {:?}", outcome.trace);
    assert_eq!(outcome.monitor.as_ref().unwrap().proof().chain_len(), 4);
    // Homes 0..2 hold the chain hops; w3 never needs contacting because
    // hop 3 (stored at w2, the subject's home) completes the proof.
    assert_eq!(outcome.wallets_contacted.len(), 3);
}

/// A resilient session across the coalition: the partnership is revoked
/// (session goes dormant) and re-issued (session resumes automatically),
/// composing ResilientSession with the distributed push machinery.
#[test]
fn resilient_session_survives_partnership_reissue() {
    let s = scenario();
    // Establish once via discovery so the server wallet holds the chain.
    let outcome = s.establish_access();
    assert!(outcome.found());

    let resource =
        ProtectedResource::new("airport-uplink", s.access_role(), s.server.wallet().clone());
    let session = resource
        .authorize_resilient(&Node::entity(&s.maria))
        .unwrap();
    assert!(session.is_active());
    assert_eq!(session.grants().unwrap().get(&s.bw), Some(100.0));

    // The partnership dies; the push reaches the server and the session
    // goes dormant (no alternate path exists).
    s.revoke_partnership();
    assert!(!session.is_active());

    // Sheila re-issues the partnership directly into the server's wallet
    // (as a re-presented credential would); the dormant session resumes.
    let reissue = s
        .sheila
        .delegate(
            Node::role(s.big_isp.role("member")),
            Node::role(s.air_net.role("member")),
        )
        .with_attr(s.bw.clone(), 100.0)
        .unwrap()
        .serial(99)
        .sign(&s.sheila)
        .unwrap();
    s.server.wallet().publish(reissue, vec![]).unwrap();
    assert!(
        session.is_active(),
        "resilient session resumed after re-issue"
    );
    assert!(session.generation() >= 2);
}

/// The same tag-directed discovery algorithm over *real threads*: each
/// org wallet runs as a `WalletService`, and the agent's transport is a
/// `ServiceRegistry` instead of the simulator.
#[test]
fn discovery_over_threaded_wallet_services() {
    use drbac::net::{ServiceRegistry, WalletService};

    let mut rng = StdRng::seed_from_u64(222);
    let group = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let orgs: Vec<LocalEntity> = (0..3)
        .map(|i| LocalEntity::generate(format!("Org{i}"), group.clone(), &mut rng))
        .collect();
    let user = LocalEntity::generate("User", group, &mut rng);

    let tag = |i: usize| {
        DiscoveryTag::new(format!("svc{i}").as_str())
            .with_ttl(Ticks(60))
            .with_subject_flag(SubjectFlag::Search)
    };

    // Chain User -> Org0.p -> Org1.p -> Org2.resource, each hop stored in
    // its subject's home wallet, each wallet behind its own service thread.
    let registry = ServiceRegistry::new();
    let mut services = Vec::new();
    for i in 0..3 {
        let wallet = Wallet::new(format!("svc{i}").as_str(), clock.clone());
        let service = WalletService::spawn(wallet);
        registry.register(format!("svc{i}").as_str(), service.client());
        services.push(service);
    }
    services[0]
        .wallet()
        .publish(
            orgs[0]
                .delegate(Node::entity(&user), Node::role(orgs[0].role("p")))
                .object_tag(tag(0))
                .sign(&orgs[0])
                .unwrap(),
            vec![],
        )
        .unwrap();
    for i in 0..2 {
        let object = if i == 1 {
            orgs[2].role("resource")
        } else {
            orgs[i + 1].role("p")
        };
        services[i]
            .wallet()
            .publish(
                orgs[i + 1]
                    .delegate(Node::role(orgs[i].role("p")), Node::role(object))
                    .subject_tag(tag(i))
                    .object_tag(tag(i + 1))
                    .sign(&orgs[i + 1])
                    .unwrap(),
                vec![],
            )
            .unwrap();
    }

    let local = Wallet::new("agent.local", clock.clone());
    let mut directory = Directory::new();
    directory.register(Node::entity(&user), tag(0));
    for (i, org) in orgs.iter().enumerate() {
        directory.register_entity(org.id(), tag(i));
    }
    let mut agent = DiscoveryAgent::new(registry, local, directory);
    let outcome = agent.discover(
        &Node::entity(&user),
        &Node::role(orgs[2].role("resource")),
        &[],
    );
    assert!(outcome.found(), "trace: {:?}", outcome.trace);
    assert_eq!(outcome.monitor.unwrap().proof().chain_len(), 3);
    for service in services {
        service.shutdown();
    }
}

/// Full coalition under churn: repeated establish/revoke/re-establish
/// cycles stay consistent (no stale grants leak through).
#[test]
fn establish_revoke_reestablish_cycles() {
    for seed in [1u64, 2, 3] {
        let s = CoalitionScenario::build(&mut StdRng::seed_from_u64(seed));
        let outcome = s.establish_access();
        let monitor = outcome.monitor.expect("established");
        assert!(monitor.is_valid());
        s.revoke_partnership();
        assert!(!monitor.is_valid());

        // Sheila re-issues the partnership with a new serial.
        let new_partnership = s
            .sheila
            .delegate(
                Node::role(s.big_isp.role("member")),
                Node::role(s.air_net.role("member")),
            )
            .with_attr(s.bw.clone(), 100.0)
            .unwrap()
            .serial(2)
            .sign(&s.sheila)
            .unwrap();
        // Supports are already present in BigISP's home wallet.
        s.bigisp_home
            .wallet()
            .publish(new_partnership, vec![])
            .unwrap();

        let mut agent = s.server_agent(&s.present_credentials());
        let retry = agent.discover(&Node::entity(&s.maria), &Node::role(s.access_role()), &[]);
        assert!(
            retry.found(),
            "re-established after reissue: {:?}",
            retry.trace
        );
        assert!(retry.monitor.unwrap().is_valid());
    }
}
