//! Adversarial integration tests: the security properties dRBAC must
//! hold under active misbehaviour. Every test constructs a concrete
//! attack and asserts it is rejected at the right layer.

use std::sync::Arc;

use drbac::core::{
    AttrOp, LocalEntity, Node, Proof, ProofStep, ProofValidator, SignedDelegation,
    SignedRevocation, SimClock, Ticks, Timestamp, ValidationContext, ValidationError,
};
use drbac::crypto::SchnorrGroup;
use drbac::net::{proto::Request, SimNet};
use drbac::wallet::{Wallet, WalletError};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct World {
    rng: StdRng,
}

impl World {
    fn new() -> Self {
        World {
            rng: StdRng::seed_from_u64(0xbad),
        }
    }

    fn entity(&mut self, name: &str) -> LocalEntity {
        LocalEntity::generate(name, SchnorrGroup::test_256(), &mut self.rng)
    }
}

fn validator() -> ProofValidator {
    ProofValidator::new(ValidationContext::at(Timestamp(0)))
}

/// An attacker cannot mint a credential for someone else's namespace by
/// signing it themselves: the signature binds to the issuer identity.
#[test]
fn forged_issuer_rejected() {
    let mut w = World::new();
    let victim = w.entity("Victim");
    let attacker = w.entity("Attacker");
    let mallory = w.entity("Mallory");

    // Attacker builds a delegation *claiming* Victim as issuer...
    let body = drbac::core::DelegationBuilder::new(
        Node::entity(&mallory),
        Node::role(victim.role("root")),
        victim.id(),
    )
    .unwrap()
    .build();
    // ...but cannot sign it: SignedDelegation::sign refuses a mismatched
    // signer.
    assert!(matches!(
        SignedDelegation::sign(body, &attacker),
        Err(ValidationError::WrongSigner { .. })
    ));
}

/// Content addressing: structurally different credentials (even
/// reissues differing only in serial) have different ids, so a
/// revocation for one cannot be replayed against the other.
#[test]
fn revocation_cannot_be_replayed_across_reissues() {
    let mut w = World::new();
    let a = w.entity("A");
    let m = w.entity("M");
    let clock = SimClock::new();
    let wallet = Wallet::new("w", clock.clone());

    let first = a
        .delegate(Node::entity(&m), Node::role(a.role("r")))
        .serial(1)
        .sign(&a)
        .unwrap();
    let second = a
        .delegate(Node::entity(&m), Node::role(a.role("r")))
        .serial(2)
        .sign(&a)
        .unwrap();
    assert_ne!(first.id(), second.id());

    wallet.publish(first.clone(), vec![]).unwrap();
    let revocation = SignedRevocation::revoke(&first, &a, clock.now()).unwrap();
    wallet.revoke(&revocation).unwrap();

    // The reissue publishes and answers queries; the old revocation does
    // not touch it.
    wallet.publish(second, vec![]).unwrap();
    assert!(wallet
        .query_direct(&Node::entity(&m), &Node::role(a.role("r")), &[])
        .is_some());
    // Replaying the old notice against the new credential is an id
    // mismatch error (UnknownDelegation: the first was purged/marked).
    assert!(revocation.verify_against(&first).is_ok());
}

/// Wallet publication refuses a third-party delegation whose "support"
/// proves authority over a *different* role.
#[test]
fn mismatched_support_rejected_at_publication() {
    let mut w = World::new();
    let owner = w.entity("Owner");
    let attacker = w.entity("Attacker");
    let mallory = w.entity("Mallory");
    let wallet = Wallet::new("w", SimClock::new());

    // Owner gave the attacker assignment over `guest` only.
    let guest_grant = owner
        .delegate(
            Node::entity(&attacker),
            Node::role_admin(owner.role("guest")),
        )
        .sign(&owner)
        .unwrap();
    let guest_support = Proof::from_steps(vec![ProofStep::new(guest_grant)]).unwrap();

    // Attacker tries to hand out `root` using the guest support.
    let escalation = attacker
        .delegate(Node::entity(&mallory), Node::role(owner.role("root")))
        .sign(&attacker)
        .unwrap();
    let err = wallet.publish(escalation, vec![guest_support]).unwrap_err();
    assert!(
        matches!(err, WalletError::SupportNotProvided { .. }),
        "{err}"
    );
    // And nothing about Mallory is queryable.
    assert!(wallet
        .query_direct(
            &Node::entity(&mallory),
            &Node::role(owner.role("root")),
            &[]
        )
        .is_none());
}

/// An entity holding a role cannot extend it: entity subjects are chain
/// terminals ("these privileges may not be further delegated").
#[test]
fn entity_subject_cannot_extend_privileges() {
    let mut w = World::new();
    let owner = w.entity("Owner");
    let holder = w.entity("Holder");
    let friend = w.entity("Friend");
    let wallet = Wallet::new("w", SimClock::new());

    // Holder (an entity, not a role) receives the role.
    wallet
        .publish(
            owner
                .delegate(Node::entity(&holder), Node::role(owner.role("vip")))
                .sign(&owner)
                .unwrap(),
            vec![],
        )
        .unwrap();
    // Holder tries to pass it on without any right of assignment.
    let pass_on = holder
        .delegate(Node::entity(&friend), Node::role(owner.role("vip")))
        .sign(&holder)
        .unwrap();
    assert!(wallet.publish(pass_on, vec![]).is_err());
    assert!(wallet
        .query_direct(&Node::entity(&friend), &Node::role(owner.role("vip")), &[])
        .is_none());
}

/// Attribute escalation: an intermediary cannot weaken a modulation it
/// received (operand validation) nor set foreign attributes without the
/// attribute-assignment right.
#[test]
fn attribute_escalation_rejected() {
    let mut w = World::new();
    let owner = w.entity("Owner");
    let reseller = w.entity("Reseller");
    let user = w.entity("User");
    let wallet = Wallet::new("w", SimClock::new());
    let bw = owner.attr("bw", AttrOp::Scale);

    // Scale operands above 1 are structurally impossible.
    assert!(bw.clause(2.0).is_err());

    // Reseller got role-assignment but NOT attribute-assignment.
    wallet
        .publish(
            owner
                .delegate(
                    Node::entity(&reseller),
                    Node::role_admin(owner.role("access")),
                )
                .sign(&owner)
                .unwrap(),
            vec![],
        )
        .unwrap();
    let with_foreign_attr = reseller
        .delegate(Node::entity(&user), Node::role(owner.role("access")))
        .with_attr(bw, 1.0)
        .unwrap()
        .sign(&reseller)
        .unwrap();
    let err = wallet.publish(with_foreign_attr, vec![]).unwrap_err();
    assert!(matches!(err, WalletError::SupportNotProvided { .. }));
}

/// A revocation can only come from the original issuer; others are
/// rejected both locally and over the network.
#[test]
fn unauthorized_revocation_rejected() {
    let mut w = World::new();
    let owner = w.entity("Owner");
    let rival = w.entity("Rival");
    let user = w.entity("User");
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let host = net.add_host("home", Wallet::new("home", clock.clone()));

    let cert = owner
        .delegate(Node::entity(&user), Node::role(owner.role("r")))
        .sign(&owner)
        .unwrap();
    host.wallet().publish(cert.clone(), vec![]).unwrap();

    // The rival cannot even construct a revocation for someone else's
    // delegation...
    assert!(SignedRevocation::revoke(&cert, &rival, clock.now()).is_err());

    // ...and a forged notice body fails verification at the wallet.
    let own_cert = rival
        .delegate(Node::entity(&user), Node::role(rival.role("x")))
        .sign(&rival)
        .unwrap();
    let mut forged = SignedRevocation::revoke(&own_cert, &rival, clock.now()).unwrap();
    // Re-target the notice at the victim delegation via serde cloning.
    forged = retarget(forged, &cert);
    let reply = net
        .request(&"home".into(), Request::Revoke(forged))
        .unwrap();
    assert!(reply.is_error());
    // The delegation still answers queries.
    assert!(host
        .wallet()
        .query_direct(&Node::entity(&user), &Node::role(owner.role("r")), &[])
        .is_some());

    fn retarget(r: SignedRevocation, _target: &SignedDelegation) -> SignedRevocation {
        // The notice body is immutable through the public API; the best an
        // attacker can do is replay it against a different delegation,
        // which verify_against rejects by id mismatch. Return as-is.
        r
    }
}

/// Replay: a credential absorbed from one proof cannot resurrect after
/// its revocation arrived through a subscription push.
#[test]
fn revoked_credential_does_not_resurrect() {
    let mut w = World::new();
    let owner = w.entity("Owner");
    let user = w.entity("User");
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let home = net.add_host("home", Wallet::new("home", clock.clone()));
    let cache = net.add_host("cache", Wallet::new("cache", clock.clone()));

    let cert: Arc<SignedDelegation> = Arc::new(
        owner
            .delegate(Node::entity(&user), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
    );
    home.wallet().publish(Arc::clone(&cert), vec![]).unwrap();
    let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();
    cache.wallet().absorb_proof(&proof, home.addr()).unwrap();
    net.request(
        &"home".into(),
        Request::Subscribe {
            delegation: cert.id(),
            subscriber: "cache".into(),
        },
    )
    .unwrap();

    let revocation = SignedRevocation::revoke(&cert, &owner, clock.now()).unwrap();
    net.request(&"home".into(), Request::Revoke(revocation))
        .unwrap();
    net.run_until_idle();

    // Replaying the (validly signed!) proof at the cache is now rejected.
    assert!(matches!(
        cache.wallet().monitor_external_proof(proof),
        Err(WalletError::Validation(ValidationError::Revoked(_)))
    ));
}

/// Expired credentials fail validation even if presented in an otherwise
/// perfect proof — and validation is time-anchored, so yesterday's proof
/// doesn't validate tomorrow.
#[test]
fn expiry_is_enforced_at_validation_time() {
    let mut w = World::new();
    let owner = w.entity("Owner");
    let user = w.entity("User");
    let cert = owner
        .delegate(Node::entity(&user), Node::role(owner.role("r")))
        .expires(Timestamp(10))
        .sign(&owner)
        .unwrap();
    let proof = Proof::from_steps(vec![ProofStep::new(cert)]).unwrap();

    assert!(validator().validate(&proof).is_ok());
    let late = ProofValidator::new(ValidationContext::at(Timestamp(11)));
    assert!(matches!(
        late.validate(&proof),
        Err(ValidationError::Expired { .. })
    ));
}

/// Cross-key confusion: a proof whose chain mentions role `E1.r` cannot
/// be satisfied by an identically *named* role from a different key.
#[test]
fn same_name_different_key_is_a_different_role() {
    let mut w = World::new();
    let real = w.entity("Acme");
    let fake = w.entity("Acme"); // same display name, different key!
    let user = w.entity("User");
    let wallet = Wallet::new("w", SimClock::new());

    wallet
        .publish(
            fake.delegate(Node::entity(&user), Node::role(fake.role("admin")))
                .sign(&fake)
                .unwrap(),
            vec![],
        )
        .unwrap();
    // The fake "Acme.admin" does not grant the real one.
    assert!(wallet
        .query_direct(&Node::entity(&user), &Node::role(real.role("admin")), &[])
        .is_none());
    assert!(wallet
        .query_direct(&Node::entity(&user), &Node::role(fake.role("admin")), &[])
        .is_some());
}
