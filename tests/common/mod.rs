//! Shared test support for the integration suites (`chaos`,
//! `distributed_soak`, `scenario_matrix`): seeded entity worlds and the
//! `DRBAC_CHAOS_SEED` plumbing that lets `scripts/check.sh` sweep a
//! fault-seed matrix over the same tests.

// Each test binary compiles this module separately and uses a subset.
#![allow(dead_code)]

use drbac::core::{LocalEntity, SimClock, Ticks};
use drbac::crypto::SchnorrGroup;
use drbac::net::FaultPlan;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Reads a seed from the environment, falling back to `default`.
pub fn env_seed(var: &str, default: u64) -> u64 {
    std::env::var(var)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Fault/world seed for this run: `DRBAC_CHAOS_SEED`, default 2002.
pub fn chaos_seed() -> u64 {
    env_seed("DRBAC_CHAOS_SEED", 2002)
}

/// The fixed seed matrix swept by `scripts/check.sh`, plus this run's
/// env-selected seed when it is not already in the matrix.
pub fn chaos_seed_matrix(base: &[u64]) -> Vec<u64> {
    let mut seeds = base.to_vec();
    let env = chaos_seed();
    if !seeds.contains(&env) {
        seeds.push(env);
    }
    seeds
}

/// ≤10% request loss plus 1-tick jitter — the acceptance chaos posture:
/// light enough that bounded retry (3 attempts/hop) recovers every hop.
pub fn light_loss(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_request_loss(0.1)
        .with_latency_jitter(Ticks(1))
}

/// The canonical three-entity lifecycle world: a namespace owner, a
/// third-party broker, and an end user, sharing one wallet.
pub struct LifecycleWorld {
    pub owner: LocalEntity,
    pub broker: LocalEntity,
    pub user: LocalEntity,
    pub clock: SimClock,
    pub wallet: Wallet,
}

/// Builds a [`LifecycleWorld`] deterministically from `seed`.
pub fn lifecycle_world(seed: u64) -> LifecycleWorld {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = SchnorrGroup::test_256();
    let clock = SimClock::new();
    LifecycleWorld {
        owner: LocalEntity::generate("Owner", g.clone(), &mut rng),
        broker: LocalEntity::generate("Broker", g.clone(), &mut rng),
        user: LocalEntity::generate("User", g, &mut rng),
        wallet: Wallet::new("lifecycle", clock.clone()),
        clock,
    }
}
