//! Chaos regression suite: the BigISP/AirNet walkthrough must reach the
//! *same authorization decisions* under injected faults as it does on a
//! pristine network — seeded request loss is absorbed by retries,
//! partitions park pushes until heal, and a crashed home wallet recovers
//! missed revocations through re-subscription and revalidation.
//!
//! The fault-plan seed comes from `DRBAC_CHAOS_SEED` (default 2002) so
//! `scripts/check.sh` can sweep a small seed matrix; every test is a
//! pure function of that seed.

mod common;

use common::{chaos_seed, chaos_seed_matrix, light_loss};
use drbac::core::Ticks;
use drbac::disco::scenario::{BIGISP_WALLET, SERVER_WALLET};
use drbac::disco::CoalitionScenario;
use drbac::net::{DiscoveryOutcome, FaultPlan, NetStats};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// World-construction seed — fixed so the coalition (keys, certs, tags)
/// is identical across the fault-free baseline and every chaos run.
const WORLD_SEED: u64 = 2002;

fn baseline() -> CoalitionScenario {
    CoalitionScenario::build(&mut StdRng::seed_from_u64(WORLD_SEED))
}

fn chaotic(plan: FaultPlan) -> CoalitionScenario {
    CoalitionScenario::build_with_faults(&mut StdRng::seed_from_u64(WORLD_SEED), plan)
}

/// Runs the full walkthrough (discovery, grants, revocation) and
/// returns what an application would observe.
fn walkthrough(s: &CoalitionScenario) -> (DiscoveryOutcome, Vec<f64>, bool, NetStats) {
    let outcome = s.establish_access();
    let grants: Vec<f64> = match outcome.monitor.as_ref() {
        Some(m) => s
            .expected_grants()
            .iter()
            .map(|(attr, _)| m.summary().get(attr).unwrap_or(f64::NAN))
            .collect(),
        None => vec![],
    };
    s.revoke_partnership();
    let terminated = outcome
        .monitor
        .as_ref()
        .map(|m| !m.is_valid())
        .unwrap_or(false);
    (outcome, grants, terminated, s.net.stats())
}

#[test]
fn fault_free_walkthrough_is_not_degraded() {
    let s = baseline();
    let outcome = s.establish_access();
    assert!(outcome.found());
    assert!(
        !outcome.degraded,
        "a pristine network must not flag degradation"
    );
    assert_eq!(s.net.stats().timeouts, 0);
}

#[test]
fn seeded_loss_converges_to_fault_free_decisions() {
    let (base_outcome, base_grants, base_terminated, _) = walkthrough(&baseline());
    assert!(base_outcome.found(), "baseline grants access");
    assert!(base_terminated, "baseline revocation terminates access");

    // The check.sh matrix seeds plus this run's env-selected seed.
    for seed in chaos_seed_matrix(&[1, 2, 3, 2002]) {
        let s = chaotic(light_loss(seed));
        let (outcome, grants, terminated, stats) = walkthrough(&s);
        assert_eq!(
            outcome.found(),
            base_outcome.found(),
            "seed {seed}: grant/deny decision diverged under ≤10% loss"
        );
        assert_eq!(
            grants, base_grants,
            "seed {seed}: effective attribute grants diverged"
        );
        assert_eq!(
            terminated, base_terminated,
            "seed {seed}: revocation outcome diverged"
        );
        // Retried hops must be surfaced, not hidden: if any request
        // timed out, the outcome carries the degraded marker.
        if stats.timeouts > 0 {
            assert!(outcome.degraded, "seed {seed}: timeouts without marker");
        }
    }
}

#[test]
fn chaos_runs_are_deterministic_per_seed() {
    let seed = chaos_seed();
    let run = || {
        let s = chaotic(light_loss(seed));
        let (outcome, grants, terminated, stats) = walkthrough(&s);
        (
            outcome.trace,
            outcome.wallets_contacted,
            outcome.degraded,
            grants,
            terminated,
            stats.total_messages,
            stats.timeouts,
            stats.push_messages,
        )
    };
    assert_eq!(run(), run(), "same seeds must replay identically");
}

#[test]
fn partition_heal_preserves_revocation_push() {
    let s = baseline();
    let outcome = s.establish_access();
    let monitor = outcome.monitor.expect("access granted");
    assert!(monitor.is_valid());

    // Cut the server off, then revoke the partnership at BigISP's home
    // wallet. The push cannot cross the partition — it parks.
    s.net.partition_host(&SERVER_WALLET.into());
    let delivered = s.revoke_partnership();
    assert_eq!(delivered, 0, "push is parked, not delivered");
    assert!(monitor.is_valid(), "server has not heard yet");

    // Heal: the parked push is redelivered and terminates the session.
    assert_eq!(s.net.heal_partitions(), 1);
    assert_eq!(s.net.run_until_idle(), 1);
    assert!(!monitor.is_valid(), "revocation survived the partition");
}

#[test]
fn wallet_crash_restart_recovers_missed_revocations() {
    let s = baseline();
    let outcome = s.establish_access();
    let monitor = outcome.monitor.expect("access granted");

    // BigISP's home wallet crashes, losing its volatile subscriber
    // registry and its in-memory graph; the write-ahead store survives.
    let store = s
        .net
        .crash_host(&BIGISP_WALLET.into())
        .expect("host exists");
    let report = s
        .net
        .restart_host(&BIGISP_WALLET.into(), &store)
        .expect("store replays");
    assert_eq!(report.skipped, 0, "every journaled event replays cleanly");

    // The revocation is processed by the restarted wallet, but nobody
    // is subscribed any more: zero pushes, session still (wrongly) up.
    let delivered = s.revoke_partnership();
    assert_eq!(delivered, 0, "subscriber registry was volatile");
    assert!(monitor.is_valid(), "the revocation was missed");

    // Recovery: the server re-registers its subscriptions and
    // revalidates every cached credential against its home wallet —
    // discovering the revoked partnership and cascading locally.
    let (resubscribed, dropped) = s.server.resubscribe_cached(&s.net);
    assert!(resubscribed >= 1, "subscriptions re-registered");
    assert_eq!(dropped, 1, "exactly the revoked partnership is dropped");
    s.net.run_until_idle();
    assert!(!monitor.is_valid(), "missed revocation recovered");
}

/// Acceptance: a wallet crashed mid-workload and restarted from its
/// write-ahead store recovers every committed delegation and revocation
/// — across the check.sh seed matrix plus this run's env-selected seed.
#[test]
fn store_backed_restart_recovers_committed_state_across_seeds() {
    use std::collections::BTreeSet;

    for seed in chaos_seed_matrix(&[1, 2, 3]) {
        let s = chaotic(light_loss(seed));
        let outcome = s.establish_access();
        assert!(outcome.found(), "seed {seed}: access granted before crash");
        s.revoke_partnership();
        s.net.run_until_idle();

        let addr = BIGISP_WALLET.into();
        let host = s.net.host(&addr).expect("host exists");
        let snapshot = |h: &drbac::net::WalletHost| {
            h.wallet().with_graph(|g| {
                (
                    g.iter().map(|c| c.id()).collect::<BTreeSet<_>>(),
                    g.revoked().clone(),
                )
            })
        };
        let (certs_before, revoked_before) = snapshot(&host);
        assert!(
            !certs_before.is_empty(),
            "seed {seed}: workload committed delegations"
        );
        assert!(
            !revoked_before.is_empty(),
            "seed {seed}: workload committed a revocation"
        );

        // Crash wipes everything in memory; only the store survives.
        let store = s.net.crash_host(&addr).expect("host exists");
        assert!(
            host.wallet().is_empty(),
            "seed {seed}: crash left in-memory state behind"
        );

        let report = s.net.restart_host(&addr, &store).expect("store recovers");
        assert_eq!(
            report.skipped, 0,
            "seed {seed}: every journaled event replays"
        );
        let (certs_after, revoked_after) = snapshot(&host);
        assert_eq!(
            certs_before, certs_after,
            "seed {seed}: committed delegations recovered"
        );
        assert_eq!(
            revoked_before, revoked_after,
            "seed {seed}: committed revocations recovered"
        );
    }
}

#[test]
fn chaos_run_reports_retry_and_timeout_counters() {
    // Heavier loss so this seed provably exercises the retry path.
    let s = chaotic(
        FaultPlan::seeded(7)
            .with_request_loss(0.25)
            .with_latency_jitter(Ticks(1)),
    );
    let outcome = s.establish_access();
    assert!(outcome.found(), "retries absorb 25% loss on this seed");
    assert!(outcome.degraded, "recovered-by-retry runs carry the flag");
    let stats = s.net.stats();
    assert!(stats.timeouts > 0, "losses surfaced as timeouts");
    assert!(
        drbac::obs::global().counter("drbac.net.retry.count").get() > 0,
        "retries surfaced in the global registry"
    );
}
