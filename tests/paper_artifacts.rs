//! Reproduction of every table and figure in the dRBAC paper (ICDCS
//! 2002). Each test is the canonical, executable record of one artifact;
//! EXPERIMENTS.md indexes them.

use drbac::core::{
    AttrConstraint, AttrDeclaration, AttrOp, DiscoveryTag, LocalEntity, Node, ObjectFlag, Proof,
    ProofStep, ProofValidator, SignedAttrDeclaration, SignedRevocation, SimClock, SubjectFlag,
    Ticks, Timestamp, ValidationContext,
};
use drbac::crypto::SchnorrGroup;
use drbac::disco::CoalitionScenario;
use drbac::net::DiscoveryStep;
use drbac::wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0x2002)
}

fn entity(name: &str, rng: &mut StdRng) -> LocalEntity {
    LocalEntity::generate(name, SchnorrGroup::test_256(), rng)
}

/// **Table 1** — the base delegation model. Constructs delegations
/// (1)–(3) exactly as printed and proves `Maria ⇒ BigISP.member`.
#[test]
fn table1_base_delegation_model() {
    let mut rng = rng();
    let big_isp = entity("BigISP", &mut rng);
    let mark = entity("Mark", &mut rng);
    let maria = entity("Maria", &mut rng);
    let member = big_isp.role("member");
    let member_services = big_isp.role("memberServices");

    // (1) [Mark -> BigISP.memberServices] BigISP — self-certified.
    let d1 = big_isp
        .delegate(Node::entity(&mark), Node::role(member_services.clone()))
        .sign(&big_isp)
        .unwrap();
    assert_eq!(
        d1.delegation().kind(),
        drbac::core::DelegationKind::SelfCertified
    );

    // (2) [BigISP.memberServices -> BigISP.member'] BigISP — assignment.
    let d2 = big_isp
        .delegate(
            Node::role(member_services),
            Node::role_admin(member.clone()),
        )
        .sign(&big_isp)
        .unwrap();
    assert!(d2.delegation().is_assignment());

    // (3) [Maria -> BigISP.member] Mark — third-party.
    let d3 = mark
        .delegate(Node::entity(&maria), Node::role(member.clone()))
        .sign(&mark)
        .unwrap();
    assert_eq!(
        d3.delegation().kind(),
        drbac::core::DelegationKind::ThirdParty
    );

    // "(1) and (2) compose a valid proof for Mark ⇒ BigISP.member', which
    // in turn acts as a support proof for delegation (3)."
    let support = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]).unwrap();
    assert_eq!(support.subject(), &Node::entity(&mark));
    assert_eq!(support.object(), &Node::role_admin(member.clone()));

    // "Together, delegations (1), (2), and (3) prove that
    // Maria ⇒ BigISP.member."
    let proof = Proof::from_steps(vec![ProofStep::new(d3).with_support(support)]).unwrap();
    let validator = ProofValidator::new(ValidationContext::at(Timestamp(0)));
    validator
        .validate_query(&proof, &Node::entity(&maria), &Node::role(member), &[])
        .expect("the paper's example proof validates");
}

/// **Table 2** — valued attributes and attribute-assignment: delegations
/// (4) and (5) as printed, plus the discovery-tag and expiry syntax.
#[test]
fn table2_extensions() {
    let mut rng = rng();
    let big_isp = entity("BigISP", &mut rng);
    let air_net = entity("AirNet", &mut rng);
    let sheila = entity("Sheila", &mut rng);

    let bw = air_net.attr("BW", AttrOp::Min);
    let storage = air_net.attr("storage", AttrOp::Subtract);
    let mktg = air_net.role("mktg");

    // (4) [BigISP.member -> AirNet.member with AirNet.BW <= 100
    //      and AirNet.storage -= 20] Sheila
    let d4 = sheila
        .delegate(
            Node::role(big_isp.role("member")),
            Node::role(air_net.role("member")),
        )
        .with_attr(bw.clone(), 100.0)
        .unwrap()
        .with_attr(storage.clone(), 20.0)
        .unwrap()
        .sign(&sheila)
        .unwrap();
    let rendered = d4.delegation().to_string();
    assert!(rendered.contains("with"), "{rendered}");
    assert!(rendered.contains("<= 100"), "{rendered}");
    assert!(rendered.contains("-= 20"), "{rendered}");

    // (5) [AirNet.mktg -> AirNet.storage -= '] AirNet — delegation of
    // assignment for a valued attribute.
    let d5 = air_net
        .delegate(Node::role(mktg), Node::attr_admin(storage.clone()))
        .sign(&air_net)
        .unwrap();
    assert!(d5.delegation().is_assignment());
    assert!(d5.delegation().object().to_string().ends_with("storage'"));

    // Discovery-tag rendering: the §4.2.1 example
    // bigISP.member<wallet.bigISP.com:bigISP.wallet:30:So>.
    let tag = DiscoveryTag::new("wallet.bigISP.com")
        .with_auth_role(big_isp.role("wallet"))
        .with_ttl(Ticks(30))
        .with_subject_flag(SubjectFlag::Search)
        .with_object_flag(ObjectFlag::Store);
    assert!(tag.to_string().ends_with(":30:So>"), "{tag}");

    // Expiration-date semantics.
    let expiring = sheila
        .delegate(
            Node::role(big_isp.role("member")),
            Node::role(air_net.role("member")),
        )
        .expires(Timestamp(100))
        .build();
    assert!(!expiring.is_expired(Timestamp(100)));
    assert!(expiring.is_expired(Timestamp(101)));
}

/// **Table 2 semantics** — operator monotonicity: "no entity is able to
/// delegate greater permissions than they have themselves."
#[test]
fn table2_operator_ranges_enforced() {
    let mut rng = rng();
    let air_net = entity("AirNet", &mut rng);
    let bw = air_net.attr("BW", AttrOp::Min);
    let storage = air_net.attr("storage", AttrOp::Subtract);
    let hours = air_net.attr("hours", AttrOp::Scale);

    assert!(
        storage.clause(-5.0).is_err(),
        "negative subtract would increase access"
    );
    assert!(
        hours.clause(1.5).is_err(),
        "scale > 1 would increase access"
    );
    assert!(hours.clause(-0.1).is_err());
    assert!(bw.clause(f64::NAN).is_err());
    assert!(storage.clause(0.0).is_ok());
    assert!(hours.clause(1.0).is_ok());
}

/// **Table 3 + §5 + Figure 2** — the full case study: distributed proof
/// construction for `Maria ⇒ AirNet.access`, reproducing the exact
/// effective attribute values BW = 100 (≤ 200), storage = 30 (= 50 − 20),
/// hours = 18 (= 60 × 0.3).
#[test]
fn table3_figure2_case_study() {
    let mut rng = rng();
    let scenario = CoalitionScenario::build(&mut rng);

    // Figure 2(a): server wallet empty; home wallets hold their subjects'
    // delegations with support proofs.
    assert!(scenario.server.wallet().is_empty());
    assert!(scenario
        .bigisp_home
        .wallet()
        .contains(scenario.partnership_cert.id()));
    assert!(scenario
        .airnet_home
        .wallet()
        .contains(scenario.access_cert.id()));

    let outcome = scenario.establish_access();
    assert!(outcome.found(), "trace: {:?}", outcome.trace);

    // Figure 2(b) steps: local miss → BigISP home subject query → AirNet
    // home direct query → proof assembled locally.
    assert_eq!(outcome.trace[0], DiscoveryStep::LocalQuery { found: false });
    let wallets: Vec<&str> = outcome
        .wallets_contacted
        .iter()
        .map(|w| w.as_str())
        .collect();
    assert!(wallets.contains(&drbac::disco::scenario::BIGISP_WALLET));
    assert!(wallets.contains(&drbac::disco::scenario::AIRNET_WALLET));

    // §5 step 5: the exact numbers.
    let monitor = outcome.monitor.unwrap();
    for (attr, expected) in scenario.expected_grants() {
        let got = monitor.summary().get(&attr).unwrap();
        assert!((got - expected).abs() < 1e-9, "{attr}: {got} != {expected}");
    }

    // Deterministic message accounting for the whole walkthrough: one
    // subject query at BigISP's home, two direct queries (the miss at
    // BigISP's home, the hit at AirNet's), seven coherence subscriptions
    // (partnership + five support credentials + access root), and the
    // declaration fetches — 24 messages in total.
    let stats = scenario.net.stats();
    assert_eq!(stats.requests("subject-query"), 1);
    assert_eq!(stats.requests("direct-query"), 2);
    assert_eq!(stats.requests("subscribe"), 7);
    assert_eq!(stats.requests("fetch-declarations"), 2);
    assert_eq!(stats.total_messages, 24);
    assert!(stats.total_bytes > 0);

    // §5 step 6: the proof is monitored; Figure 2(b)'s subscriptions make
    // a revocation at BigISP's home wallet invalidate the server's proof.
    assert!(monitor.is_valid());
    scenario.revoke_partnership();
    assert!(!monitor.is_valid());
}

/// **Figure 1** — the single-wallet structure: publication, the three
/// query forms, and proof monitoring against one wallet.
#[test]
fn figure1_single_wallet_operations() {
    let mut rng = rng();
    let a = entity("A", &mut rng);
    let c = entity("C", &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("figure1.wallet", clock.clone());

    // The figure's contents: two delegations supporting A => C.c.
    // [A -> B.b] B and [B.b -> C.c] C (both self-certified).
    let b = entity("B", &mut rng);
    let d1 = b
        .delegate(Node::entity(&a), Node::role(b.role("b")))
        .sign(&b)
        .unwrap();
    let d2 = c
        .delegate(Node::role(b.role("b")), Node::role(c.role("c")))
        .sign(&c)
        .unwrap();
    wallet.publish(d1, vec![]).unwrap();
    wallet.publish(d2.clone(), vec![]).unwrap();

    // Direct query.
    let monitor = wallet
        .query_direct(&Node::entity(&a), &Node::role(c.role("c")), &[])
        .expect("A => C.c");
    assert_eq!(monitor.proof().chain_len(), 2);

    // Subject query: A => * enumerates both reachable roles.
    let subject_proofs = wallet.query_subject(&Node::entity(&a), &[]);
    assert_eq!(subject_proofs.len(), 2);

    // Object query: * => C.c enumerates both reaching subjects.
    let object_proofs = wallet.query_object(&Node::role(c.role("c")), &[]);
    assert_eq!(object_proofs.len(), 2);

    // Proof monitoring: revocation fires the callback.
    let revocation = SignedRevocation::revoke(&d2, &c, clock.now()).unwrap();
    wallet.revoke(&revocation).unwrap();
    assert!(!monitor.is_valid());
}

/// **§3.1.3 separability** — "grouping assignment capabilities into a
/// role R, which can be further delegated": an administrative role whose
/// holder can hand out several privileges, with the aggregate still
/// decomposable.
#[test]
fn separability_admin_role_decomposes() {
    let mut rng = rng();
    let owner = entity("Owner", &mut rng);
    let admin = entity("Admin", &mut rng);
    let alice = entity("Alice", &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("sep.wallet", clock);

    // Owner groups assignment of read & write under Owner.admin.
    let admin_role = owner.role("admin");
    for r in ["read", "write"] {
        wallet
            .publish(
                owner
                    .delegate(
                        Node::role(admin_role.clone()),
                        Node::role_admin(owner.role(r)),
                    )
                    .sign(&owner)
                    .unwrap(),
                vec![],
            )
            .unwrap();
    }
    wallet
        .publish(
            owner
                .delegate(Node::entity(&admin), Node::role(admin_role))
                .sign(&owner)
                .unwrap(),
            vec![],
        )
        .unwrap();

    // The admin delegates ONLY read to Alice — the aggregate decomposes.
    wallet
        .publish(
            admin
                .delegate(Node::entity(&alice), Node::role(owner.role("read")))
                .sign(&admin)
                .unwrap(),
            vec![],
        )
        .unwrap();
    assert!(wallet
        .query_direct(&Node::entity(&alice), &Node::role(owner.role("read")), &[])
        .is_some());
    assert!(wallet
        .query_direct(&Node::entity(&alice), &Node::role(owner.role("write")), &[])
        .is_none());
}

/// **§6 revocation-scheme comparison (F-C), pinned** — one revocation
/// among five monitored delegations over 1000 ticks: delegation
/// subscriptions cost messages only for the change, OCSP polling and
/// CRLs pay every period regardless.
#[test]
fn section6_revocation_scheme_comparison_pinned() {
    use drbac::baselines::crl::{CrlPublisher, CrlSubscriber};
    use drbac::baselines::ocsp::{OcspClient, OcspResponder};
    use drbac::net::{proto::Request, SimNet};
    use std::sync::Arc;

    let mut rng = rng();
    let owner = entity("Owner", &mut rng);
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let home = net.add_host("home", Wallet::new("home", clock.clone()));

    let certs: Vec<Arc<drbac::core::SignedDelegation>> = (0..5)
        .map(|i| {
            let user = entity(&format!("U{i}"), &mut rng);
            let cert = Arc::new(
                owner
                    .delegate(
                        Node::entity(&user),
                        Node::role(owner.role(&format!("r{i}"))),
                    )
                    .sign(&owner)
                    .unwrap(),
            );
            home.wallet().publish(Arc::clone(&cert), vec![]).unwrap();
            cert
        })
        .collect();
    // Five caches, each subscribed to its credential.
    for (i, cert) in certs.iter().enumerate() {
        let addr = format!("cache{i}");
        let host = net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()));
        let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(cert))]).unwrap();
        host.wallet().absorb_proof(&proof, home.addr()).unwrap();
        net.request(
            &"home".into(),
            Request::Subscribe {
                delegation: cert.id(),
                subscriber: addr.as_str().into(),
            },
        )
        .unwrap();
    }
    net.reset_stats();

    // Subscriptions: one revocation = 1 revoke RPC (2 messages) + 1 push.
    clock.advance_to(Timestamp(500));
    let revocation = drbac::core::SignedRevocation::revoke(&certs[2], &owner, clock.now()).unwrap();
    net.request(&"home".into(), Request::Revoke(revocation))
        .unwrap();
    net.run_until_idle();
    let stats = net.stats();
    assert_eq!(
        stats.total_messages, 3,
        "subscription: pay only for the change"
    );
    assert_eq!(stats.push_messages, 1);

    // OCSP over the same horizon: polls at t0,100,…,1000 for all 5 ids.
    let mut responder = OcspResponder::new();
    let mut clients: Vec<OcspClient> = certs
        .iter()
        .map(|c| OcspClient::new(Ticks(100), vec![c.id()]))
        .collect();
    let mut ocsp_messages = 0;
    for t in 0..=1000u64 {
        if t == 501 {
            responder.revoke(certs[2].id(), Timestamp(501));
        }
        for client in &mut clients {
            ocsp_messages += client.tick(Timestamp(t), &mut responder);
        }
    }
    assert_eq!(ocsp_messages, 11 * 5 * 2, "OCSP pays every poll");
    // Revoked just after the t=500 poll; detected at t=600.
    assert_eq!(
        clients[2].staleness(certs[2].id(), &responder),
        Some(Ticks(99))
    );

    // CRL over the same horizon: a full list to all 5 subscribers at
    // t0,100,…,1000.
    let mut publisher = CrlPublisher::new(Ticks(100));
    let mut subscribers: Vec<CrlSubscriber> = (0..5).map(|_| CrlSubscriber::new()).collect();
    let mut crl_messages = 0u64;
    for t in 0..=1000u64 {
        if t == 501 {
            publisher.revoke(certs[2].id(), Timestamp(501));
        }
        for list in publisher.publish_due(Timestamp(t)) {
            for sub in &mut subscribers {
                sub.receive(&list);
                crl_messages += 1;
            }
        }
    }
    assert_eq!(
        crl_messages,
        11 * 5,
        "CRL pays every period for every subscriber"
    );
    assert!(
        subscribers[0].knows_revoked(certs[2].id()),
        "even irrelevant subscribers get it"
    );
}

/// **§4.2.3** — monotonicity-based pruning: a constrained search visits
/// no more edges than an unconstrained replica of itself, and both find
/// the satisfying path.
#[test]
fn section423_constraint_pruning() {
    let mut rng = rng();
    let isp = entity("ISP", &mut rng);
    let user = entity("User", &mut rng);
    let clock = SimClock::new();
    let wallet = Wallet::new("prune.wallet", clock);

    let bw = isp.attr("bw", AttrOp::Min);
    let decl = SignedAttrDeclaration::sign(AttrDeclaration::new(bw.clone(), 1000.0).unwrap(), &isp)
        .unwrap();
    wallet.publish_declaration(&decl).unwrap();

    // A low-bandwidth subtree that a bw>=500 query can prune entirely.
    let weak = isp.role("weak");
    wallet
        .publish(
            isp.delegate(Node::entity(&user), Node::role(weak.clone()))
                .with_attr(bw.clone(), 10.0)
                .unwrap()
                .sign(&isp)
                .unwrap(),
            vec![],
        )
        .unwrap();
    for i in 0..10 {
        wallet
            .publish(
                isp.delegate(
                    Node::role(weak.clone()),
                    Node::role(isp.role(&format!("w{i}"))),
                )
                .sign(&isp)
                .unwrap(),
                vec![],
            )
            .unwrap();
    }
    // The good path.
    let target = isp.role("stream");
    wallet
        .publish(
            isp.delegate(Node::entity(&user), Node::role(target.clone()))
                .with_attr(bw.clone(), 800.0)
                .unwrap()
                .sign(&isp)
                .unwrap(),
            vec![],
        )
        .unwrap();

    let constraint = AttrConstraint::at_least(bw, 500.0);
    let (with_pruning, stats) = wallet.query_direct_with_stats(
        &Node::entity(&user),
        &Node::role(target),
        std::slice::from_ref(&constraint),
    );
    let monitor = with_pruning.expect("good path satisfies");
    assert!(monitor.is_valid());
    // The weak subtree's 10 fan-out edges were never expanded past the
    // pruned entry edge.
    assert!(
        stats.edges_considered <= 4,
        "pruned search considered {}",
        stats.edges_considered
    );
}
