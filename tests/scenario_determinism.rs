//! Generator and soak-runner determinism: a `(family, seed, scale)`
//! spec is the *entire* identity of a scenario. Two generations of the
//! same spec must agree byte-for-byte (schedule fingerprint and oracle
//! fingerprint), and executing the same schedule must reach the same
//! decisions and proof bytes regardless of how many proof-search
//! workers each wallet runs — reproducibility is what makes a soak
//! failure reportable as just a `(family, seed)` pair.

mod common;

use common::chaos_seed;
use drbac::scenario::{run_simnet, Family, RunConfig, Scale, ScenarioSpec};
use proptest::prelude::*;

fn arb_family() -> impl Strategy<Value = Family> {
    (0usize..Family::ALL.len()).prop_map(|i| Family::ALL[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    #[test]
    fn same_spec_generates_identical_worlds(family in arb_family(), seed in 0u64..1_000_000) {
        let spec = ScenarioSpec::new(family, seed).with_scale(Scale::smoke());
        let a = spec.generate();
        let b = spec.generate();
        prop_assert_eq!(a.counts(), b.counts(), "{}/{}: event counts drifted", family, seed);
        prop_assert_eq!(
            a.fingerprint(),
            b.fingerprint(),
            "{}/{}: schedule fingerprint drifted",
            family,
            seed
        );
        prop_assert_eq!(
            a.oracle_fingerprint(),
            b.oracle_fingerprint(),
            "{}/{}: oracle ground truth drifted",
            family,
            seed
        );
    }

    #[test]
    fn different_seeds_generate_different_worlds(family in arb_family(), seed in 0u64..1_000_000) {
        let scale = Scale::smoke();
        let a = ScenarioSpec::new(family, seed).with_scale(scale).generate();
        let b = ScenarioSpec::new(family, seed + 1).with_scale(scale).generate();
        prop_assert_ne!(a.fingerprint(), b.fingerprint());
    }
}

#[test]
fn soak_decisions_are_identical_across_runs_and_worker_counts() {
    let seed = chaos_seed();
    for family in Family::ALL {
        let scenario = ScenarioSpec::new(family, seed)
            .with_scale(Scale::smoke())
            .generate();
        let base = run_simnet(&scenario, &RunConfig::fault_free().with_workers(1));
        // Re-running the same schedule replays identically…
        let replay = run_simnet(&scenario, &RunConfig::fault_free().with_workers(1));
        assert_eq!(
            base.decision_digest(),
            replay.decision_digest(),
            "{family}/{seed}: same run diverged on replay"
        );
        // …and parallel proof search may not change a single decision
        // or proof byte.
        for workers in [2, 4] {
            let wide = run_simnet(&scenario, &RunConfig::fault_free().with_workers(workers));
            assert_eq!(
                base.proof_digests(),
                wide.proof_digests(),
                "{family}/{seed}: proofs changed under {workers} workers"
            );
            assert_eq!(
                base.decision_digest(),
                wide.decision_digest(),
                "{family}/{seed}: decisions changed under {workers} workers"
            );
        }
    }
}

#[test]
fn chaos_soak_replays_identically_per_seed() {
    let seed = chaos_seed();
    let scenario = ScenarioSpec::new(Family::RevocationStorm, seed)
        .with_scale(Scale::smoke())
        .generate();
    let run = || {
        let r = run_simnet(&scenario, &RunConfig::chaos(seed));
        (
            r.decision_digest(),
            r.total_messages,
            r.timeouts,
            r.retried_ops,
            r.monitors_expected_dead,
            r.termination_failures,
        )
    };
    assert_eq!(run(), run(), "chaos runs must replay identically per seed");
}
