#!/usr/bin/env bash
# Records the benchmark artifacts at the repo root:
#   proof  -> BENCH_proof_engine.json  (proof-query throughput at
#             1/2/4/8 prover threads, cold vs warm proof cache)
#   daemon -> BENCH_daemon.json        (loopback daemon throughput and
#             latency percentiles under concurrent mixed load)
#   wallet -> BENCH_wallet_ops.json    (indexed boot + query latency vs
#             journal replay / graph walk at 10^4..10^6 delegations)
#   federation -> BENCH_federation.json (coalition-scale soak: every
#             scenario family × seed matrix on pristine SimNet, chaos
#             SimNet, and a ≥100-daemon TCP federation, with oracle
#             equivalence and cross-substrate proof parity enforced)
#
# Usage: scripts/bench_record.sh [proof|daemon|wallet|federation|all] [--smoke]
#   --smoke   tiny op counts, no acceptance thresholds — used by
#             scripts/check.sh to keep the pipeline honest and fast.
#             Smoke runs write to throwaway paths so the committed
#             full-run artifacts are never clobbered.
#
# A full run (no flag) also enforces each benchmark's acceptance
# thresholds (see the respective bin's doc comment).

set -euo pipefail
cd "$(dirname "$0")/.."

target="all"
smoke=""
for arg in "$@"; do
    case "$arg" in
        proof|daemon|wallet|federation|all) target="$arg" ;;
        --smoke) smoke="--smoke" ;;
        *) echo "usage: scripts/bench_record.sh [proof|daemon|wallet|federation|all] [--smoke]" >&2; exit 2 ;;
    esac
done

if [[ "$target" == "proof" || "$target" == "all" ]]; then
    cargo build --release -p drbac-bench --bin proof_engine_record
    target/release/proof_engine_record $smoke
fi

if [[ "$target" == "wallet" || "$target" == "all" ]]; then
    cargo build --release -p drbac-bench --bin wallet_ops_record
    target/release/wallet_ops_record $smoke
fi

if [[ "$target" == "federation" || "$target" == "all" ]]; then
    cargo build --release -p drbac-bench --bin federation_record
    # Smoke writes to target/BENCH_federation.smoke.json by default, so
    # the committed full-run artifact is never clobbered.
    target/release/federation_record $smoke
fi

if [[ "$target" == "daemon" || "$target" == "all" ]]; then
    cargo build --release -p drbac-bench --bin load_test
    if [[ -n "$smoke" ]]; then
        out="$(mktemp /tmp/bench_daemon_smoke.XXXXXX.json)"
        target/release/load_test --smoke --out "$out"
        rm -f "$out"
    else
        target/release/load_test
    fi
fi
