#!/usr/bin/env bash
# Records the concurrent proof-engine benchmark into
# BENCH_proof_engine.json (repo root): proof-query throughput at 1/2/4/8
# prover threads, cold vs warm proof cache.
#
# Usage: scripts/bench_record.sh [--smoke]
#   --smoke   tiny query counts, no acceptance thresholds — used by
#             scripts/check.sh to keep the pipeline honest and fast.
#
# A full run (no flag) also enforces the acceptance thresholds: warm
# throughput ≥2x from 1 to 4 threads, cold single-thread within 10% of
# the pre-refactor baseline.

set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p drbac-bench --bin proof_engine_record
target/release/proof_engine_record "${1:-}"
