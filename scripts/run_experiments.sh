#!/usr/bin/env bash
# Regenerates every experiment table in EXPERIMENTS.md.
#
# Count-based experiment tables are printed on stderr by the bench
# binaries themselves (deterministic: seeded RNGs, logical clock); this
# script runs the full suite, captures everything, and extracts the
# tables into experiments_tables.txt for easy diffing against
# EXPERIMENTS.md.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== preflight (build + test + clippy) =="
scripts/check.sh

echo "== tests (paper artifacts assert the Table/Figure reproductions) =="
cargo test --workspace 2>&1 | tee test_output.txt | grep -E "test result" | tail -30

echo "== benches (timings + experiment tables) =="
cargo bench --workspace 2>&1 | tee bench_output.txt | grep -E "^(###|\|)" || true

# Extract just the experiment tables.
grep -E "^(###|\|)" bench_output.txt > experiments_tables.txt || true
echo "tables written to experiments_tables.txt"
