#!/usr/bin/env bash
# Offline preflight: build, test and lint the whole workspace.
#
# Everything runs against the vendored dependency shims in vendor/, so
# no network access is needed. Used standalone and as the preflight for
# scripts/run_experiments.sh; CI should run exactly this.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, deny warnings) =="
RUSTFLAGS="-D warnings" cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== chaos suite (seed matrix) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test chaos
done

echo "== concurrency & proof-cache coherence (seed matrix) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test concurrency --test proof_cache
done

echo "== index oracle (indexed boot vs full replay, seed matrix) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test index_oracle
done

echo "== scenario soak (family × seed matrix on SimNet + one TCP federation) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test distributed_soak --test scenario_determinism
done

echo "== bench smoke (proof engine + wallet ops + daemon load + federation soak) =="
scripts/bench_record.sh all --smoke >/dev/null
test -s target/BENCH_proof_engine.smoke.json
test -s target/BENCH_wallet_ops.smoke.json
test -s target/BENCH_federation.smoke.json

echo "== perf guard (cold proof search vs committed artifact) =="
target/release/proof_engine_record --guard

echo "== boot guard (indexed wallet boot vs committed artifact) =="
target/release/wallet_ops_record --guard

echo "== daemon guard (pipelined front-door throughput vs committed artifact) =="
target/release/load_test --guard

echo "== durable store (unit suite + on-disk verify) =="
cargo test -q -p drbac-store
STORE_HOME="$(mktemp -d)"
trap 'rm -rf "$STORE_HOME"' EXIT
DRBAC="target/release/drbac"
for name in BigISP Mark Maria; do
    "$DRBAC" --home "$STORE_HOME" keygen "$name" >/dev/null
done
"$DRBAC" --home "$STORE_HOME" delegate "[Mark -> BigISP.memberServices] BigISP" >/dev/null
"$DRBAC" --home "$STORE_HOME" delegate "[BigISP.memberServices -> BigISP.member'] BigISP" >/dev/null
"$DRBAC" --home "$STORE_HOME" delegate "[Maria -> BigISP.member] Mark" >/dev/null
"$DRBAC" --home "$STORE_HOME" store verify
"$DRBAC" --home "$STORE_HOME" store compact >/dev/null
"$DRBAC" --home "$STORE_HOME" store verify
"$DRBAC" --home "$STORE_HOME" query Maria BigISP.member | grep -q GRANTED

echo "== tcp (loopback parity suite + shutdown accounting + serve/--remote round trip) =="
cargo test -q --test tcp_loopback --test wire_roundtrip --test daemon_shutdown
PORT=$((20000 + RANDOM % 20000))
"$DRBAC" --home "$STORE_HOME" serve "127.0.0.1:$PORT" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null; rm -rf "$STORE_HOME"' EXIT
for _ in $(seq 1 50); do
    "$DRBAC" --home "$STORE_HOME" --remote "127.0.0.1:$PORT" query Maria BigISP.member 2>/dev/null \
        | grep -q GRANTED && break
    sleep 0.1
done
"$DRBAC" --home "$STORE_HOME" --remote "127.0.0.1:$PORT" query Maria BigISP.member | grep -q GRANTED

echo "== observability (remote stats/health against the live daemon) =="
"$DRBAC" health "127.0.0.1:$PORT" | grep -q '^ok '
# The queries above were served over TCP, so the daemon-side service
# histogram must have a non-zero count in the remote scrape.
"$DRBAC" stats --remote "127.0.0.1:$PORT" \
    | grep -E 'drbac\.net\.tcp\.service\.ns +[1-9]' >/dev/null
kill "$SERVE_PID" 2>/dev/null
trap 'rm -rf "$STORE_HOME"' EXIT

echo "== docs (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "check.sh: all green"
