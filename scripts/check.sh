#!/usr/bin/env bash
# Offline preflight: build, test and lint the whole workspace.
#
# Everything runs against the vendored dependency shims in vendor/, so
# no network access is needed. Used standalone and as the preflight for
# scripts/run_experiments.sh; CI should run exactly this.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== chaos suite (seed matrix) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test chaos
done

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "check.sh: all green"
