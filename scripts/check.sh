#!/usr/bin/env bash
# Offline preflight: build, test and lint the whole workspace.
#
# Everything runs against the vendored dependency shims in vendor/, so
# no network access is needed. Used standalone and as the preflight for
# scripts/run_experiments.sh; CI should run exactly this.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release, deny warnings) =="
RUSTFLAGS="-D warnings" cargo build --release --workspace

echo "== tests =="
cargo test -q --workspace

echo "== chaos suite (seed matrix) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test chaos
done

echo "== concurrency & proof-cache coherence (seed matrix) =="
for seed in 1 2 3; do
    echo "-- DRBAC_CHAOS_SEED=$seed"
    DRBAC_CHAOS_SEED=$seed cargo test -q --test concurrency --test proof_cache
done

echo "== proof-engine bench (smoke) =="
scripts/bench_record.sh --smoke >/dev/null
test -s BENCH_proof_engine.json

echo "== durable store (unit suite + on-disk verify) =="
cargo test -q -p drbac-store
STORE_HOME="$(mktemp -d)"
trap 'rm -rf "$STORE_HOME"' EXIT
DRBAC="target/release/drbac"
for name in BigISP Mark Maria; do
    "$DRBAC" --home "$STORE_HOME" keygen "$name" >/dev/null
done
"$DRBAC" --home "$STORE_HOME" delegate "[Mark -> BigISP.memberServices] BigISP" >/dev/null
"$DRBAC" --home "$STORE_HOME" delegate "[BigISP.memberServices -> BigISP.member'] BigISP" >/dev/null
"$DRBAC" --home "$STORE_HOME" delegate "[Maria -> BigISP.member] Mark" >/dev/null
"$DRBAC" --home "$STORE_HOME" store verify
"$DRBAC" --home "$STORE_HOME" store compact >/dev/null
"$DRBAC" --home "$STORE_HOME" store verify
"$DRBAC" --home "$STORE_HOME" query Maria BigISP.member | grep -q GRANTED

echo "== clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "check.sh: all green"
