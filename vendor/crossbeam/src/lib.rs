//! Offline vendored shim providing the subset of `crossbeam::channel` this
//! workspace uses, implemented over `std::sync::mpsc`. Semantics relied on
//! by callers and preserved here:
//!
//! * `Sender::send` fails once the receiver is dropped (used to prune dead
//!   push subscribers),
//! * `bounded(n)` blocks senders past capacity (used as a one-shot reply
//!   channel with `n == 1`),
//! * `Sender` is `Clone + Debug` regardless of `T`.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;
    use std::time::Duration;

    /// Error returned by [`Sender::send`] when the channel is disconnected.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, TryRecvError};

    enum Flavor<T> {
        Unbounded(mpsc::Sender<T>),
        Bounded(mpsc::SyncSender<T>),
    }

    impl<T> Clone for Flavor<T> {
        fn clone(&self) -> Self {
            match self {
                Flavor::Unbounded(tx) => Flavor::Unbounded(tx.clone()),
                Flavor::Bounded(tx) => Flavor::Bounded(tx.clone()),
            }
        }
    }

    /// The sending half of a channel.
    pub struct Sender<T>(Flavor<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Self(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking on a full bounded channel. Errors iff
        /// the receiving side has disconnected.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.0 {
                Flavor::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
                Flavor::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(m)| SendError(m)),
            }
        }
    }

    /// The receiving half of a channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocking iterator over received messages.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(Flavor::Unbounded(tx)), Receiver(rx))
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(Flavor::Bounded(tx)), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_fails_after_receiver_drop() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_round_trip() {
            let (tx, rx) = bounded(1);
            tx.send(7u8).unwrap();
            assert_eq!(rx.recv().unwrap(), 7);
        }
    }
}
