//! Offline vendored shim: the workspace derives `Serialize`/`Deserialize`
//! on wire types but never invokes a serde serializer (the hand-rolled
//! codec in `drbac-core` does all real encoding), so these derives expand
//! to nothing. Declaring `attributes(serde)` keeps `#[serde(...)]` helper
//! attributes inert, exactly as with the real derive.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
