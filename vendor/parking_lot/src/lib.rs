//! Offline vendored shim providing the subset of the `parking_lot` API this
//! workspace uses, implemented over `std::sync`. Poisoning is swallowed:
//! like real parking_lot, a panic while holding a guard does not poison the
//! lock for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual exclusion primitive (parking_lot-style: `lock()` returns the
/// guard directly, never a `Result`).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock (parking_lot-style guard-returning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(RwLockReadGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockReadGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(RwLockWriteGuard(g)),
            Err(sync::TryLockError::Poisoned(p)) => Some(RwLockWriteGuard(p.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
