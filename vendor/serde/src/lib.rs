//! Offline vendored shim for `serde`. The workspace only *derives*
//! `Serialize`/`Deserialize` (wire encoding is the hand-rolled codec in
//! `drbac-core`); nothing ever calls a serde serializer. The derives are
//! inert and the traits exist only so `use serde::{Serialize, Deserialize}`
//! resolves in both the type and macro namespaces.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

pub mod de {
    pub use super::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use super::Serialize;
}
