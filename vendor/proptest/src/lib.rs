//! Offline vendored shim providing the subset of the `proptest` API this
//! workspace uses: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `boxed`, range and tuple strategies, `prop::collection`
//! / `prop::sample` / `prop::option`, the `proptest!` / `prop_assert*` /
//! `prop_oneof!` macros, and a deterministic [`test_runner`]. No shrinking:
//! a failing case panics with the generated inputs' `Debug` rendering.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// The RNG threaded through all value generation.
    pub type TestRng = StdRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter '{}' rejected 1000 candidates", self.whence);
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the engine behind `prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self(options)
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.gen_range(0..self.0.len());
            self.0[idx].generate(rng)
        }
    }

    /// Types with a canonical strategy, used by [`any`].
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Weight edge values: property tests care about extremes.
                    match rng.gen_range(0u8..16) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => 1 as $t,
                        _ => rng.gen::<u64>() as $t,
                    }
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            match rng.gen_range(0u8..16) {
                0 => 0.0,
                1 => -1.0,
                2 => f64::MAX,
                _ => (rng.gen::<f64>() - 0.5) * 2e6,
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.gen_bool(0.9) {
                rng.gen_range(0x20u32..0x7F) as u8 as char
            } else {
                char::from_u32(rng.gen_range(0xA0u32..0x2FFF)).unwrap_or('\u{FFFD}')
            }
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    /// String patterns act as strategies in proptest (regex-driven there).
    /// Here only the `.{m,n}` shape used by the workspace's fuzz tests is
    /// interpreted; anything else falls back to a short random string.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or((0, 64));
            let len = rng.gen_range(min..=max);
            (0..len).map(|_| char::arbitrary(rng)).collect()
        }
    }

    /// Parses `.{m,n}` into `(m, n)`.
    fn parse_dot_repeat(pat: &str) -> Option<(usize, usize)> {
        let body = pat.strip_prefix(".{")?.strip_suffix('}')?;
        let (m, n) = body.split_once(',')?;
        Some((m.trim().parse().ok()?, n.trim().parse().ok()?))
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod prop {
    pub mod collection {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Element-count bounds for collection strategies.
        #[derive(Clone, Copy, Debug)]
        pub struct SizeRange {
            pub min: usize,
            pub max_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self {
                    min: n,
                    max_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                Self {
                    min: r.start,
                    max_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                Self {
                    min: *r.start(),
                    max_inclusive: *r.end(),
                }
            }
        }

        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A strategy for vectors whose elements come from `element` and
        /// whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    pub mod sample {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;
        use std::fmt::Debug;

        pub struct Select<T>(Vec<T>);

        impl<T: Clone + Debug> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.gen_range(0..self.0.len())].clone()
            }
        }

        /// Uniform choice from a fixed set of values.
        pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select needs at least one option");
            Select(options)
        }
    }

    pub mod option {
        use crate::strategy::{Strategy, TestRng};
        use rand::Rng;

        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // Match proptest's default: Some three times out of four.
                if rng.gen_bool(0.75) {
                    Some(self.0.generate(rng))
                } else {
                    None
                }
            }
        }

        /// `None` or a value from the inner strategy.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

pub mod test_runner {
    use rand::SeedableRng;

    pub use crate::strategy::TestRng;

    /// How a single generated case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is meaningful in this shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Self { cases }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    fn seed_for(name: &str) -> u64 {
        // FNV-1a, so each property gets a stable but distinct stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drives one property: generates and checks cases until `config.cases`
    /// pass, panicking on the first failure. `body` receives the RNG and
    /// returns `(debug rendering of inputs, case result)`.
    pub fn run<F>(config: &ProptestConfig, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> (String, TestCaseResult),
    {
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let (inputs, outcome) = body(&mut rng);
            match outcome {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejected += 1;
                    assert!(
                        rejected < 4096,
                        "[{name}] gave up: {rejected} inputs rejected ({why})"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("[{name}] property failed after {passed} passing case(s): {msg}\n  inputs: {inputs}")
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                    let __vals = ($($crate::strategy::Strategy::generate(&($strat), __rng),)+);
                    let __inputs = format!("{:?}", __vals);
                    let ($($pat,)+) = __vals;
                    let mut __case = move || -> $crate::test_runner::TestCaseResult {
                        $body
                        Ok(())
                    };
                    (__inputs, __case())
                });
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts within a `proptest!` body, failing the case (not panicking
/// directly) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `{:?}` != `{:?}`",
            __a,
            __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(*__a == *__b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `{:?}` == `{:?}`",
            __a,
            __b
        );
    }};
}

/// Discards the current case (retried with fresh inputs) when its
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn map_and_flat_map_compose(
            n in (1usize..4).prop_flat_map(|n| {
                (prop::collection::vec(0u32..10, n..=n), Just(n))
            }).prop_map(|(v, n)| (v, n)),
            mut acc in 0u32..1,
        ) {
            let (v, n) = n;
            prop_assert_eq!(v.len(), n);
            for x in v {
                acc += x;
            }
            prop_assert!(acc < 40);
        }

        #[test]
        fn oneof_and_select(
            pick in prop_oneof![Just(1u8), Just(2u8)],
            word in prop::sample::select(vec!["a", "b"]),
            opt in prop::option::of(any::<bool>()),
        ) {
            prop_assert!(pick == 1 || pick == 2);
            prop_assert!(word == "a" || word == "b");
            if let Some(b) = opt {
                prop_assert!(b || !b);
            }
        }

        #[test]
        fn string_pattern_lengths(s in ".{0,12}") {
            prop_assert!(s.chars().count() <= 12);
        }

        #[test]
        fn early_ok_return_works(flag in any::<bool>()) {
            if flag {
                return Ok(());
            }
            prop_assert!(!flag);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(8),
            "always_fails",
            |_rng| ("()".to_string(), Err(TestCaseError::fail("nope"))),
        );
    }
}
