//! Offline vendored shim providing the subset of the `rand` 0.8 API this
//! workspace uses, backed by a xoshiro256++ generator. Deterministic for a
//! given seed (the workspace seeds everything via `seed_from_u64`), but the
//! output stream intentionally makes no attempt to match upstream `rand`.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution in real
/// rand).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Uniform f64 in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable uniformly from a range by [`Rng::gen_range`].
pub trait SampleUniform: Sized + Copy + PartialOrd {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { low <= high } else { low < high },
                    "gen_range: empty range"
                );
                let lo = low as i128;
                let hi = high as i128;
                let span = (hi - lo) as u128 + u128::from(inclusive);
                if span == 0 {
                    // Inclusive range covering the whole domain.
                    return u128::sample_standard(rng) as $t;
                }
                (lo + (u128::sample_standard(rng) % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, _incl: bool) -> Self {
        assert!(low < high || (low == high && _incl), "gen_range: empty range");
        low + unit_f64(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self, incl: bool) -> Self {
        f64::sample_in(rng, f64::from(low), f64::from(high), incl) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_in(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0,1]");
        unit_f64(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed via SplitMix64, like rand_core's default.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro cannot run from an all-zero state.
            if s == [0; 4] {
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            Self { s }
        }
    }

    /// A lazily seeded per-call generator, stand-in for rand's `ThreadRng`.
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// A fresh nondeterministically seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(
        nanos ^ unique.rotate_left(32) ^ std::process::id() as u64,
    ))
}

/// A single random value from the standard distribution.
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

pub mod seq {
    use super::Rng;

    /// Random-order and random-choice helpers on slices.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates.
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// Uniform distribution over a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        pub fn new(low: T, high: T) -> Self {
            Self { low, high }
        }

        pub fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_in(rng, self.low, self.high, false)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn arrays_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let a: [u8; 32] = rng.gen();
        let b: [u8; 32] = rng.gen();
        assert_ne!(a, b);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, sorted);
    }
}
