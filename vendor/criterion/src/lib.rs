//! Offline vendored shim providing the subset of the `criterion` API this
//! workspace's benches use. When invoked by `cargo bench` (cargo passes
//! `--bench` to the target) each routine is timed for real and a
//! mean/median/p95 line is printed; under `cargo test` (no `--bench` flag)
//! every routine runs exactly once as a smoke test, keeping the suite fast.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A benchmark identifier: an optional function name plus a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: Option<String>,
    param: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        Self {
            name: Some(name.into()),
            param: param.to_string(),
        }
    }

    pub fn from_parameter(param: impl fmt::Display) -> Self {
        Self {
            name: None,
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.name {
            Some(n) => write!(f, "{n}/{}", self.param),
            None => f.write_str(&self.param),
        }
    }
}

/// Anything accepted where criterion takes a benchmark id.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation; accepted and echoed but not used in summaries.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    BytesDecimal(u64),
    Elements(u64),
}

/// Timing loop driver handed to bench closures.
pub struct Bencher {
    mode: Mode,
    samples: Vec<Duration>,
    sample_size: usize,
}

#[derive(Clone, Copy, Debug, PartialEq)]
enum Mode {
    /// `cargo bench`: measure for real.
    Measure,
    /// `cargo test` / `--test`: run the routine once to prove it works.
    Smoke,
}

impl Bencher {
    /// Calls `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.mode == Mode::Smoke {
            black_box(routine());
            return;
        }
        // Warm up and size the inner loop so one sample costs ~1ms.
        let warmup = Instant::now();
        black_box(routine());
        let once = warmup.elapsed().max(Duration::from_nanos(1));
        let iters_per_sample = (Duration::from_millis(1).as_nanos() / once.as_nanos()).max(1)
            as u64;
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t0.elapsed() / iters_per_sample as u32);
            if started.elapsed() > budget {
                break;
            }
        }
    }

    /// Like [`Bencher::iter`], but runs `setup` before each timed call
    /// and excludes it from the measurement (upstream's
    /// `iter_batched(setup, routine, BatchSize::PerIteration)` shape).
    pub fn iter_with_setup<I, O, S, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.mode == Mode::Smoke {
            black_box(routine(setup()));
            return;
        }
        black_box(routine(setup())); // warm up
        let budget = Duration::from_millis(500);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<60} smoke-ok");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let total: Duration = sorted.iter().sum();
    let mean = total / sorted.len() as u32;
    let median = sorted[sorted.len() / 2];
    let p95 = sorted[(sorted.len() * 95 / 100).min(sorted.len() - 1)];
    println!(
        "{id:<60} mean {:>12} median {:>12} p95 {:>12} ({} samples)",
        fmt_duration(mean),
        fmt_duration(median),
        fmt_duration(p95),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        let bench_mode = std::env::args().any(|a| a == "--bench");
        let test_flag = std::env::args().any(|a| a == "--test");
        Self {
            sample_size: 100,
            mode: if bench_mode && !test_flag {
                Mode::Measure
            } else {
                Mode::Smoke
            },
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 10, "criterion requires sample_size >= 10");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let mut b = Bencher {
            mode: self.mode,
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if self.mode == Mode::Measure {
            report(&id, &b.samples);
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 10, "criterion requires sample_size >= 10");
        self.sample_size = Some(n);
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into_id());
        let mut b = Bencher {
            mode: self.criterion.mode,
            samples: Vec::new(),
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
        };
        f(&mut b);
        if self.criterion.mode == Mode::Measure {
            report(&id, &b.samples);
        }
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

/// Declares a function that runs a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_criterion() -> Criterion {
        Criterion {
            sample_size: 10,
            mode: Mode::Smoke,
        }
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("sign", "modp").to_string(), "sign/modp");
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut c = smoke_criterion();
        let mut calls = 0;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(10);
            group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
                b.iter(|| calls += 1)
            });
            group.finish();
        }
        assert_eq!(calls, 1);
    }
}
