//! Wire-codec and syntax throughput: serialization cost of credentials
//! and proofs (what every inter-wallet message pays), plus the textual
//! parser/renderer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drbac_core::syntax::{parse_delegation, render_delegation, SyntaxContext};
use drbac_core::{LocalEntity, Node, Proof, ProofStep, SignedDelegation};
use drbac_crypto::SchnorrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn fixtures() -> (LocalEntity, LocalEntity, SignedDelegation, Proof) {
    let mut rng = StdRng::seed_from_u64(1);
    let g = SchnorrGroup::test_256();
    let a = LocalEntity::generate("A", g.clone(), &mut rng);
    let m = LocalEntity::generate("M", g, &mut rng);
    let bw = a.attr("bw", drbac_core::AttrOp::Min);
    let cert = a
        .delegate(Node::entity(&m), Node::role(a.role("r")))
        .with_attr(bw, 100.0)
        .unwrap()
        .sign(&a)
        .unwrap();

    // An 8-step chain with one supported third-party step.
    let mut steps = Vec::new();
    let mut prev = Node::entity(&m);
    for i in 0..8 {
        let next = Node::role(a.role(&format!("c{i}")));
        let c = a.delegate(prev.clone(), next.clone()).sign(&a).unwrap();
        steps.push(ProofStep::new(c));
        prev = next;
    }
    let proof = Proof::from_steps(steps).unwrap();
    (a, m, cert, proof)
}

fn bench_wire(c: &mut Criterion) {
    let (_, _, cert, proof) = fixtures();
    let cert_bytes = cert.to_bytes();
    let proof_bytes = proof.to_bytes();

    let mut group = c.benchmark_group("codec/wire");
    group.throughput(Throughput::Bytes(cert_bytes.len() as u64));
    group.bench_function(BenchmarkId::new("encode_cert", cert_bytes.len()), |b| {
        b.iter(|| black_box(cert.to_bytes()))
    });
    group.bench_function(BenchmarkId::new("decode_cert", cert_bytes.len()), |b| {
        b.iter(|| SignedDelegation::from_bytes(black_box(&cert_bytes)).unwrap())
    });
    group.throughput(Throughput::Bytes(proof_bytes.len() as u64));
    group.bench_function(BenchmarkId::new("encode_proof8", proof_bytes.len()), |b| {
        b.iter(|| black_box(proof.to_bytes()))
    });
    group.bench_function(BenchmarkId::new("decode_proof8", proof_bytes.len()), |b| {
        b.iter(|| Proof::from_bytes(black_box(&proof_bytes)).unwrap())
    });
    group.finish();
}

fn bench_syntax(c: &mut Criterion) {
    let (a, m, cert, _) = fixtures();
    let mut ctx = SyntaxContext::new();
    ctx.register("A", a.id());
    ctx.register("M", m.id());
    let text = render_delegation(cert.delegation(), &ctx);

    let mut group = c.benchmark_group("codec/syntax");
    group.bench_function("render", |b| {
        b.iter(|| black_box(render_delegation(cert.delegation(), &ctx)))
    });
    group.bench_function("parse", |b| {
        b.iter(|| parse_delegation(black_box(&text), &ctx).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_wire, bench_syntax
}
criterion_main!(benches);
