//! Ablation bench for the PKI substrate's design choices (DESIGN.md §4):
//!
//! * Montgomery-windowed modular exponentiation vs naive binary
//!   square-and-multiply with division-based reduction (the dominant cost
//!   of signing/verifying);
//! * Karatsuba vs schoolbook multiplication across operand sizes;
//! * signature cost in the test group vs the 2048-bit production group,
//!   tying the substrate numbers to end-to-end credential costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_bignum::{BigUint, MontgomeryCtx};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_biguint(limbs: usize, rng: &mut StdRng) -> BigUint {
    BigUint::from_limbs((0..limbs).map(|_| rng.gen()).collect())
}

fn random_odd(limbs: usize, rng: &mut StdRng) -> BigUint {
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.gen()).collect();
    v[0] |= 1;
    v[limbs - 1] |= 1 << 63; // full width
    BigUint::from_limbs(v)
}

fn bench_modpow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut group = c.benchmark_group("bignum_ablation/modpow");
    group.sample_size(10);
    for limbs in [4usize, 16, 32] {
        // bits = limbs * 64 (256 / 1024 / 2048).
        let modulus = random_odd(limbs, &mut rng);
        let base = random_biguint(limbs, &mut rng).rem_ref(&modulus);
        let exp = random_biguint(limbs, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("montgomery_windowed", limbs * 64),
            &limbs,
            |b, _| b.iter(|| black_box(base.modpow(&exp, &modulus))),
        );
        group.bench_with_input(
            BenchmarkId::new("naive_binary", limbs * 64),
            &limbs,
            |b, _| b.iter(|| black_box(base.modpow_naive(&exp, &modulus))),
        );
        // Context reuse (what verification amortizes).
        let ctx = MontgomeryCtx::new(&modulus).unwrap();
        group.bench_with_input(
            BenchmarkId::new("montgomery_reused_ctx", limbs * 64),
            &limbs,
            |b, _| b.iter(|| black_box(ctx.modpow(&base, &exp))),
        );
    }
    group.finish();
}

fn bench_multiplication(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut group = c.benchmark_group("bignum_ablation/mul");
    for limbs in [8usize, 24, 64, 128] {
        let a = random_biguint(limbs, &mut rng);
        let b_val = random_biguint(limbs, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("schoolbook", limbs * 64),
            &limbs,
            |bch, _| bch.iter(|| black_box(a.mul_schoolbook(&b_val))),
        );
        group.bench_with_input(
            BenchmarkId::new("karatsuba", limbs * 64),
            &limbs,
            |bch, _| bch.iter(|| black_box(a.mul_karatsuba(&b_val))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_modpow, bench_multiplication
}
criterion_main!(benches);
