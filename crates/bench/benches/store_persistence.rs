//! Durability cost: write-ahead append throughput (records/sec, by
//! group-commit batch size) and crash-recovery time (log scan and full
//! wallet replay). The table printed at bench start records the
//! headline numbers — appends/sec and replay ms per 10k records — so
//! future runs can track the trajectory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drbac_baselines::workload::random_mesh;
use drbac_bench::{fmt, table_header, table_row};
use drbac_core::{DelegationId, SimClock};
use drbac_store::{scan_log, StoreConfig, StoreEvent, WalletStore};
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

/// A cheap fixed-size record — isolates framing/CRC/medium cost from
/// credential signing, which the wallet benches already measure.
fn tombstone(i: u64) -> StoreEvent {
    let mut id = [0u8; 32];
    id[..8].copy_from_slice(&i.to_be_bytes());
    StoreEvent::RevokeMark(DelegationId(id))
}

fn tombstone_log(records: u64) -> Vec<u8> {
    let store = WalletStore::in_memory();
    for i in 0..records {
        store.append(&tombstone(i)).unwrap();
    }
    store.log_bytes().unwrap()
}

/// A journaled wallet workload: every publish lands in the store, so
/// recovery replays real signed credentials through re-verification.
fn journaled_store(certs: usize) -> Arc<WalletStore> {
    let mut rng = StdRng::seed_from_u64(certs as u64);
    let workload = random_mesh(certs, (certs / 10).max(4), &mut rng);
    let wallet = Wallet::new("bench.store", SimClock::new());
    let store = Arc::new(WalletStore::in_memory());
    wallet.attach_journal(Arc::clone(&store));
    for cert in workload.graph.iter() {
        wallet.publish(Arc::clone(cert), vec![]).unwrap();
    }
    store
}

/// Headline trajectory numbers, printed once so `cargo bench` output
/// (and EXPERIMENTS.md snapshots) carry the full experiment record.
fn print_headline_table() {
    const N: u64 = 10_000;
    table_header(
        "Experiment F-S: durable store headline costs (10k records)",
        &["metric", "value"],
    );

    let start = Instant::now();
    let log = tombstone_log(N);
    let append_secs = start.elapsed().as_secs_f64();
    table_row(&[
        "append throughput (records/sec, group_commit=1)".into(),
        fmt(N as f64 / append_secs),
    ]);
    table_row(&["log size (bytes)".into(), fmt(log.len() as f64)]);

    let start = Instant::now();
    let scan = scan_log(&log);
    table_row(&[
        "scan 10k records (ms)".into(),
        fmt(start.elapsed().as_secs_f64() * 1e3),
    ]);
    assert_eq!(scan.records.len() as u64, N);

    let store = WalletStore::from_log_bytes(log);
    let start = Instant::now();
    let recovered = store.recover().unwrap();
    table_row(&[
        "recover 10k records (ms)".into(),
        fmt(start.elapsed().as_secs_f64() * 1e3),
    ]);
    assert_eq!(recovered.events.len() as u64, N);

    let store = journaled_store(1_000);
    let wallet = Wallet::new("bench.replay", SimClock::new());
    let start = Instant::now();
    let report = wallet.recover_from_store(&store).unwrap();
    let replay_secs = start.elapsed().as_secs_f64();
    table_row(&[
        "wallet replay, 1k re-verified credentials (ms)".into(),
        fmt(replay_secs * 1e3),
    ]);
    table_row(&[
        "wallet replay extrapolated (ms per 10k records)".into(),
        fmt(replay_secs * 1e7 / report.replayed as f64),
    ]);
    eprintln!();
}

fn bench_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_persistence/append");
    group.throughput(Throughput::Elements(1));
    for &batch in &[1u64, 64] {
        let store = WalletStore::in_memory_with(StoreConfig {
            group_commit: batch,
        });
        let mut i = 0u64;
        group.bench_with_input(
            BenchmarkId::new("group_commit", batch),
            &batch,
            |b, _| {
                b.iter(|| {
                    i += 1;
                    black_box(store.append(&tombstone(i)).unwrap())
                })
            },
        );
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_persistence/recovery");
    for &records in &[1_000u64, 10_000] {
        let log = tombstone_log(records);
        group.throughput(Throughput::Elements(records));
        group.bench_with_input(
            BenchmarkId::new("scan_log", records),
            &records,
            |b, _| b.iter(|| black_box(scan_log(black_box(&log))).records.len()),
        );
        group.bench_with_input(
            BenchmarkId::new("recover", records),
            &records,
            |b, _| {
                b.iter_with_setup(
                    || WalletStore::from_log_bytes(log.clone()),
                    |store| black_box(store.recover().unwrap()).events.len(),
                )
            },
        );
    }
    group.finish();
}

fn bench_wallet_replay(c: &mut Criterion) {
    let store = journaled_store(1_000);
    c.bench_function("store_persistence/wallet_replay_1000", |b| {
        b.iter_with_setup(
            || Wallet::new("bench.replay", SimClock::new()),
            |wallet| {
                let report = wallet.recover_from_store(&store).unwrap();
                assert_eq!(report.skipped, 0);
                black_box(report.replayed)
            },
        )
    });
}

fn bench_snapshot_compaction(c: &mut Criterion) {
    let store = journaled_store(1_000);
    let wallet = Wallet::new("bench.snap", SimClock::new());
    wallet.recover_from_store(&store).unwrap();
    c.bench_function("store_persistence/snapshot_and_compact_1000", |b| {
        b.iter(|| {
            store
                .install_snapshot(|| wallet.export_bytes())
                .unwrap();
            black_box(store.status().records)
        })
    });
}

fn headline_then_benches(c: &mut Criterion) {
    print_headline_table();
    bench_append(c);
    bench_recovery(c);
    bench_wallet_replay(c);
    bench_snapshot_compaction(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = headline_then_benches
}
criterion_main!(benches);
