//! Experiment F-A (§4.2.3): unidirectional vs bidirectional chain search.
//!
//! "The number of potential authorizing paths in a delegation tree with a
//! constant branching factor ... is clearly exponential in depth"; a
//! bidirectional search sharply reduces the work. The printed series
//! report edges considered by each strategy as branching factor and depth
//! grow, on funnel topologies that are wide on one side — bidirectional
//! search matches the cheap direction without being told which it is.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_baselines::strategy::{bidirectional_search, forward_search, reverse_search};
use drbac_baselines::workload::{funnel, layered_dag, WorkloadSpec};
use drbac_bench::{table_header, table_row};
use drbac_core::Timestamp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn print_series() {
    table_header(
        "F-A — edges considered vs branching (funnel, depth 5, wide forward side)",
        &["branching", "forward", "reverse", "bidirectional"],
    );
    for branching in [2usize, 3, 4, 5] {
        let mut rng = StdRng::seed_from_u64(branching as u64);
        let w = funnel(branching, 5, true, &mut rng);
        let now = Timestamp(0);
        let f = forward_search(&w.graph, &w.subject, &w.object, now);
        let r = reverse_search(&w.graph, &w.subject, &w.object, now);
        let b = bidirectional_search(&w.graph, &w.subject, &w.object, now);
        assert!(f.found && r.found && b.found);
        table_row(&[
            branching.to_string(),
            f.edges_considered.to_string(),
            r.edges_considered.to_string(),
            b.edges_considered.to_string(),
        ]);
    }

    table_header(
        "F-A — edges considered vs depth (funnel, branching 3, wide forward side)",
        &["depth", "forward", "reverse", "bidirectional"],
    );
    for depth in [2usize, 3, 4, 5, 6, 7] {
        let mut rng = StdRng::seed_from_u64(depth as u64);
        let w = funnel(3, depth, true, &mut rng);
        let now = Timestamp(0);
        let f = forward_search(&w.graph, &w.subject, &w.object, now);
        let r = reverse_search(&w.graph, &w.subject, &w.object, now);
        let b = bidirectional_search(&w.graph, &w.subject, &w.object, now);
        table_row(&[
            depth.to_string(),
            f.edges_considered.to_string(),
            r.edges_considered.to_string(),
            b.edges_considered.to_string(),
        ]);
    }

    table_header(
        "F-A — mirrored funnel (wide REVERSE side, branching 3): bidirectional adapts",
        &["depth", "forward", "reverse", "bidirectional"],
    );
    for depth in [3usize, 5, 7] {
        let mut rng = StdRng::seed_from_u64(depth as u64 + 100);
        let w = funnel(3, depth, false, &mut rng);
        let now = Timestamp(0);
        let f = forward_search(&w.graph, &w.subject, &w.object, now);
        let r = reverse_search(&w.graph, &w.subject, &w.object, now);
        let b = bidirectional_search(&w.graph, &w.subject, &w.object, now);
        table_row(&[
            depth.to_string(),
            f.edges_considered.to_string(),
            r.edges_considered.to_string(),
            b.edges_considered.to_string(),
        ]);
    }
}

fn print_path_counts() {
    // The paper's literal claim: "The number of potential authorizing
    // paths in a delegation tree with a constant branching factor ... is
    // clearly exponential in depth." Count them by exhaustive
    // enumeration on layered DAGs, against the single-answer BFS cost.
    table_header(
        "F-A — authorizing paths vs depth (layered DAG, branching 3, width 3)",
        &[
            "depth",
            "paths (b^d)",
            "enumeration edges",
            "single-answer BFS edges",
        ],
    );
    for depth in [2usize, 3, 4, 5, 6] {
        let mut rng = StdRng::seed_from_u64(depth as u64);
        let spec = WorkloadSpec {
            branching: 3,
            depth,
            width: 3,
        };
        let w = layered_dag(&spec, &mut rng);
        let opts = drbac_graph::SearchOptions::at(Timestamp(0));
        let (paths, enum_stats) = w
            .graph
            .enumerate_proofs(&w.subject, &w.object, &opts, 1_000_000);
        let (_, bfs_stats) = w.graph.direct_query(&w.subject, &w.object, &opts);
        table_row(&[
            depth.to_string(),
            paths.len().to_string(),
            enum_stats.edges_considered.to_string(),
            bfs_stats.edges_considered.to_string(),
        ]);
    }
}

fn bench_strategies(c: &mut Criterion) {
    print_series();
    print_path_counts();

    let mut group = c.benchmark_group("search_strategies");
    for depth in [3usize, 5, 7] {
        let mut rng = StdRng::seed_from_u64(depth as u64);
        let w = funnel(3, depth, true, &mut rng);
        let now = Timestamp(0);
        group.bench_with_input(BenchmarkId::new("forward", depth), &depth, |b, _| {
            b.iter(|| black_box(forward_search(&w.graph, &w.subject, &w.object, now)))
        });
        group.bench_with_input(BenchmarkId::new("reverse", depth), &depth, |b, _| {
            b.iter(|| black_box(reverse_search(&w.graph, &w.subject, &w.object, now)))
        });
        group.bench_with_input(BenchmarkId::new("bidirectional", depth), &depth, |b, _| {
            b.iter(|| black_box(bidirectional_search(&w.graph, &w.subject, &w.object, now)))
        });
    }
    group.finish();

    // Full proof-producing search on a layered DAG (the production path).
    let mut rng = StdRng::seed_from_u64(42);
    let spec = WorkloadSpec {
        branching: 3,
        depth: 5,
        width: 9,
    };
    let w = layered_dag(&spec, &mut rng);
    c.bench_function("search_strategies/graph_direct_query_layered_b3_d5", |b| {
        b.iter(|| {
            black_box(w.graph.direct_query(
                &w.subject,
                &w.object,
                &drbac_graph::SearchOptions::at(Timestamp(0)),
            ))
        })
    });

    // Parallel frontier expansion: the same query at pool sizes 1/2/4.
    // Results must be identical (deterministic ordering); this measures
    // the coordination overhead/benefit of the worker pool.
    let mut group = c.benchmark_group("search_strategies/workers");
    for workers in [1usize, 2, 4] {
        let mut opts = drbac_graph::SearchOptions::at(Timestamp(0));
        opts.workers = workers;
        group.bench_with_input(
            BenchmarkId::new("graph_direct_query_layered_b3_d5", workers),
            &workers,
            |b, _| b.iter(|| black_box(w.graph.direct_query(&w.subject, &w.object, &opts))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies
}
criterion_main!(benches);
