//! Experiment F-D (and Figure 1): wallet operation cost vs stored
//! delegation count — publication, direct query, subject query, object
//! query, and proof-monitor establishment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use drbac_baselines::workload::random_mesh;
use drbac_core::{SimClock, Timestamp};
use drbac_graph::SearchOptions;
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

const SIZES: &[usize] = &[100, 1_000, 10_000];

fn bench_wallet_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wallet_ops");
    for &size in SIZES {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let workload = random_mesh(size, (size / 10).max(4), &mut rng);
        let wallet = Wallet::new("bench.wallet", SimClock::new());
        wallet.set_query_cache(false); // measure real search cost below
        for cert in workload.graph.iter() {
            wallet.publish(Arc::clone(cert), vec![]).unwrap();
        }

        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("direct_query", size), &size, |b, _| {
            b.iter(|| {
                black_box(wallet.query_direct(
                    black_box(&workload.subject),
                    black_box(&workload.object),
                    &[],
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("subject_query", size), &size, |b, _| {
            b.iter(|| black_box(wallet.query_subject(black_box(&workload.subject), &[])))
        });
        group.bench_with_input(BenchmarkId::new("object_query", size), &size, |b, _| {
            b.iter(|| black_box(wallet.query_object(black_box(&workload.object), &[])))
        });

        // Repeated identical query: served from the generation-keyed
        // answer cache.
        group.bench_with_input(
            BenchmarkId::new("direct_query_cached", size),
            &size,
            |b, _| {
                wallet.set_query_cache(true);
                // Warm the cache once.
                let _ = wallet.query_direct(&workload.subject, &workload.object, &[]);
                b.iter(|| {
                    black_box(wallet.query_direct(
                        black_box(&workload.subject),
                        black_box(&workload.object),
                        &[],
                    ))
                });
                wallet.set_query_cache(false);
            },
        );

        // Raw graph query (no monitor/validation) for comparison.
        group.bench_with_input(
            BenchmarkId::new("graph_direct_query", size),
            &size,
            |b, _| {
                b.iter(|| {
                    black_box(workload.graph.direct_query(
                        &workload.subject,
                        &workload.object,
                        &SearchOptions::at(Timestamp(0)),
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_publication(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let workload = random_mesh(1000, 100, &mut rng);
    let certs: Vec<_> = workload.graph.iter().cloned().collect();

    c.bench_function("wallet_ops/publish_1000_self_certified", |b| {
        b.iter_with_setup(
            || Wallet::new("pub.wallet", SimClock::new()),
            |wallet| {
                for cert in &certs {
                    wallet.publish(Arc::clone(cert), vec![]).unwrap();
                }
                black_box(wallet.len())
            },
        )
    });
}

fn bench_monitoring(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(8);
    let workload = drbac_baselines::workload::chain(8, &mut rng);
    let wallet = Wallet::new("mon.wallet", SimClock::new());
    for cert in workload.graph.iter() {
        wallet.publish(Arc::clone(cert), vec![]).unwrap();
    }
    c.bench_function("wallet_ops/query_and_monitor_chain8", |b| {
        b.iter(|| {
            let monitor = wallet
                .query_direct(&workload.subject, &workload.object, &[])
                .expect("chain exists");
            black_box(monitor.watched().len())
        })
    });

    c.bench_function("wallet_ops/subscribe_unsubscribe", |b| {
        let id = workload.graph.iter().next().unwrap().id();
        b.iter(|| {
            let sub = wallet.subscribe(id, |_| {});
            black_box(wallet.unsubscribe(sub))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_wallet_scaling, bench_publication, bench_monitoring
}
criterion_main!(benches);
