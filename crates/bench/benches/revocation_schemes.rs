//! Experiment F-C (§6): delegation subscriptions vs OCSP polling vs CRL
//! lists.
//!
//! Paper claims measured here:
//! * "Unlike OCSP, where a client ... must continuously poll an
//!   authorized server (even when the credential has not changed),
//!   delegation subscriptions only require server and network resources
//!   when a credential has been updated."
//! * "Revocation-based schemes transmit information regarding all revoked
//!   certificates to all subscribers" (CRL volume), while subscriptions
//!   "avoid communication of updates irrelevant to particular caches."
//!
//! Setup: one home wallet holding `n` delegations, `n` relying parties
//! each monitoring one of them over a horizon of `T` ticks, with a
//! fraction `r` of delegations revoked at random times. We count wire
//! messages and detection staleness for each scheme.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use drbac_baselines::crl::{CrlPublisher, CrlSubscriber};
use drbac_baselines::ocsp::{OcspClient, OcspResponder};
use drbac_bench::{fmt, table_header, table_row};
use drbac_core::{
    DelegationId, LocalEntity, Node, Proof, ProofStep, SignedRevocation, SimClock, Ticks, Timestamp,
};
use drbac_crypto::SchnorrGroup;
use drbac_net::{proto::Request, SimNet};
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const HORIZON: u64 = 1_000;
const POLL_INTERVAL: u64 = 50;
const CRL_PERIOD: u64 = 50;
const N: usize = 50;

struct RevocationPlan {
    owner: LocalEntity,
    certs: Vec<Arc<drbac_core::SignedDelegation>>,
    /// (index, revocation time), sorted by time.
    revocations: Vec<(usize, Timestamp)>,
}

fn plan(rate: f64, rng: &mut StdRng) -> RevocationPlan {
    let owner = LocalEntity::generate("Owner", SchnorrGroup::test_256(), rng);
    let certs: Vec<Arc<drbac_core::SignedDelegation>> = (0..N)
        .map(|i| {
            let user = LocalEntity::generate(format!("U{i}"), SchnorrGroup::test_256(), rng);
            Arc::new(
                owner
                    .delegate(
                        Node::entity(&user),
                        Node::role(owner.role(&format!("r{i}"))),
                    )
                    .sign(&owner)
                    .unwrap(),
            )
        })
        .collect();
    let mut revocations: Vec<(usize, Timestamp)> = Vec::new();
    for i in 0..N {
        if rng.gen_bool(rate) {
            revocations.push((i, Timestamp(rng.gen_range(1..HORIZON))));
        }
    }
    revocations.sort_by_key(|&(_, t)| t);
    RevocationPlan {
        owner,
        certs,
        revocations,
    }
}

struct SchemeResult {
    messages: u64,
    mean_staleness: f64,
    detected: usize,
}

/// dRBAC delegation subscriptions over the simulated network.
fn run_subscriptions(plan: &RevocationPlan) -> SchemeResult {
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let home = net.add_host("home", Wallet::new("home", clock.clone()));
    for cert in &plan.certs {
        home.wallet().publish(Arc::clone(cert), vec![]).unwrap();
    }
    // Each relying party caches its credential and subscribes once.
    let caches: Vec<_> = (0..N)
        .map(|i| {
            let addr = format!("cache{i}");
            let host = net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()));
            let proof =
                Proof::from_steps(vec![ProofStep::new(Arc::clone(&plan.certs[i]))]).unwrap();
            host.wallet().absorb_proof(&proof, home.addr()).unwrap();
            net.request(
                &"home".into(),
                Request::Subscribe {
                    delegation: plan.certs[i].id(),
                    subscriber: addr.as_str().into(),
                },
            )
            .unwrap();
            host
        })
        .collect();
    net.reset_stats(); // setup cost excluded, as for the other schemes

    let mut staleness_sum = 0.0;
    let mut detected = 0usize;
    for &(idx, at) in &plan.revocations {
        clock.advance_to(at);
        let revocation = SignedRevocation::revoke(&plan.certs[idx], &plan.owner, at).unwrap();
        net.request(&"home".into(), Request::Revoke(revocation))
            .unwrap();
        net.run_until_idle();
        // Push latency = 1 tick; the cache's graph reflects it now.
        let known = caches[idx]
            .wallet()
            .with_graph(|g| g.is_revoked(plan.certs[idx].id()));
        if known {
            detected += 1;
            staleness_sum += clock.now().since(at).0 as f64;
        }
    }
    clock.advance_to(Timestamp(HORIZON));
    let stats = net.stats();
    SchemeResult {
        messages: stats.total_messages,
        mean_staleness: if detected > 0 {
            staleness_sum / detected as f64
        } else {
            0.0
        },
        detected,
    }
}

/// OCSP-style polling.
fn run_ocsp(plan: &RevocationPlan) -> SchemeResult {
    let mut responder = OcspResponder::new();
    let mut clients: Vec<OcspClient> = plan
        .certs
        .iter()
        .map(|c| OcspClient::new(Ticks(POLL_INTERVAL), vec![c.id()]))
        .collect();
    let mut messages = 0u64;
    let mut event_idx = 0usize;
    for t in 0..=HORIZON {
        while event_idx < plan.revocations.len() && plan.revocations[event_idx].1 .0 == t {
            let (idx, at) = plan.revocations[event_idx];
            responder.revoke(plan.certs[idx].id(), at);
            event_idx += 1;
        }
        for client in &mut clients {
            messages += client.tick(Timestamp(t), &mut responder);
        }
    }
    let mut staleness_sum = 0.0;
    let mut detected = 0usize;
    for &(idx, _) in &plan.revocations {
        if let Some(s) = clients[idx].staleness(plan.certs[idx].id(), &responder) {
            detected += 1;
            staleness_sum += s.0 as f64;
        }
    }
    SchemeResult {
        messages,
        mean_staleness: if detected > 0 {
            staleness_sum / detected as f64
        } else {
            0.0
        },
        detected,
    }
}

/// CRL-style periodic lists.
fn run_crl(plan: &RevocationPlan) -> SchemeResult {
    let mut publisher = CrlPublisher::new(Ticks(CRL_PERIOD));
    let mut subscribers: Vec<CrlSubscriber> = (0..N).map(|_| CrlSubscriber::new()).collect();
    let mut event_idx = 0usize;
    let mut messages = 0u64;
    for t in 0..=HORIZON {
        while event_idx < plan.revocations.len() && plan.revocations[event_idx].1 .0 == t {
            let (idx, at) = plan.revocations[event_idx];
            publisher.revoke(plan.certs[idx].id(), at);
            event_idx += 1;
        }
        for list in publisher.publish_due(Timestamp(t)) {
            for sub in &mut subscribers {
                sub.receive(&list);
                messages += 1;
            }
        }
    }
    let mut staleness_sum = 0.0;
    let mut detected = 0usize;
    for &(idx, _) in &plan.revocations {
        if let Some(s) = subscribers[idx].staleness(plan.certs[idx].id(), &publisher) {
            detected += 1;
            staleness_sum += s.0 as f64;
        }
    }
    SchemeResult {
        messages,
        mean_staleness: if detected > 0 {
            staleness_sum / detected as f64
        } else {
            0.0
        },
        detected,
    }
}

fn id_unused(_: DelegationId) {}

fn print_series() {
    table_header(
        &format!(
            "F-C — messages & staleness over {HORIZON} ticks, {N} monitored delegations \
             (poll/CRL period {POLL_INTERVAL})"
        ),
        &[
            "revocation rate",
            "scheme",
            "messages",
            "mean staleness",
            "detected/revoked",
        ],
    );
    for rate in [0.02f64, 0.10, 0.30] {
        let mut rng = StdRng::seed_from_u64((rate * 1000.0) as u64);
        let p = plan(rate, &mut rng);
        let revoked = p.revocations.len();
        for (name, result) in [
            ("subscription", run_subscriptions(&p)),
            ("ocsp-poll", run_ocsp(&p)),
            ("crl", run_crl(&p)),
        ] {
            table_row(&[
                format!("{rate:.2}"),
                name.into(),
                result.messages.to_string(),
                fmt(result.mean_staleness),
                format!("{}/{revoked}", result.detected),
            ]);
        }
    }
}

fn bench_schemes(c: &mut Criterion) {
    print_series();
    let mut rng = StdRng::seed_from_u64(0xFC);
    let p = plan(0.10, &mut rng);
    let mut group = c.benchmark_group("revocation_schemes");
    group.bench_function("subscription", |b| {
        b.iter(|| black_box(run_subscriptions(&p).messages))
    });
    group.bench_function("ocsp", |b| b.iter(|| black_box(run_ocsp(&p).messages)));
    group.bench_function("crl", |b| b.iter(|| black_box(run_crl(&p).messages)));
    group.finish();
    id_unused(DelegationId([0; 32]));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schemes
}
criterion_main!(benches);
