//! Experiment F-G (§6): hierarchical validation-agent caches.
//!
//! "Delegation subscriptions permit construction of hierarchical
//! directory-based caches of trusted online validation agents" — instead
//! of every relying party subscribing directly at the issuer's home
//! wallet, caches subscribe at intermediate proxies, bounding the home
//! wallet's fan-out at the cost of extra propagation hops.
//!
//! The printed series compares, for one revocation reaching N caches:
//! the home wallet's own outgoing pushes (its load), the total push
//! messages on the network, and the logical time until the last cache
//! learns of the revocation.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_bench::{table_header, table_row};
use drbac_core::{
    LocalEntity, Node, Proof, ProofStep, SignedDelegation, SignedRevocation, SimClock, Ticks,
};
use drbac_crypto::SchnorrGroup;
use drbac_net::{proto::Request, SimNet, WalletHost};
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Topology {
    net: SimNet,
    clock: SimClock,
    owner: LocalEntity,
    cert: Arc<SignedDelegation>,
    home: WalletHost,
    leaves: Vec<WalletHost>,
}

/// Builds `n` leaf caches subscribed either directly at the home wallet
/// (`fanout == 0`) or through a proxy tree with the given fanout.
fn build(n: usize, fanout: usize) -> Topology {
    let mut rng = StdRng::seed_from_u64((n * 31 + fanout) as u64);
    let g = SchnorrGroup::test_256();
    let clock = SimClock::new();
    let net = SimNet::new(clock.clone(), Ticks(1));
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let user = LocalEntity::generate("User", g, &mut rng);
    let home = net.add_host("home", Wallet::new("home", clock.clone()));
    let cert: Arc<SignedDelegation> = Arc::new(
        owner
            .delegate(Node::entity(&user), Node::role(owner.role("r")))
            .sign(&owner)
            .unwrap(),
    );
    home.wallet().publish(Arc::clone(&cert), vec![]).unwrap();
    let proof = Proof::from_steps(vec![ProofStep::new(Arc::clone(&cert))]).unwrap();

    // Build hosts level by level: parents[i] is the subscription target
    // for level i+1.
    let mut leaves = Vec::new();
    let mut parents = vec![home.clone()];
    let mut made = 0usize;
    let mut level = 0usize;
    while made < n {
        let mut next_parents = Vec::new();
        for parent in &parents {
            let children = if fanout == 0 {
                n - made
            } else {
                fanout.min(n - made)
            };
            for c in 0..children {
                let addr = format!("l{level}c{made}-{c}");
                let host = net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()));
                host.wallet().absorb_proof(&proof, parent.addr()).unwrap();
                net.request(
                    parent.addr(),
                    Request::Subscribe {
                        delegation: cert.id(),
                        subscriber: host.addr().clone(),
                    },
                )
                .unwrap();
                made += 1;
                next_parents.push(host.clone());
                leaves.push(host);
                if made >= n {
                    break;
                }
            }
            if made >= n {
                break;
            }
        }
        parents = next_parents;
        level += 1;
        if fanout == 0 {
            break;
        }
    }
    net.reset_stats();
    Topology {
        net,
        clock,
        owner,
        cert,
        home,
        leaves,
    }
}

/// Revokes the credential and measures propagation.
fn run(t: &Topology) -> (usize, u64, u64) {
    let start = t.clock.now();
    let revocation = SignedRevocation::revoke(&t.cert, &t.owner, start).unwrap();
    t.net
        .request(&"home".into(), Request::Revoke(revocation))
        .unwrap();
    let home_fanout = t.home.subscribers_of(t.cert.id()).len();
    t.net.run_until_idle();
    let total_pushes = t.net.stats().push_messages;
    let latency = t.clock.now().since(start).0;
    // Every leaf must have learned of the revocation.
    for leaf in &t.leaves {
        assert!(leaf.wallet().with_graph(|g| g.is_revoked(t.cert.id())));
    }
    (home_fanout, total_pushes, latency)
}

fn print_series() {
    table_header(
        "F-G — flat vs hierarchical subscription fan-out (one revocation, N caches)",
        &[
            "N",
            "topology",
            "home fan-out",
            "total pushes",
            "last-cache latency (ticks)",
        ],
    );
    for n in [16usize, 64, 256] {
        for (name, fanout) in [("flat", 0usize), ("tree-f4", 4), ("tree-f8", 8)] {
            let t = build(n, fanout);
            let (home_fanout, total, latency) = run(&t);
            table_row(&[
                n.to_string(),
                name.into(),
                home_fanout.to_string(),
                total.to_string(),
                latency.to_string(),
            ]);
        }
    }
}

fn bench_hierarchy(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("hierarchy");
    group.sample_size(10);
    for (name, fanout) in [("flat", 0usize), ("tree-f8", 8)] {
        group.bench_with_input(BenchmarkId::new("propagate_64", name), &fanout, |b, &f| {
            b.iter_with_setup(|| build(64, f), |t| black_box(run(&t)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hierarchy
}
criterion_main!(benches);
