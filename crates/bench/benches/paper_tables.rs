//! Benches reproducing the paper's tables and figures:
//!
//! * `table1` — construct + validate the Table 1 proof
//!   (`Maria ⇒ BigISP.member` via third-party delegation with support),
//! * `table2` — valued-attribute accumulation for Table 2's delegations,
//! * `table3_figure2` — the full distributed case study (steps 1–6),
//!   asserting the §5 numbers (BW=100, storage=30, hours=18) every
//!   iteration,
//! * `figure2_revocation` — partnership revocation push propagation.

use criterion::{criterion_group, criterion_main, Criterion};
use drbac_bench::{fmt, table_header, table_row};
use drbac_core::{
    LocalEntity, Node, Proof, ProofStep, ProofValidator, Ticks, Timestamp, ValidationContext,
};
use drbac_crypto::SchnorrGroup;
use drbac_disco::CoalitionScenario;
use drbac_net::FaultPlan;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let g = SchnorrGroup::test_256();
    let big_isp = LocalEntity::generate("BigISP", g.clone(), &mut rng);
    let mark = LocalEntity::generate("Mark", g.clone(), &mut rng);
    let maria = LocalEntity::generate("Maria", g, &mut rng);
    let member = big_isp.role("member");
    let services = big_isp.role("memberServices");

    c.bench_function("table1/issue_three_delegations", |b| {
        b.iter(|| {
            let d1 = big_isp
                .delegate(Node::entity(&mark), Node::role(services.clone()))
                .sign(&big_isp)
                .unwrap();
            let d2 = big_isp
                .delegate(
                    Node::role(services.clone()),
                    Node::role_admin(member.clone()),
                )
                .sign(&big_isp)
                .unwrap();
            let d3 = mark
                .delegate(Node::entity(&maria), Node::role(member.clone()))
                .sign(&mark)
                .unwrap();
            black_box((d1, d2, d3))
        })
    });

    let d1 = big_isp
        .delegate(Node::entity(&mark), Node::role(services.clone()))
        .sign(&big_isp)
        .unwrap();
    let d2 = big_isp
        .delegate(Node::role(services), Node::role_admin(member.clone()))
        .sign(&big_isp)
        .unwrap();
    let d3 = mark
        .delegate(Node::entity(&maria), Node::role(member))
        .sign(&mark)
        .unwrap();
    let support = Proof::from_steps(vec![ProofStep::new(d1), ProofStep::new(d2)]).unwrap();
    let proof = Proof::from_steps(vec![ProofStep::new(d3).with_support(support)]).unwrap();
    let validator = ProofValidator::new(ValidationContext::at(Timestamp(0)));

    c.bench_function("table1/validate_proof_with_support", |b| {
        b.iter(|| validator.validate(black_box(&proof)).unwrap())
    });
}

fn bench_table2(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let g = SchnorrGroup::test_256();
    let air_net = LocalEntity::generate("AirNet", g.clone(), &mut rng);
    let sheila = LocalEntity::generate("Sheila", g.clone(), &mut rng);
    let big_isp = LocalEntity::generate("BigISP", g, &mut rng);
    let bw = air_net.attr("BW", drbac_core::AttrOp::Min);
    let storage = air_net.attr("storage", drbac_core::AttrOp::Subtract);

    c.bench_function("table2/issue_valued_attribute_delegation", |b| {
        b.iter(|| {
            sheila
                .delegate(
                    Node::role(big_isp.role("member")),
                    Node::role(air_net.role("member")),
                )
                .with_attr(bw.clone(), 100.0)
                .unwrap()
                .with_attr(storage.clone(), 20.0)
                .unwrap()
                .sign(&sheila)
                .unwrap()
        })
    });

    // Accumulation cost over long chains.
    let mut acc_input = Vec::new();
    for i in 0..64 {
        acc_input.push(bw.clause(1000.0 - i as f64).unwrap());
        acc_input.push(storage.clause(0.5).unwrap());
    }
    c.bench_function("table2/accumulate_128_clauses", |b| {
        b.iter(|| {
            let mut acc = drbac_core::AttrAccumulator::new();
            for clause in &acc_input {
                acc.absorb_clause(black_box(clause));
            }
            acc
        })
    });
}

fn bench_table3_figure2(c: &mut Criterion) {
    // Record the experiment table once.
    let scenario = CoalitionScenario::build(&mut StdRng::seed_from_u64(3));
    let outcome = scenario.establish_access();
    assert!(outcome.found());
    let monitor = outcome.monitor.as_ref().unwrap();
    table_header(
        "Table 3 / Figure 2 / §5 — case study grants (paper: BW=100, storage=30, hours=18)",
        &["attribute", "paper", "measured"],
    );
    for (attr, expected) in scenario.expected_grants() {
        let got = monitor.summary().get(&attr).unwrap();
        table_row(&[attr.to_string(), fmt(expected), fmt(got)]);
        assert!((got - expected).abs() < 1e-9);
    }
    let stats = scenario.net.stats();
    table_header(
        "Figure 2 — discovery message accounting",
        &["metric", "count"],
    );
    table_row(&["total messages".into(), stats.total_messages.to_string()]);
    table_row(&[
        "subject queries".into(),
        stats.requests("subject-query").to_string(),
    ]);
    table_row(&[
        "direct queries".into(),
        stats.requests("direct-query").to_string(),
    ]);
    table_row(&[
        "subscriptions".into(),
        stats.requests("subscribe").to_string(),
    ]);
    table_row(&[
        "wallets contacted".into(),
        outcome.wallets_contacted.len().to_string(),
    ]);

    c.bench_function("figure2/full_distributed_case_study", |b| {
        b.iter_with_setup(
            || CoalitionScenario::build(&mut StdRng::seed_from_u64(3)),
            |scenario| {
                let outcome = scenario.establish_access();
                assert!(outcome.found());
                black_box(outcome)
            },
        )
    });

    // Resilience overhead: the same case study with 10% seeded request
    // loss + 1-tick jitter, so every iteration exercises the bounded
    // retry path (DESIGN.md §4.3) and still lands the §5 grants.
    let chaos_plan = || {
        FaultPlan::seeded(7)
            .with_request_loss(0.1)
            .with_latency_jitter(Ticks(1))
    };
    let chaotic =
        CoalitionScenario::build_with_faults(&mut StdRng::seed_from_u64(3), chaos_plan());
    let chaos_outcome = chaotic.establish_access();
    assert!(chaos_outcome.found());
    let chaos_stats = chaotic.net.stats();
    table_header(
        "Figure 2 under chaos — 10% loss, seed 7 (vs fault-free)",
        &["metric", "fault-free", "chaotic"],
    );
    table_row(&[
        "total messages".into(),
        stats.total_messages.to_string(),
        chaos_stats.total_messages.to_string(),
    ]);
    table_row(&[
        "request timeouts".into(),
        stats.timeouts.to_string(),
        chaos_stats.timeouts.to_string(),
    ]);
    table_row(&[
        "degraded outcome".into(),
        outcome.degraded.to_string(),
        chaos_outcome.degraded.to_string(),
    ]);

    c.bench_function("figure2/case_study_under_10pct_loss", |b| {
        b.iter_with_setup(
            || CoalitionScenario::build_with_faults(&mut StdRng::seed_from_u64(3), chaos_plan()),
            |scenario| {
                let outcome = scenario.establish_access();
                assert!(outcome.found());
                black_box(outcome)
            },
        )
    });

    c.bench_function("figure2/revocation_push_propagation", |b| {
        b.iter_with_setup(
            || {
                let s = CoalitionScenario::build(&mut StdRng::seed_from_u64(3));
                let outcome = s.establish_access();
                assert!(outcome.found());
                (s, outcome)
            },
            |(s, outcome)| {
                let delivered = s.revoke_partnership();
                assert!(!outcome.monitor.as_ref().unwrap().is_valid());
                black_box(delivered)
            },
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1, bench_table2, bench_table3_figure2
}
criterion_main!(benches);
