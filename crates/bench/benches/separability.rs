//! Experiment F-F (§3.1.3, §6): third-party delegation vs the SPKI/RT0
//! phantom-role encoding.
//!
//! Paper claim: without third-party delegation, each administrator must
//! mint a phantom role per delegable privilege, so setup cost and
//! namespace pollution grow as `k·m` (roles × administrators) instead of
//! `k + m`. The printed series show the crossover is immediate and the
//! gap widens linearly in each dimension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_baselines::phantom::{drbac_encoding, phantom_encoding};
use drbac_bench::{table_header, table_row};
use drbac_core::LocalEntity;
use drbac_crypto::SchnorrGroup;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn world(admins: usize, rng: &mut StdRng) -> (LocalEntity, Vec<LocalEntity>) {
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), rng);
    let admins = (0..admins)
        .map(|i| LocalEntity::generate(format!("T{i}"), g.clone(), rng))
        .collect();
    (owner, admins)
}

fn roles(k: usize) -> Vec<String> {
    (0..k).map(|i| format!("r{i}")).collect()
}

fn print_series() {
    table_header(
        "F-F — setup delegations & roles created: dRBAC vs phantom-role (m admins, k roles)",
        &[
            "m",
            "k",
            "dRBAC setup",
            "phantom setup",
            "dRBAC roles",
            "phantom roles",
        ],
    );
    let mut rng = StdRng::seed_from_u64(0xFF00);
    for (m, k) in [(2usize, 4usize), (4, 8), (8, 16), (16, 32)] {
        let (owner, admins) = world(m, &mut rng);
        let d = drbac_encoding(&owner, &admins, &roles(k)).unwrap().cost;
        let p = phantom_encoding(&owner, &admins, &roles(k)).unwrap().cost;
        table_row(&[
            m.to_string(),
            k.to_string(),
            d.setup_delegations.to_string(),
            p.setup_delegations.to_string(),
            d.roles_created.to_string(),
            p.roles_created.to_string(),
        ]);
    }
}

fn bench_encodings(c: &mut Criterion) {
    print_series();
    let mut group = c.benchmark_group("separability");
    for (m, k) in [(4usize, 8usize), (8, 16)] {
        let mut rng = StdRng::seed_from_u64((m * 100 + k) as u64);
        let (owner, admins) = world(m, &mut rng);
        let names = roles(k);
        group.bench_with_input(
            BenchmarkId::new("drbac_setup", format!("m{m}k{k}")),
            &k,
            |b, _| {
                b.iter(|| black_box(drbac_encoding(&owner, &admins, &names).unwrap().setup.len()))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("phantom_setup", format!("m{m}k{k}")),
            &k,
            |b, _| {
                b.iter(|| {
                    black_box(
                        phantom_encoding(&owner, &admins, &names)
                            .unwrap()
                            .setup
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_encodings
}
criterion_main!(benches);
