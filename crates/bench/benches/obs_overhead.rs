//! Observability overhead: proof validation with the default no-op
//! recorder (tracing disabled) must stay within noise of the seed's
//! uninstrumented hot path, and the acceptance bar is <5% overhead.
//!
//! Three configurations over the identical validation workload:
//!
//! * `noop` — instrumentation compiled in, no recorder installed (the
//!   default every library consumer gets);
//! * `ring` — a [`RingRecorder`] installed, spans and events recorded;
//! * `metrics_only` — what the counters/histograms alone cost, measured
//!   by driving the registry directly at the same call rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_baselines::workload::chain;
use drbac_core::{Proof, ProofValidator, Timestamp, ValidationContext};
use drbac_graph::SearchOptions;
use drbac_obs::RingRecorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn chain_proof(len: usize) -> Proof {
    let mut rng = StdRng::seed_from_u64(len as u64);
    let w = chain(len, &mut rng);
    let (proof, _) = w
        .graph
        .direct_query(&w.subject, &w.object, &SearchOptions::at(Timestamp(0)));
    proof.expect("chain connects")
}

fn bench_recorder_modes(c: &mut Criterion) {
    let validator = ProofValidator::new(ValidationContext::at(Timestamp(0)));
    let proof = chain_proof(4);
    validator.validate(&proof).expect("valid workload");

    let mut group = c.benchmark_group("obs_overhead/proof_validation");
    drbac_obs::clear_recorder();
    group.bench_function(BenchmarkId::from_parameter("noop"), |b| {
        b.iter(|| validator.validate(black_box(&proof)).unwrap())
    });
    let recorder = RingRecorder::install(4096);
    group.bench_function(BenchmarkId::from_parameter("ring"), |b| {
        b.iter(|| validator.validate(black_box(&proof)).unwrap())
    });
    drbac_obs::clear_recorder();
    assert!(!recorder.is_empty(), "ring recorder saw the spans");
    group.finish();
}

fn bench_instrument_primitives(c: &mut Criterion) {
    let registry = drbac_obs::Registry::new();
    let counter = registry.counter("bench.counter");
    let histogram = registry.histogram("bench.histogram.ns");

    let mut group = c.benchmark_group("obs_overhead/primitives");
    group.bench_function("counter_inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram_record", |b| {
        b.iter(|| histogram.record(black_box(1234)))
    });
    group.bench_function("registry_lookup", |b| {
        b.iter(|| registry.counter(black_box("bench.counter")).inc())
    });
    group.bench_function("static_counter_macro", |b| {
        b.iter(|| drbac_obs::static_counter!("drbac.bench.macro.count").inc())
    });
    group.finish();
}

criterion_group!(benches, bench_recorder_modes, bench_instrument_primitives);
criterion_main!(benches);
