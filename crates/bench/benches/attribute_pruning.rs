//! Experiment F-B (§4.2.3): "monotonicity of valued-attribute values
//! enables pruning of the search" — constrained search with pruning on
//! vs off, sweeping the constraint tightness.
//!
//! Workload: a layered DAG whose edges each carry a `Min` bandwidth
//! clause drawn from the layer index, so tighter constraints kill more
//! branches earlier. Both configurations return the same answer (see the
//! `pruning_preserves_answers` property test); only the work differs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_bench::{table_header, table_row};
use drbac_core::{AttrConstraint, AttrDeclaration, AttrOp, LocalEntity, Node, Timestamp};
use drbac_crypto::SchnorrGroup;
use drbac_graph::{DelegationGraph, SearchOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

struct PrunableWorkload {
    graph: DelegationGraph,
    subject: Node,
    object: Node,
    bw: drbac_core::AttrRef,
}

/// A layered DAG where each edge carries a random BW clause; roughly half
/// the paths fall below mid-range constraints.
fn build(rng: &mut StdRng, width: usize, depth: usize, branching: usize) -> PrunableWorkload {
    let owner = LocalEntity::generate("Owner", SchnorrGroup::test_256(), rng);
    let user = LocalEntity::generate("User", SchnorrGroup::test_256(), rng);
    let bw = owner.attr("bw", AttrOp::Min);
    let subject = Node::entity(&user);
    let object = Node::role(owner.role("target"));
    let mut graph = DelegationGraph::new();
    graph.insert_declaration(&AttrDeclaration::new(bw.clone(), 1000.0).unwrap());

    let layers: Vec<Vec<Node>> = (0..depth)
        .map(|l| {
            (0..width)
                .map(|i| Node::role(owner.role(&format!("l{l}n{i}"))))
                .collect()
        })
        .collect();
    let connect = |graph: &mut DelegationGraph, from: &Node, to: &Node, rng: &mut StdRng| {
        // Edge bandwidth: uniform in [0, 1000).
        let cap = rng.gen_range(0.0..1000.0);
        graph.insert(
            owner
                .delegate(from.clone(), to.clone())
                .with_attr(bw.clone(), cap)
                .unwrap()
                .sign(&owner)
                .unwrap(),
        );
    };
    for target in layers[0]
        .iter()
        .take(branching.min(width))
        .cloned()
        .collect::<Vec<_>>()
    {
        connect(&mut graph, &subject, &target, rng);
    }
    for w in 0..depth.saturating_sub(1) {
        for from in layers[w].clone() {
            for _ in 0..branching {
                let to = layers[w + 1][rng.gen_range(0..width)].clone();
                if from != to {
                    connect(&mut graph, &from, &to, rng);
                }
            }
        }
    }
    for from in layers[depth - 1].clone() {
        connect(&mut graph, &from, &object, rng);
    }
    // One guaranteed high-bandwidth path so every constraint <= 900 is
    // satisfiable.
    let mut prev = subject.clone();
    for (l, layer) in layers.iter().enumerate() {
        let hop = layer[l % width].clone();
        graph.insert(
            owner
                .delegate(prev.clone(), hop.clone())
                .with_attr(bw.clone(), 950.0)
                .unwrap()
                .serial(9_000 + l as u64)
                .sign(&owner)
                .unwrap(),
        );
        prev = hop;
    }
    graph.insert(
        owner
            .delegate(prev, object.clone())
            .with_attr(bw.clone(), 950.0)
            .unwrap()
            .serial(9_999)
            .sign(&owner)
            .unwrap(),
    );
    PrunableWorkload {
        graph,
        subject,
        object,
        bw,
    }
}

fn print_series(w: &PrunableWorkload) {
    table_header(
        "F-B — edges considered vs constraint tightness (width 8, depth 5, branching 3)",
        &[
            "required BW",
            "pruned",
            "unpruned",
            "found(pruned)",
            "found(unpruned)",
        ],
    );
    for required in [0.0, 250.0, 500.0, 750.0, 900.0] {
        let constraint = AttrConstraint::at_least(w.bw.clone(), required);
        let pruned_opts = SearchOptions::at(Timestamp(0)).with_constraint(constraint.clone());
        let unpruned_opts = SearchOptions::at(Timestamp(0))
            .with_constraint(constraint)
            .without_pruning();
        let (p1, s1) = w.graph.direct_query(&w.subject, &w.object, &pruned_opts);
        let (p2, s2) = w.graph.direct_query(&w.subject, &w.object, &unpruned_opts);
        table_row(&[
            format!("{required:.0}"),
            s1.edges_considered.to_string(),
            s2.edges_considered.to_string(),
            p1.is_some().to_string(),
            p2.is_some().to_string(),
        ]);
    }
}

fn bench_pruning(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xF_B);
    let w = build(&mut rng, 8, 5, 3);
    print_series(&w);

    let mut group = c.benchmark_group("attribute_pruning");
    for required in [250.0f64, 750.0] {
        let constraint = AttrConstraint::at_least(w.bw.clone(), required);
        let pruned = SearchOptions::at(Timestamp(0)).with_constraint(constraint.clone());
        let unpruned = SearchOptions::at(Timestamp(0))
            .with_constraint(constraint)
            .without_pruning();
        group.bench_with_input(
            BenchmarkId::new("pruned", required as u64),
            &required,
            |b, _| b.iter(|| black_box(w.graph.direct_query(&w.subject, &w.object, &pruned))),
        );
        group.bench_with_input(
            BenchmarkId::new("unpruned", required as u64),
            &required,
            |b, _| b.iter(|| black_box(w.graph.direct_query(&w.subject, &w.object, &unpruned))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pruning
}
criterion_main!(benches);
