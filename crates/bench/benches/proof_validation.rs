//! Experiment F-E: proof validation cost vs chain length, support-proof
//! nesting depth, and signature group (fast test group vs realistic
//! 2048-bit MODP group).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drbac_baselines::workload::chain;
use drbac_core::{
    LocalEntity, Node, Proof, ProofStep, ProofValidator, Timestamp, ValidationContext,
};
use drbac_crypto::SchnorrGroup;
use drbac_graph::SearchOptions;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn chain_proof(len: usize) -> Proof {
    let mut rng = StdRng::seed_from_u64(len as u64);
    let w = chain(len, &mut rng);
    let (proof, _) = w
        .graph
        .direct_query(&w.subject, &w.object, &SearchOptions::at(Timestamp(0)));
    proof.expect("chain connects")
}

/// A proof whose single third-party step nests support proofs `depth`
/// levels deep (each support's issuer itself authorized by a third-party
/// delegation).
fn nested_support_proof(depth: usize, rng: &mut StdRng) -> Proof {
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), rng);
    let user = LocalEntity::generate("User", g.clone(), rng);
    let role = owner.role("r");

    // deputies[0] gets R' self-certified; deputies[i] gets R' from
    // deputies[i-1] (third-party, needing the previous support).
    let deputies: Vec<LocalEntity> = (0..=depth)
        .map(|i| LocalEntity::generate(format!("D{i}"), g.clone(), rng))
        .collect();
    let root_grant = owner
        .delegate(Node::entity(&deputies[0]), Node::role_admin(role.clone()))
        .sign(&owner)
        .unwrap();
    let mut support = Proof::from_steps(vec![ProofStep::new(root_grant)]).unwrap();
    for i in 1..=depth {
        let grant = deputies[i - 1]
            .delegate(Node::entity(&deputies[i]), Node::role_admin(role.clone()))
            .sign(&deputies[i - 1])
            .unwrap();
        support = Proof::from_steps(vec![ProofStep::new(grant).with_support(support)]).unwrap();
    }
    let last = &deputies[depth];
    let final_cert = last
        .delegate(Node::entity(&user), Node::role(role))
        .sign(last)
        .unwrap();
    Proof::from_steps(vec![ProofStep::new(final_cert).with_support(support)]).unwrap()
}

fn bench_chain_length(c: &mut Criterion) {
    let validator = ProofValidator::new(ValidationContext::at(Timestamp(0)));
    let mut group = c.benchmark_group("proof_validation/chain_length");
    for len in [1usize, 4, 16, 32] {
        let proof = chain_proof(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| validator.validate(black_box(&proof)).unwrap())
        });
    }
    group.finish();
}

fn bench_support_depth(c: &mut Criterion) {
    let validator =
        ProofValidator::new(ValidationContext::at(Timestamp(0)).with_max_support_depth(16));
    let mut rng = StdRng::seed_from_u64(0xFE);
    let mut group = c.benchmark_group("proof_validation/support_depth");
    for depth in [0usize, 2, 4, 8] {
        let proof = nested_support_proof(depth, &mut rng);
        validator.validate(&proof).expect("nested proof valid");
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| validator.validate(black_box(&proof)).unwrap())
        });
    }
    group.finish();
}

fn bench_signature_groups(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0xFF);
    let mut group = c.benchmark_group("proof_validation/signature_group");
    group.sample_size(10);
    for (name, schnorr) in [
        ("test_256", SchnorrGroup::test_256()),
        ("modp_2048", SchnorrGroup::modp_2048()),
    ] {
        let issuer = LocalEntity::generate("Issuer", schnorr.clone(), &mut rng);
        let subject = LocalEntity::generate("Subject", schnorr, &mut rng);
        let cert = issuer
            .delegate(Node::entity(&subject), Node::role(issuer.role("r")))
            .sign(&issuer)
            .unwrap();
        group.bench_function(BenchmarkId::new("sign", name), |b| {
            b.iter(|| {
                issuer
                    .delegate(Node::entity(&subject), Node::role(issuer.role("r")))
                    .sign(&issuer)
                    .unwrap()
            })
        });
        group.bench_function(BenchmarkId::new("verify", name), |b| {
            b.iter(|| black_box(&cert).verify(Timestamp(0)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_chain_length, bench_support_depth, bench_signature_groups
}
criterion_main!(benches);
