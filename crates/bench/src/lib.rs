//! Shared helpers for the dRBAC benchmark harness.
//!
//! The paper (ICDCS 2002) has no quantitative evaluation section; its
//! tables are syntax tables and its figures are architecture diagrams.
//! The benches in `benches/` therefore (a) time the reproduction of each
//! table/figure's *behaviour*, and (b) measure the paper's qualitative
//! performance claims (§3.1.3, §4.2.3, §6). Count-based results are
//! printed as tables on stderr at bench start so `cargo bench` output
//! contains the full experiment record; EXPERIMENTS.md snapshots them.

/// Prints an experiment table header (markdown-ish, greppable).
pub fn table_header(experiment: &str, columns: &[&str]) {
    eprintln!("\n### {experiment}");
    eprintln!("| {} |", columns.join(" | "));
    eprintln!(
        "|{}|",
        columns.iter().map(|_| "---").collect::<Vec<_>>().join("|")
    );
}

/// Prints one experiment table row.
pub fn table_row(cells: &[String]) {
    eprintln!("| {} |", cells.join(" | "));
}

/// Formats a float with sensible precision for the tables.
pub fn fmt(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}
