//! Records the daemon load benchmark into `BENCH_daemon.json`: request
//! throughput and client-observed / daemon-observed latency percentiles
//! for N loopback wallet daemons under M concurrent clients driving a
//! seeded mixed workload (~80% direct queries, ~10% publishes, ~10%
//! revocations of the client's own earlier publishes).
//!
//! Every daemon runs in-process, so the global metrics registry holds
//! both sides of each exchange: `drbac.net.tcp.request.ns` is the
//! client's send→decode round trip and `drbac.net.tcp.service.ns` is
//! the daemon's frame-rx→reply-tx service time. The gap between their
//! percentiles is loopback socket + framing overhead.
//!
//! Usage: `load_test [--smoke] [--seed N] [--out FILE]`. Smoke mode
//! (one daemon, 4 clients, ~2s) is what `scripts/check.sh` runs; the
//! committed artifact comes from a full run, which measures at least
//! two client-concurrency levels against two daemons.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use drbac_core::{LocalEntity, Node, SimClock, SignedRevocation};
use drbac_crypto::SchnorrGroup;
use drbac_net::proto::{Reply, Request};
use drbac_net::{TcpConfig, TcpTransport, Transport, WalletDaemon};
use drbac_obs::HistogramSnapshot;
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DEFAULT_SEED: u64 = 2002;
const USERS: usize = 4;
const DEPTH: usize = 3;

/// One daemon's workload fixture: the owner signs the ladder (and the
/// load-generated publishes/revocations), the keys are every provable
/// (subject, object) pair.
struct World {
    owner: LocalEntity,
    keys: Vec<(Node, Node)>,
}

/// Publishes the `USERS × DEPTH` role-ladder workload (the same shape
/// as `proof_engine_record`) into `wallet`.
fn build_world(wallet: &Wallet, seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let mut keys = Vec::new();
    for u in 0..USERS {
        let user = LocalEntity::generate(format!("U{u}"), g.clone(), &mut rng);
        wallet
            .publish(
                owner
                    .delegate(
                        Node::entity(&user),
                        Node::role(owner.role(&format!("lad{u}d0"))),
                    )
                    .sign(&owner)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        for d in 1..DEPTH {
            wallet
                .publish(
                    owner
                        .delegate(
                            Node::role(owner.role(&format!("lad{u}d{}", d - 1))),
                            Node::role(owner.role(&format!("lad{u}d{d}"))),
                        )
                        .sign(&owner)
                        .unwrap(),
                    vec![],
                )
                .unwrap();
        }
        for d in 0..DEPTH {
            keys.push((
                Node::entity(&user),
                Node::role(owner.role(&format!("lad{u}d{d}"))),
            ));
        }
    }
    World { owner, keys }
}

/// One measured level: `clients` threads × `ops` requests each against
/// `n_daemons` fresh loopback daemons.
struct LevelResult {
    clients: usize,
    daemons: usize,
    ops: u64,
    queries: u64,
    publishes: u64,
    revokes: u64,
    errors: u64,
    elapsed_ns: u128,
    ops_per_sec: f64,
    request_ns: HistogramSnapshot,
    service_ns: HistogramSnapshot,
}

fn run_level(n_daemons: usize, clients: usize, ops_per_client: usize, seed: u64) -> LevelResult {
    // Fresh daemons + a cleared registry per level, so the scraped
    // histograms describe exactly this level's traffic.
    drbac_obs::global().reset();
    let clock = SimClock::new();
    let (worlds, daemons): (Vec<World>, Vec<WalletDaemon>) = (0..n_daemons)
        .map(|d| {
            let wallet = Wallet::new(format!("lt{d}").as_str(), clock.clone());
            let world = build_world(&wallet, seed ^ (d as u64).wrapping_mul(0x9e37_79b9));
            // The wallet is shared state: the daemon serves the same
            // store the world was published into.
            let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast()).unwrap();
            (world, daemon)
        })
        .unzip();
    let addrs: Vec<std::net::SocketAddr> = daemons.iter().map(WalletDaemon::local_addr).collect();

    let queries = AtomicU64::new(0);
    let publishes = AtomicU64::new(0);
    let revokes = AtomicU64::new(0);
    let errors = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let worlds = &worlds;
            let addrs = &addrs;
            let clock = clock.clone();
            let (queries, publishes, revokes, errors) = (&queries, &publishes, &revokes, &errors);
            scope.spawn(move || {
                // Each client owns its transport (and so its connection
                // pool): M clients means M concurrent sockets per daemon.
                let transport = TcpTransport::new(TcpConfig::fast());
                for (d, addr) in addrs.iter().enumerate() {
                    transport.add_route(format!("lt{d}").as_str(), *addr);
                }
                let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 32));
                // Certs this client published and may later revoke.
                let mut published: Vec<(usize, Arc<drbac_core::SignedDelegation>)> = Vec::new();
                for i in 0..ops_per_client {
                    let d = rng.gen_range(0..worlds.len());
                    let to = drbac_core::WalletAddr::from(format!("lt{d}").as_str());
                    let roll: u32 = rng.gen_range(0..10);
                    let reply = if roll < 8 {
                        // Direct query over a provable ladder pair.
                        let (subject, object) =
                            worlds[d].keys[rng.gen_range(0..worlds[d].keys.len())].clone();
                        queries.fetch_add(1, Ordering::Relaxed);
                        transport.request(
                            &to,
                            Request::DirectQuery {
                                subject,
                                object,
                                constraints: vec![],
                            },
                        )
                    } else if roll == 8 || published.is_empty() {
                        // Publish a fresh owner-signed delegation.
                        let owner = &worlds[d].owner;
                        let cert = Arc::new(
                            owner
                                .delegate(
                                    Node::role(owner.role(&format!("lt-c{c}-i{i}"))),
                                    Node::role(owner.role("load")),
                                )
                                .sign(owner)
                                .unwrap(),
                        );
                        published.push((d, Arc::clone(&cert)));
                        publishes.fetch_add(1, Ordering::Relaxed);
                        transport.request(
                            &to,
                            Request::Publish {
                                cert,
                                supports: vec![],
                            },
                        )
                    } else {
                        // Revoke one of our own earlier publishes, at
                        // the daemon that holds it.
                        let (pd, cert) = published.swap_remove(rng.gen_range(0..published.len()));
                        let to = drbac_core::WalletAddr::from(format!("lt{pd}").as_str());
                        let revocation =
                            SignedRevocation::revoke(&cert, &worlds[pd].owner, clock.now())
                                .unwrap();
                        revokes.fetch_add(1, Ordering::Relaxed);
                        transport.request(&to, Request::Revoke(revocation))
                    };
                    match reply {
                        Ok(r) if !r.is_error() => {}
                        Ok(Reply::Error(_)) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                    }
                }
            });
        }
    });
    let elapsed_ns = start.elapsed().as_nanos();

    let snapshot = drbac_obs::global().snapshot();
    let hist = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .cloned()
            .unwrap_or_else(|| drbac_obs::global().histogram(name).snapshot())
    };
    let result = LevelResult {
        clients,
        daemons: n_daemons,
        ops: (clients * ops_per_client) as u64,
        queries: queries.load(Ordering::Relaxed),
        publishes: publishes.load(Ordering::Relaxed),
        revokes: revokes.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed_ns,
        ops_per_sec: (clients * ops_per_client) as f64 / (elapsed_ns as f64 / 1e9),
        request_ns: hist("drbac.net.tcp.request.ns"),
        service_ns: hist("drbac.net.tcp.service.ns"),
    };
    for d in daemons {
        d.shutdown();
    }
    result
}

fn json_hist(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        h.count, h.p50, h.p90, h.p99, h.p999, h.max
    )
}

fn json_level(l: &LevelResult) -> String {
    format!(
        "    {{\"clients\": {}, \"daemons\": {}, \"ops\": {}, \"queries\": {}, \
         \"publishes\": {}, \"revokes\": {}, \"errors\": {}, \"elapsed_ms\": {:.1}, \
         \"ops_per_sec\": {:.1},\n     \"request_ns\": {},\n     \"service_ns\": {}}}",
        l.clients,
        l.daemons,
        l.ops,
        l.queries,
        l.publishes,
        l.revokes,
        l.errors,
        l.elapsed_ns as f64 / 1e6,
        l.ops_per_sec,
        json_hist(&l.request_ns),
        json_hist(&l.service_ns),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seed = DEFAULT_SEED;
    let mut out = String::from("BENCH_daemon.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out = it.next().expect("--out FILE").clone(),
            "--smoke" => {}
            other => {
                eprintln!("usage: load_test [--smoke] [--seed N] [--out FILE] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    // Smoke: one daemon × 4 clients, small op count (~2s on a slow
    // container). Full: two daemons at two concurrency levels.
    let plan: Vec<(usize, usize, usize)> = if smoke {
        vec![(1, 4, 60)]
    } else {
        vec![(2, 4, 250), (2, 16, 250)]
    };

    let levels: Vec<LevelResult> = plan
        .iter()
        .map(|&(daemons, clients, ops)| run_level(daemons, clients, ops, seed))
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"daemon_load\",\n  \"seed\": {seed},\n  \"smoke\": {smoke},\n  \
         \"workload\": {{\"users_per_daemon\": {USERS}, \"ladder_depth\": {DEPTH}, \
         \"mix\": \"80% direct-query / 10% publish / 10% revoke-own\"}},\n  \
         \"levels\": [\n{}\n  ]\n}}\n",
        levels.iter().map(json_level).collect::<Vec<_>>().join(",\n"),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    print!("{json}");

    for l in &levels {
        assert!(l.errors == 0, "{} requests failed at {} clients", l.errors, l.clients);
        assert!(
            l.request_ns.count >= l.ops,
            "client request histogram undercounted: {} < {}",
            l.request_ns.count,
            l.ops
        );
        assert!(
            l.service_ns.count >= l.ops,
            "daemon service histogram undercounted: {} < {}",
            l.service_ns.count,
            l.ops
        );
        assert!(l.request_ns.p50 > 0 && l.service_ns.p50 > 0, "percentiles are non-zero");
        assert!(
            l.request_ns.p50 >= l.service_ns.p50 / 2,
            "client-observed latency should not undercut daemon service time"
        );
    }
    if !smoke {
        assert!(levels.len() >= 2, "full run must measure ≥2 concurrency levels");
    }
    eprintln!(
        "acceptance: {} level(s), all requests succeeded, histogram counts cover every op",
        levels.len()
    );
}
