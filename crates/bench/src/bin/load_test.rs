//! Records the daemon load benchmark into `BENCH_daemon.json`: request
//! throughput and client-observed / daemon-observed latency percentiles
//! for N loopback wallet daemons under M concurrent clients driving a
//! seeded mixed workload (~80% direct queries, ~10% publishes, ~10%
//! revocations of the client's own earlier publishes), plus a
//! **pipelining sweep**: single-daemon direct-query throughput at
//! clients × depth, where depth is the per-connection in-flight window
//! of a [`drbac_net::PipelinedClient`] (wire v3). Depth 1 pays a full
//! round trip per request; depth 16 keeps the connection saturated —
//! the recorded `speedup` column is the whole point of the multiplexed
//! front door (DESIGN.md §4.10, `docs/OPERATIONS.md`).
//!
//! Every daemon runs in-process, so the global metrics registry holds
//! both sides of each exchange: `drbac.net.tcp.request.ns` is the
//! client's send→decode round trip and `drbac.net.tcp.service.ns` is
//! the daemon's frame-rx→reply-encoded service time. The gap between
//! their percentiles is loopback socket + framing + queueing overhead.
//!
//! Usage: `load_test [--smoke|--guard|--probe] [--seed N] [--out FILE]`.
//! Smoke mode (one daemon, 4 clients, a short pipeline sweep, ~2s) is
//! what `scripts/check.sh` runs; `--guard` is the throughput-regression
//! tripwire against the committed artifact (see DESIGN.md §6);
//! `--probe` prints per-layer microbenchmarks (codec, framing,
//! proof lookup) for diagnosing where a regression lives. The committed artifact
//! comes from a full run, which measures two client-concurrency levels
//! against two daemons and the full clients × depth pipeline grid.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use drbac_core::{LocalEntity, Node, SimClock, SignedRevocation};
use drbac_crypto::SchnorrGroup;
use drbac_net::proto::{Reply, Request};
use drbac_net::{TcpConfig, TcpTransport, Transport, WalletDaemon};
use drbac_obs::HistogramSnapshot;
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DEFAULT_SEED: u64 = 2002;
const USERS: usize = 4;
const DEPTH: usize = 3;

/// `--guard` tolerance: committed/current throughput ratio beyond which
/// the guard trips. Throughput on a shared host is noisier than the
/// proof-latency guard's subject, so the threshold is looser (2x, i.e.
/// a >50% sustained drop) — it catches structural regressions (lost
/// pipelining, accidental serialization), not scheduler jitter.
const GUARD_MAX_REGRESSION: f64 = 2.0;

/// One daemon's workload fixture: the owner signs the ladder (and the
/// load-generated publishes/revocations), the keys are every provable
/// (subject, object) pair.
struct World {
    owner: LocalEntity,
    keys: Vec<(Node, Node)>,
}

/// Publishes the `USERS × DEPTH` role-ladder workload (the same shape
/// as `proof_engine_record`) into `wallet`.
fn build_world(wallet: &Wallet, seed: u64) -> World {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let mut keys = Vec::new();
    for u in 0..USERS {
        let user = LocalEntity::generate(format!("U{u}"), g.clone(), &mut rng);
        wallet
            .publish(
                owner
                    .delegate(
                        Node::entity(&user),
                        Node::role(owner.role(&format!("lad{u}d0"))),
                    )
                    .sign(&owner)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        for d in 1..DEPTH {
            wallet
                .publish(
                    owner
                        .delegate(
                            Node::role(owner.role(&format!("lad{u}d{}", d - 1))),
                            Node::role(owner.role(&format!("lad{u}d{d}"))),
                        )
                        .sign(&owner)
                        .unwrap(),
                    vec![],
                )
                .unwrap();
        }
        for d in 0..DEPTH {
            keys.push((
                Node::entity(&user),
                Node::role(owner.role(&format!("lad{u}d{d}"))),
            ));
        }
    }
    World { owner, keys }
}

/// One measured level: `clients` threads × `ops` requests each against
/// `n_daemons` fresh loopback daemons.
struct LevelResult {
    clients: usize,
    daemons: usize,
    ops: u64,
    queries: u64,
    publishes: u64,
    revokes: u64,
    errors: u64,
    elapsed_ns: u128,
    ops_per_sec: f64,
    request_ns: HistogramSnapshot,
    service_ns: HistogramSnapshot,
}

fn run_level(n_daemons: usize, clients: usize, ops_per_client: usize, seed: u64) -> LevelResult {
    // Fresh daemons + a cleared registry per level, so the scraped
    // histograms describe exactly this level's traffic.
    drbac_obs::global().reset();
    let clock = SimClock::new();
    let (worlds, daemons): (Vec<World>, Vec<WalletDaemon>) = (0..n_daemons)
        .map(|d| {
            let wallet = Wallet::new(format!("lt{d}").as_str(), clock.clone());
            let world = build_world(&wallet, seed ^ (d as u64).wrapping_mul(0x9e37_79b9));
            // The wallet is shared state: the daemon serves the same
            // store the world was published into.
            let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast()).unwrap();
            (world, daemon)
        })
        .unzip();
    let addrs: Vec<std::net::SocketAddr> = daemons.iter().map(WalletDaemon::local_addr).collect();

    let queries = AtomicU64::new(0);
    let publishes = AtomicU64::new(0);
    let revokes = AtomicU64::new(0);
    let errors = AtomicU64::new(0);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let worlds = &worlds;
            let addrs = &addrs;
            let clock = clock.clone();
            let (queries, publishes, revokes, errors) = (&queries, &publishes, &revokes, &errors);
            scope.spawn(move || {
                // Each client owns its transport (and so its connection
                // pool): M clients means M concurrent sockets per daemon.
                let transport = TcpTransport::new(TcpConfig::fast());
                for (d, addr) in addrs.iter().enumerate() {
                    transport.add_route(format!("lt{d}").as_str(), *addr);
                }
                let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 32));
                // Certs this client published and may later revoke.
                let mut published: Vec<(usize, Arc<drbac_core::SignedDelegation>)> = Vec::new();
                for i in 0..ops_per_client {
                    let d = rng.gen_range(0..worlds.len());
                    let to = drbac_core::WalletAddr::from(format!("lt{d}").as_str());
                    let roll: u32 = rng.gen_range(0..10);
                    let reply = if roll < 8 {
                        // Direct query over a provable ladder pair.
                        let (subject, object) =
                            worlds[d].keys[rng.gen_range(0..worlds[d].keys.len())].clone();
                        queries.fetch_add(1, Ordering::Relaxed);
                        transport.request(
                            &to,
                            Request::DirectQuery {
                                subject,
                                object,
                                constraints: vec![],
                            },
                        )
                    } else if roll == 8 || published.is_empty() {
                        // Publish a fresh owner-signed delegation.
                        let owner = &worlds[d].owner;
                        let cert = Arc::new(
                            owner
                                .delegate(
                                    Node::role(owner.role(&format!("lt-c{c}-i{i}"))),
                                    Node::role(owner.role("load")),
                                )
                                .sign(owner)
                                .unwrap(),
                        );
                        published.push((d, Arc::clone(&cert)));
                        publishes.fetch_add(1, Ordering::Relaxed);
                        transport.request(
                            &to,
                            Request::Publish {
                                cert,
                                supports: vec![],
                            },
                        )
                    } else {
                        // Revoke one of our own earlier publishes, at
                        // the daemon that holds it.
                        let (pd, cert) = published.swap_remove(rng.gen_range(0..published.len()));
                        let to = drbac_core::WalletAddr::from(format!("lt{pd}").as_str());
                        let revocation =
                            SignedRevocation::revoke(&cert, &worlds[pd].owner, clock.now())
                                .unwrap();
                        revokes.fetch_add(1, Ordering::Relaxed);
                        transport.request(&to, Request::Revoke(revocation))
                    };
                    match reply {
                        Ok(r) if !r.is_error() => {}
                        Ok(Reply::Error(_)) | Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(_) => {}
                    }
                }
            });
        }
    });
    let elapsed_ns = start.elapsed().as_nanos();

    let snapshot = drbac_obs::global().snapshot();
    let hist = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .cloned()
            .unwrap_or_else(|| drbac_obs::global().histogram(name).snapshot())
    };
    let result = LevelResult {
        clients,
        daemons: n_daemons,
        ops: (clients * ops_per_client) as u64,
        queries: queries.load(Ordering::Relaxed),
        publishes: publishes.load(Ordering::Relaxed),
        revokes: revokes.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed_ns,
        ops_per_sec: (clients * ops_per_client) as f64 / (elapsed_ns as f64 / 1e9),
        request_ns: hist("drbac.net.tcp.request.ns"),
        service_ns: hist("drbac.net.tcp.service.ns"),
    };
    for d in daemons {
        d.shutdown();
    }
    result
}

/// One pipeline-sweep cell: `clients` threads, each with its own
/// [`drbac_net::PipelinedClient`] connection holding up to `depth`
/// requests in flight, firing direct queries at one daemon.
struct PipelineResult {
    /// `"strict"` — the classic one-request-one-reply client
    /// (`Transport::request`); `"pipelined"` — the wire-v3
    /// `PipelinedClient` at the given window depth. The speedup base is
    /// the strict depth-1 row: "depth 1" means one request in flight,
    /// which is exactly what every pre-v3 client does, so the ratio
    /// reads "what do I gain by switching this connection to the
    /// pipelined client at window N". (Same convention as redis-benchmark
    /// `-P`.) The pipelined depth-1 row is kept for completeness — it
    /// shows the v3 client's own overhead at window 1 is negligible.
    mode: &'static str,
    clients: usize,
    depth: usize,
    ops: u64,
    errors: u64,
    elapsed_ns: u128,
    ops_per_sec: f64,
    request_ns: HistogramSnapshot,
    service_ns: HistogramSnapshot,
}

/// Measures one (clients × depth) cell. The workload is query-only: the
/// sweep isolates transport-level pipelining gain, so every op is the
/// same provable-ladder lookup mix and nothing depends on a previous
/// reply — the window can stay full the entire run.
fn run_pipeline_level(
    mode: &'static str,
    clients: usize,
    depth: usize,
    ops_per_client: usize,
    seed: u64,
) -> PipelineResult {
    let strict = mode == "strict";
    drbac_obs::global().reset();
    let clock = SimClock::new();
    let wallet = Wallet::new("ltp", clock.clone());
    let world = build_world(&wallet, seed);
    let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast()).unwrap();
    let addr = daemon.local_addr();

    let errors = AtomicU64::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let world = &world;
            let errors = &errors;
            scope.spawn(move || {
                let transport = TcpTransport::new(TcpConfig::fast());
                transport.add_route("ltp", addr);
                let mut rng = StdRng::seed_from_u64(seed ^ ((c as u64) << 32) ^ 0x9e37_79b9);
                // The pipeline sweep measures the FRONT DOOR: a small
                // rotation of queries against roles nobody delegated, so
                // past the first few ops the prover answers from the
                // negative proof cache and per-request transport overhead
                // dominates. (The `levels` section keeps the realistic
                // proof-heavy mix; running that here would just saturate
                // the core on proof search and hide the thing this axis
                // varies.)
                let mut next_query = || {
                    let (subject, _) = world.keys[rng.gen_range(0..world.keys.len())].clone();
                    let absent = rng.gen_range(0..8u32);
                    Request::DirectQuery {
                        subject,
                        object: Node::role(world.owner.role(&format!("absent{absent}"))),
                        constraints: vec![],
                    }
                };
                let settle = |id_result: Result<drbac_net::proto::Reply, _>| {
                    match id_result {
                        Ok(r) if !r.is_error() => {}
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                };
                if strict {
                    // The classic client: one strict request/reply at a
                    // time over one pooled connection. Reported for
                    // context next to the pipelined rows.
                    let to = drbac_core::WalletAddr::from("ltp");
                    for _ in 0..ops_per_client {
                        settle(transport.request(&to, next_query()));
                    }
                    return;
                }
                let client = transport.pipelined(&"ltp".into()).expect("pipelined connect");
                // Windowed bursts: submit `depth` requests in one
                // coalesced batch, then collect the window — this is
                // the shape `send_many` exists for, and what lets one
                // connection amortize syscalls and wakeups across the
                // whole window.
                let mut remaining = ops_per_client;
                let mut batch: Vec<Request> = Vec::with_capacity(depth);
                while remaining > 0 {
                    let n = depth.min(remaining);
                    batch.clear();
                    for _ in 0..n {
                        batch.push(next_query());
                    }
                    match client.send_many(&batch) {
                        Ok(ids) => {
                            let mut window: VecDeque<u64> = ids.into();
                            while let Some(id) = window.pop_front() {
                                settle(client.wait(id));
                            }
                        }
                        Err(_) => {
                            errors.fetch_add(n as u64, Ordering::Relaxed);
                        }
                    }
                    remaining -= n;
                }
            });
        }
    });
    let elapsed_ns = start.elapsed().as_nanos();

    let snapshot = drbac_obs::global().snapshot();
    let hist = |name: &str| {
        snapshot
            .histograms
            .get(name)
            .cloned()
            .unwrap_or_else(|| drbac_obs::global().histogram(name).snapshot())
    };
    let ops = (clients * ops_per_client) as u64;
    let result = PipelineResult {
        mode,
        clients,
        depth,
        ops,
        errors: errors.load(Ordering::Relaxed),
        elapsed_ns,
        ops_per_sec: ops as f64 / (elapsed_ns as f64 / 1e9),
        request_ns: hist("drbac.net.tcp.request.ns"),
        service_ns: hist("drbac.net.tcp.service.ns"),
    };
    daemon.shutdown();
    result
}

fn json_hist(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}}",
        h.count, h.p50, h.p90, h.p99, h.p999, h.max
    )
}

fn json_level(l: &LevelResult) -> String {
    format!(
        "    {{\"clients\": {}, \"daemons\": {}, \"ops\": {}, \"queries\": {}, \
         \"publishes\": {}, \"revokes\": {}, \"errors\": {}, \"elapsed_ms\": {:.1}, \
         \"ops_per_sec\": {:.1},\n     \"request_ns\": {},\n     \"service_ns\": {}}}",
        l.clients,
        l.daemons,
        l.ops,
        l.queries,
        l.publishes,
        l.revokes,
        l.errors,
        l.elapsed_ns as f64 / 1e6,
        l.ops_per_sec,
        json_hist(&l.request_ns),
        json_hist(&l.service_ns),
    )
}

/// One line per pipeline cell — the guard's committed-value scan
/// ([`committed_pipeline_ops_per_sec`]) depends on each row being a
/// single line holding both its key fields and its throughput.
fn json_pipeline(p: &PipelineResult, base_ops_per_sec: f64) -> String {
    let speedup = if base_ops_per_sec > 0.0 {
        p.ops_per_sec / base_ops_per_sec
    } else {
        0.0
    };
    format!(
        "    {{\"mode\": \"{}\", \"clients\": {}, \"depth\": {}, \"ops\": {}, \"errors\": {}, \
         \"elapsed_ms\": {:.1}, \"ops_per_sec\": {:.1}, \"speedup\": {:.2}, \
         \"request_ns\": {}, \"service_ns\": {}}}",
        p.mode,
        p.clients,
        p.depth,
        p.ops,
        p.errors,
        p.elapsed_ns as f64 / 1e6,
        p.ops_per_sec,
        speedup,
        json_hist(&p.request_ns),
        json_hist(&p.service_ns),
    )
}

/// Reads the committed single-connection depth-16 pipeline throughput
/// (`"clients": 1, "depth": 16` row's `"ops_per_sec"`) out of the
/// artifact without a JSON dependency — pipeline rows are one line
/// each, so a line scan suffices.
fn committed_pipeline_ops_per_sec(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let line = text
        .lines()
        .find(|l| {
            l.contains("\"mode\": \"pipelined\"")
                && l.contains("\"clients\": 1")
                && l.contains("\"depth\": 16")
        })?;
    let field = "\"ops_per_sec\": ";
    let at = line.find(field)? + field.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--guard`: quick single-connection depth-16 tripwire against the
/// committed artifact. Like the proof guard, the statistics are
/// asymmetric on purpose: the probe takes its **best** over reps
/// (interference only slows a run down, so max-throughput filters this
/// run's noise) and compares against the committed value, which embeds
/// the recording host's typical noise. The 2x threshold targets
/// structural regressions — lost write coalescing, a serialized worker
/// pool — not scheduler jitter.
fn run_guard(seed: u64) {
    let committed = committed_pipeline_ops_per_sec("BENCH_daemon.json").expect(
        "BENCH_daemon.json with a clients=1 depth=16 pipeline row \
         (run a full record first)",
    );
    let best = (0..3)
        .map(|_| run_pipeline_level("pipelined", 1, 16, 1500, seed).ops_per_sec)
        .fold(0.0f64, f64::max);
    let ratio = committed / best;
    eprintln!(
        "daemon guard: pipelined depth-16 best {best:.0} ops/s vs committed {committed:.0} ops/s ({ratio:.2}x)",
    );
    assert!(
        ratio <= GUARD_MAX_REGRESSION,
        "daemon guard FAILED: single-connection pipelined throughput regressed {ratio:.2}x \
         (> {GUARD_MAX_REGRESSION}x) against the committed BENCH_daemon.json \
         ({best:.0} ops/s vs {committed:.0} ops/s). If the slowdown is intentional, \
         re-record the artifact with a full `scripts/bench_record.sh daemon` run.",
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seed = DEFAULT_SEED;
    let mut out = String::from("BENCH_daemon.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--out" => out = it.next().expect("--out FILE").clone(),
            "--smoke" | "--guard" | "--probe" => {}
            other => {
                eprintln!(
                    "usage: load_test [--smoke|--guard|--probe] [--seed N] [--out FILE] (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }
    if args.iter().any(|a| a == "--guard") {
        run_guard(seed);
        return;
    }
    if args.iter().any(|a| a == "--probe") {
        use drbac_net::wire;
        let clock = SimClock::new();
        let wallet = Wallet::new("probe", clock.clone());
        let world = build_world(&wallet, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2000u32;
        let reqs: Vec<Request> = (0..n)
            .map(|_| {
                let (subject, object) = world.keys[rng.gen_range(0..world.keys.len())].clone();
                Request::DirectQuery { subject, object, constraints: vec![] }
            })
            .collect();
        let t = Instant::now();
        let encs: Vec<Vec<u8>> = reqs.iter().map(wire::encode_request).collect();
        eprintln!("encode_request: {:?}/op", t.elapsed() / n);
        let t = Instant::now();
        let decs: Vec<Request> = encs.iter().map(|e| wire::decode_request(e).unwrap()).collect();
        eprintln!("decode_request: {:?}/op", t.elapsed() / n);
        let t = Instant::now();
        let replies: Vec<Reply> = decs
            .iter()
            .map(|r| match r {
                Request::DirectQuery { subject, object, constraints } => {
                    match wallet.find_proof(subject, object, constraints) {
                        Some(p) => Reply::Proofs(vec![p]),
                        None => Reply::Proofs(vec![]),
                    }
                }
                _ => unreachable!(),
            })
            .collect();
        eprintln!("find_proof: {:?}/op", t.elapsed() / n);
        let t = Instant::now();
        let rencs: Vec<Vec<u8>> = replies.iter().map(wire::encode_reply).collect();
        eprintln!("encode_reply: {:?}/op (avg {} bytes)", t.elapsed() / n,
            rencs.iter().map(Vec::len).sum::<usize>() / rencs.len());
        let t = Instant::now();
        let mut framed: Vec<u8> = Vec::new();
        for (i, e) in rencs.iter().enumerate() {
            wire::write_frame_mux(&mut framed, drbac_net::wire::FrameKind::Reply, e, i as u64, None).unwrap();
        }
        eprintln!("write_frame_mux(buf): {:?}/op ({} bytes total)", t.elapsed() / n, framed.len());
        let t = Instant::now();
        let mut cursor = std::io::Cursor::new(&framed);
        for _ in 0..n {
            let _ = wire::read_frame(&mut cursor).unwrap();
        }
        eprintln!("read_frame(buf): {:?}/op", t.elapsed() / n);
        let t = Instant::now();
        for e in &rencs {
            let _ = wire::decode_reply(e).unwrap();
        }
        eprintln!("decode_reply: {:?}/op", t.elapsed() / n);
        // The pipeline-sweep op: a query whose object role nobody
        // delegated, answered from the index without proof search.
        let misses: Vec<Request> = (0..n)
            .map(|i| {
                let (subject, _) = world.keys[rng.gen_range(0..world.keys.len())].clone();
                Request::DirectQuery {
                    subject,
                    object: Node::role(world.owner.role(&format!("absent{i}"))),
                    constraints: vec![],
                }
            })
            .collect();
        let t = Instant::now();
        for r in &misses {
            let Request::DirectQuery { subject, object, constraints } = r else { unreachable!() };
            assert!(wallet.find_proof(subject, object, constraints).is_none());
        }
        eprintln!("find_proof(miss): {:?}/op", t.elapsed() / n);
        let menc = wire::encode_request(&misses[0]);
        let t = Instant::now();
        for _ in 0..n {
            let _ = wire::decode_request(&menc).unwrap();
        }
        eprintln!("decode_request(miss): {:?}/op ({} bytes)", t.elapsed() / n, menc.len());
        return;
    }

    // Smoke: one daemon × 4 clients plus a short pipeline sweep (~2s
    // on a slow container). Full: two daemons at two concurrency
    // levels plus the clients × depth pipeline grid.
    let plan: Vec<(usize, usize, usize)> = if smoke {
        vec![(1, 4, 60)]
    } else {
        vec![(2, 4, 250), (2, 16, 250)]
    };
    let pipeline_plan: Vec<(&'static str, usize, usize, usize)> = if smoke {
        vec![
            ("strict", 1, 1, 150),
            ("pipelined", 1, 1, 150),
            ("pipelined", 1, 16, 400),
        ]
    } else {
        // Enough ops per cell that connection setup inside the timed
        // region amortizes below the noise floor.
        vec![
            ("strict", 1, 1, 6000),
            ("pipelined", 1, 1, 6000),
            ("pipelined", 1, 4, 6000),
            ("pipelined", 1, 16, 6000),
            ("pipelined", 4, 16, 3000),
        ]
    };

    let levels: Vec<LevelResult> = plan
        .iter()
        .map(|&(daemons, clients, ops)| run_level(daemons, clients, ops, seed))
        .collect();
    // Like the proof-engine recorder, each cell keeps its best of three
    // reps: on a loaded host interference only ever slows a run down, so
    // max-throughput is the least-noisy estimator, and applying it to
    // every cell (including the depth-1 bases) keeps the speedup column
    // honest.
    let reps = if smoke { 1 } else { 5 };
    let pipeline: Vec<PipelineResult> = pipeline_plan
        .iter()
        .map(|&(mode, clients, depth, ops)| {
            (0..reps)
                .map(|_| run_pipeline_level(mode, clients, depth, ops, seed))
                .max_by(|a, b| a.ops_per_sec.total_cmp(&b.ops_per_sec))
                .expect("at least one rep")
        })
        .collect();

    let base = pipeline
        .iter()
        .find(|p| p.mode == "strict" && p.clients == 1 && p.depth == 1)
        .map(|p| p.ops_per_sec)
        .unwrap_or(0.0);
    let json = format!(
        "{{\n  \"bench\": \"daemon_load\",\n  \"seed\": {seed},\n  \"smoke\": {smoke},\n  \
         \"workload\": {{\"users_per_daemon\": {USERS}, \"ladder_depth\": {DEPTH}, \
         \"mix\": \"80% direct-query / 10% publish / 10% revoke-own\"}},\n  \
         \"levels\": [\n{}\n  ],\n  \
         \"pipeline_workload\": \"100% index-miss direct queries (front-door overhead, minimal \
         prover cost) against one daemon. Speedup is vs the strict clients=1 row — the classic \
         one-in-flight request/reply client every pre-v3 peer uses — so the column reads as the \
         gain from switching that connection to the pipelined client at window N\",\n  \
         \"pipeline\": [\n{}\n  ]\n}}\n",
        levels.iter().map(json_level).collect::<Vec<_>>().join(",\n"),
        pipeline
            .iter()
            .map(|p| json_pipeline(p, base))
            .collect::<Vec<_>>()
            .join(",\n"),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    print!("{json}");

    for l in &levels {
        assert!(l.errors == 0, "{} requests failed at {} clients", l.errors, l.clients);
        assert!(
            l.request_ns.count >= l.ops,
            "client request histogram undercounted: {} < {}",
            l.request_ns.count,
            l.ops
        );
        assert!(
            l.service_ns.count >= l.ops,
            "daemon service histogram undercounted: {} < {}",
            l.service_ns.count,
            l.ops
        );
        assert!(l.request_ns.p50 > 0 && l.service_ns.p50 > 0, "percentiles are non-zero");
        assert!(
            l.request_ns.p50 >= l.service_ns.p50 / 2,
            "client-observed latency should not undercut daemon service time"
        );
    }
    for p in &pipeline {
        assert!(
            p.errors == 0,
            "{} pipelined requests failed at {} clients × depth {}",
            p.errors,
            p.clients,
            p.depth
        );
        assert!(
            p.request_ns.count >= p.ops,
            "pipeline request histogram undercounted: {} < {}",
            p.request_ns.count,
            p.ops
        );
    }
    if !smoke {
        assert!(levels.len() >= 2, "full run must measure ≥2 concurrency levels");
        let deep = pipeline
            .iter()
            .find(|p| p.mode == "pipelined" && p.clients == 1 && p.depth == 16)
            .expect("full plan includes clients=1 depth=16");
        let speedup = deep.ops_per_sec / base;
        assert!(
            speedup >= 5.0,
            "pipelining acceptance FAILED: depth 16 is only {speedup:.1}x depth 1 \
             on a single connection (need ≥5x)"
        );
        eprintln!("pipelining: depth 16 = {speedup:.1}x depth 1 on one connection");
    }
    eprintln!(
        "acceptance: {} level(s) + {} pipeline cell(s), all requests succeeded, \
         histogram counts cover every op",
        levels.len(),
        pipeline.len()
    );
}
