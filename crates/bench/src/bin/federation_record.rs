//! Records the coalition-scale federation soak into
//! `BENCH_federation.json`: every scenario family × a seed matrix, each
//! run three ways — pristine SimNet, SimNet under FaultPlan chaos
//! (seeded loss + jitter + a partition/heal and crash/restart cycle),
//! and a real multi-daemon TCP federation — with per-shape discovery
//! latency percentiles, wallets-contacted percentiles, degraded rate,
//! and revocation-propagation staleness.
//!
//! Full-run acceptance (enforced here, recorded by
//! `scripts/bench_record.sh federation`):
//!   * ≥ 6 families × ≥ 3 seeds, federation of ≥ 100 org wallets;
//!   * on every cell and substrate: zero unsound proofs, zero
//!     non-degraded oracle mismatches, zero termination failures, zero
//!     spurious terminations;
//!   * byte-identical proofs between pristine SimNet and TCP (equal
//!     timing-free decision digests) on every cell.
//!
//! Usage: `federation_record [--smoke] [--seed N] [--wallets N] [--out FILE]`.
//! Smoke mode (small worlds, one TCP cell, ~seconds) is what
//! `scripts/check.sh` runs; it writes to `target/BENCH_federation.smoke.json`
//! by default so the committed full-run artifact is never clobbered.

use drbac_scenario::{
    run_simnet, run_tcp, Family, LatencySummary, RunConfig, Scale, ScenarioSpec, SoakReport,
};

const DEFAULT_SEED: u64 = 2002;
const FULL_SEEDS: [u64; 3] = [1, 2, 3];
const FULL_WALLETS: usize = 100;
const SMOKE_TCP_WALLETS: usize = 8;

fn json_summary(l: &LatencySummary) -> String {
    format!(
        "{{\"count\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        l.count, l.p50, l.p90, l.p99, l.max
    )
}

fn json_report(r: &SoakReport) -> String {
    format!(
        "    {{\"family\": \"{}\", \"seed\": {}, \"substrate\": \"{}\", \"wallets\": {}, \
         \"publishes\": {}, \"declarations\": {}, \"revocations\": {}, \"queries\": {}, \
         \"grants\": {}, \"denials\": {}, \"degraded_rate\": {:.4}, \
         \"hard_mismatches\": {}, \"degraded_mismatches\": {}, \"unsound\": {}, \
         \"monitors_opened\": {}, \"monitors_expected_dead\": {}, \"monitors_repaired\": {}, \
         \"termination_failures\": {}, \"spurious_terminations\": {}, \
         \"total_messages\": {}, \"push_messages\": {}, \"timeouts\": {}, \"retried_ops\": {}, \
         \"decision_digest\": \"{:016x}\",\n     \"discovery_ns\": {},\n     \
         \"wallets_contacted\": {},\n     \"revocation_lag\": {}}}",
        r.family,
        r.seed,
        r.substrate,
        r.wallets,
        r.publishes,
        r.declarations,
        r.revocations,
        r.records.len(),
        r.grants(),
        r.denials(),
        r.degraded_rate(),
        r.hard_mismatches(),
        r.degraded_mismatches(),
        r.unsound,
        r.monitors_opened,
        r.monitors_expected_dead,
        r.monitors_repaired,
        r.termination_failures,
        r.spurious_terminations,
        r.total_messages,
        r.push_messages,
        r.timeouts,
        r.retried_ops,
        r.decision_digest(),
        json_summary(&r.latency()),
        json_summary(&r.wallets_contacted()),
        json_summary(&r.revocation_lag),
    )
}

/// The invariants every cell must hold on every substrate.
fn assert_invariants(r: &SoakReport) {
    let cell = format!("{}/{}/{}", r.family, r.seed, r.substrate);
    assert_eq!(r.unsound, 0, "{cell}: unsound proofs");
    assert_eq!(r.hard_mismatches(), 0, "{cell}: non-degraded oracle divergence");
    assert_eq!(r.termination_failures, 0, "{cell}: sessions outlived revocation");
    assert_eq!(r.spurious_terminations, 0, "{cell}: live sessions terminated");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut seed = DEFAULT_SEED;
    let mut wallets = FULL_WALLETS;
    let mut out = if smoke {
        String::from("target/BENCH_federation.smoke.json")
    } else {
        String::from("BENCH_federation.json")
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--wallets" => {
                wallets = it.next().and_then(|v| v.parse().ok()).expect("--wallets N")
            }
            "--out" => out = it.next().expect("--out FILE").clone(),
            "--smoke" => {}
            other => {
                eprintln!(
                    "usage: federation_record [--smoke] [--seed N] [--wallets N] [--out FILE] \
                     (got {other:?})"
                );
                std::process::exit(2);
            }
        }
    }

    let seeds: Vec<u64> = if smoke { vec![seed] } else { FULL_SEEDS.to_vec() };
    let scale = if smoke {
        Scale::smoke()
    } else {
        Scale::federation(wallets)
    };

    let mut reports: Vec<SoakReport> = Vec::new();
    let mut parity_cells = 0usize;
    for family in Family::ALL {
        for &s in &seeds {
            let scenario = ScenarioSpec::new(family, s).with_scale(scale).generate();
            let clean = run_simnet(&scenario, &RunConfig::fault_free());
            assert_invariants(&clean);
            let chaos = run_simnet(&scenario, &RunConfig::chaos(s.wrapping_mul(31) ^ 5));
            assert_invariants(&chaos);
            // TCP on every full-run cell; smoke keeps TCP to its one
            // dedicated parity cell below.
            if !smoke {
                let tcp = run_tcp(&scenario, None).expect("tcp federation deploys");
                assert_invariants(&tcp);
                assert_eq!(
                    clean.decision_digest(),
                    tcp.decision_digest(),
                    "{family}/{s}: SimNet and TCP proofs diverged"
                );
                parity_cells += 1;
                reports.push(tcp);
            }
            eprintln!(
                "{family}/{s}: {} queries, {} grants, chaos degraded {:.2}, {} repaired",
                clean.records.len(),
                clean.grants(),
                chaos.degraded_rate(),
                chaos.monitors_repaired,
            );
            reports.push(clean);
            reports.push(chaos);
        }
    }

    // Smoke: one real-daemon federation cell, still parity-checked.
    if smoke {
        let scenario = ScenarioSpec::new(Family::CrossFederation, seed)
            .with_scale(Scale::federation(SMOKE_TCP_WALLETS))
            .generate();
        let clean = run_simnet(&scenario, &RunConfig::fault_free());
        let tcp = run_tcp(&scenario, None).expect("tcp federation deploys");
        assert_invariants(&clean);
        assert_invariants(&tcp);
        assert_eq!(
            clean.decision_digest(),
            tcp.decision_digest(),
            "smoke: SimNet and TCP proofs diverged"
        );
        parity_cells += 1;
        reports.push(clean);
        reports.push(tcp);
    }

    let json = format!(
        "{{\n  \"bench\": \"federation_soak\",\n  \"smoke\": {smoke},\n  \
         \"families\": {},\n  \"seeds\": {:?},\n  \"parity_cells\": {parity_cells},\n  \
         \"cells\": [\n{}\n  ]\n}}\n",
        Family::ALL.len(),
        seeds,
        reports.iter().map(json_report).collect::<Vec<_>>().join(",\n"),
    );
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("mkdir {dir:?}: {e}"));
        }
    }
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    print!("{json}");

    // Full-run acceptance floor.
    if !smoke {
        assert!(Family::ALL.len() >= 6, "≥ 6 topology families");
        assert!(seeds.len() >= 3, "≥ 3 seeds per family");
        assert!(
            reports.iter().any(|r| r.substrate == "tcp" && r.wallets >= 100),
            "a real TCP federation of ≥ 100 wallets"
        );
        assert_eq!(
            parity_cells,
            Family::ALL.len() * seeds.len(),
            "every cell parity-checked SimNet against TCP"
        );
    }
    eprintln!(
        "acceptance: {} cells across {} families × {} seeds, {} parity-checked, all invariants held",
        reports.len(),
        Family::ALL.len(),
        seeds.len(),
        parity_cells,
    );
}
