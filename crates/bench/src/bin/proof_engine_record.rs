//! Records the concurrent proof-engine benchmark into
//! `BENCH_proof_engine.json`.
//!
//! Three measurements, two workloads:
//!
//! * **Baseline workload** — 8 users × depth-4 role ladders, 32 shared
//!   keys, no attributes: the workload the pre-refactor 341,705 ns/query
//!   cold single-thread number was recorded on. Its cold single-thread
//!   row is the `cold_single_thread_vs_pre_pr` comparison and the perf
//!   guard's baseline.
//! * **Stress workload** — 8 users × depth-8 ladders with three parallel
//!   attribute-carrying delegations per rung (distinct BW/CPU trade-offs,
//!   so constrained search must carry Pareto-incomparable accumulator
//!   alternatives through every level — the frontier work the interned
//!   engine optimizes). Queries carry two loose constraints. Both
//!   thread-sweep series run on this workload: the cold flash-crowd
//!   series (cache off, every thread walking the key list in the same
//!   order) and the warm-amortization series (cache on). Warm
//!   amortization is a ratio of miss cost to hit cost, so it is only a
//!   meaningful statistic while misses are expensive — on the baseline
//!   workload the interned engine drove misses so close to hit cost
//!   that the ratio dissolves into scheduler noise.
//!
//! The machine this runs on may have a single core, so neither
//! multi-thread series measures CPU parallelism:
//!
//! * **Warm scaling** is cache-sharing amortization: more threads mean
//!   the one-off cold miss per key is amortized over proportionally more
//!   served queries — the property the revocation-coherent proof cache
//!   exists to provide.
//! * **Cold scaling** is query coalescing (singleflight): a flash crowd
//!   asking the same questions in the same order collapses concurrent
//!   identical searches onto one leader. One thread gets no coalescing
//!   and pays every search; four threads share most of them. The stress
//!   workload keeps individual searches expensive enough (hundreds of
//!   microseconds) that coalescing visibly beats scheduler overhead.
//!
//! Methodology: every point is measured over several repetitions, each
//! against a freshly built world (so every rep starts truly cold), after
//! one discarded warm-up rep that absorbs one-time process costs
//! (allocator growth, lazy statics, page faults). The artifact records
//! min/mean/stddev per point; the headline `ns_per_query` is the mean,
//! while the cross-thread speedup ratios are computed from the minima,
//! which are stable under the strictly additive noise of a shared host.
//!
//! Usage: `proof_engine_record [--smoke] [--guard] [--out PATH]`.
//!
//! * `--smoke` shrinks rep/query counts so `scripts/check.sh` can
//!   exercise the pipeline quickly, skips the acceptance thresholds, and
//!   defaults the output to a throwaway path under `target/` so the
//!   committed full-run artifact is never clobbered.
//! * `--guard` records nothing: it takes a quick cold single-thread
//!   measurement on the baseline workload and fails (exit 1) if the min
//!   over its reps regressed more than 25% against the committed mean in
//!   `BENCH_proof_engine.json` — the perf tripwire in `scripts/check.sh`.
//!
//! A full run (no flags) writes `BENCH_proof_engine.json` and enforces
//! the acceptance thresholds: `cold_single_thread_vs_pre_pr ≥ 1.0`
//! (recorded as a speedup ratio over the pre-refactor baseline), cold
//! 4-thread throughput strictly above cold 1-thread, and warm 1→4
//! amortization ≥ 2.5x.

use std::hint::black_box;
use std::time::Instant;

use drbac_core::{
    AttrConstraint, AttrDeclaration, AttrOp, LocalEntity, Node, SignedAttrDeclaration, SimClock,
};
use drbac_crypto::SchnorrGroup;
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2002;
const USERS: usize = 8;
const BASE_DEPTH: usize = 4;
const STRESS_DEPTH: usize = 8;
/// Parallel attribute-carrying delegations per stress-ladder rung.
const STRESS_FANOUT: u64 = 3;
/// Pre-refactor cold single-thread cost on the baseline workload (mean
/// of three runs: 315066 / 366206 / 343844 ns per query), kept as the
/// fixed baseline the recorded speedup ratio is computed against.
const PRE_PR_COLD_NS_PER_QUERY: f64 = 341_705.0;
/// `--guard` fails when cold single-thread is this much slower than the
/// committed artifact.
const GUARD_MAX_REGRESSION: f64 = 1.25;

struct World {
    wallet: Wallet,
    keys: Vec<(Node, Node)>,
    constraints: Vec<AttrConstraint>,
}

/// The pre-refactor baseline workload: each user holds a grant into the
/// bottom of a private depth-4 role ladder `lad{u}d0 → … → lad{u}d3`;
/// the keys are every (user, rung) pair.
fn build_world() -> World {
    let mut rng = StdRng::seed_from_u64(SEED);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let users: Vec<LocalEntity> = (0..USERS)
        .map(|u| LocalEntity::generate(format!("U{u}"), g.clone(), &mut rng))
        .collect();
    let wallet = Wallet::new("bench.proof-engine", SimClock::new());
    let mut keys = Vec::new();
    for (u, user) in users.iter().enumerate() {
        wallet
            .publish(
                owner
                    .delegate(
                        Node::entity(user),
                        Node::role(owner.role(&format!("lad{u}d0"))),
                    )
                    .sign(&owner)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        for d in 1..BASE_DEPTH {
            wallet
                .publish(
                    owner
                        .delegate(
                            Node::role(owner.role(&format!("lad{u}d{}", d - 1))),
                            Node::role(owner.role(&format!("lad{u}d{d}"))),
                        )
                        .sign(&owner)
                        .unwrap(),
                    vec![],
                )
                .unwrap();
        }
        for d in 0..BASE_DEPTH {
            keys.push((
                Node::entity(user),
                Node::role(owner.role(&format!("lad{u}d{d}"))),
            ));
        }
    }
    World {
        wallet,
        keys,
        constraints: Vec::new(),
    }
}

/// The stress workload: depth-8 ladders where every rung offers three
/// parallel delegations with incomparable (BW, CPU) trade-offs — BW
/// falls as CPU rises across the alternatives, and every (user, rung,
/// alternative) triple gets distinct values, so a constrained search
/// cannot collapse them and must carry Pareto-optimal accumulator sets
/// through all eight levels. Keys are the top four rungs of each ladder;
/// queries carry loose BW/CPU floor constraints so every alternative
/// stays admissible.
fn build_stress_world() -> World {
    let mut rng = StdRng::seed_from_u64(SEED ^ 0x5717);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let users: Vec<LocalEntity> = (0..USERS)
        .map(|u| LocalEntity::generate(format!("S{u}"), g.clone(), &mut rng))
        .collect();
    let wallet = Wallet::new("bench.proof-engine.stress", SimClock::new());
    let bw = owner.attr("BW", AttrOp::Min);
    let cpu = owner.attr("CPU", AttrOp::Min);
    for attr in [&bw, &cpu] {
        wallet
            .publish_declaration(
                &SignedAttrDeclaration::sign(
                    AttrDeclaration::new(attr.clone(), 100_000.0).unwrap(),
                    &owner,
                )
                .unwrap(),
            )
            .unwrap();
    }
    let mut keys = Vec::new();
    for (u, user) in users.iter().enumerate() {
        wallet
            .publish(
                owner
                    .delegate(
                        Node::entity(user),
                        Node::role(owner.role(&format!("str{u}d0"))),
                    )
                    .sign(&owner)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        for d in 1..STRESS_DEPTH {
            for j in 0..STRESS_FANOUT {
                let tier = (u as u64) * 97 + (d as u64) * 13 + j * 311;
                wallet
                    .publish(
                        owner
                            .delegate(
                                Node::role(owner.role(&format!("str{u}d{}", d - 1))),
                                Node::role(owner.role(&format!("str{u}d{d}"))),
                            )
                            .serial(j)
                            .with_attr(bw.clone(), 90_000.0 - tier as f64)
                            .unwrap()
                            .with_attr(cpu.clone(), 10_000.0 + tier as f64)
                            .unwrap()
                            .sign(&owner)
                            .unwrap(),
                        vec![],
                    )
                    .unwrap();
            }
        }
        for d in STRESS_DEPTH - 4..STRESS_DEPTH {
            keys.push((
                Node::entity(user),
                Node::role(owner.role(&format!("str{u}d{d}"))),
            ));
        }
    }
    World {
        wallet,
        keys,
        constraints: vec![
            AttrConstraint::at_least(bw, 1_000.0),
            AttrConstraint::at_least(cpu, 1_000.0),
        ],
    }
}

/// Runs `threads` provers and returns (total queries, elapsed ns).
///
/// Warm runs stagger each thread's start offset so the cache fills from
/// several directions; cold runs drive every thread through the keys in
/// the same (convoy) order so identical in-flight queries coalesce —
/// see the module docs.
fn run(world: &World, threads: usize, queries_per_thread: usize, warm: bool) -> (usize, u128) {
    let keys = &world.keys;
    let constraints = &world.constraints;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let wallet = world.wallet.clone();
            scope.spawn(move || {
                for i in 0..queries_per_thread {
                    let idx = if warm { t * 7 + i } else { i };
                    let (subject, object) = &keys[idx % keys.len()];
                    black_box(wallet.find_proof(subject, object, constraints));
                }
            });
        }
    });
    (threads * queries_per_thread, start.elapsed().as_nanos())
}

/// One measured (workload, threads) point, aggregated over reps.
struct Point {
    threads: usize,
    queries: usize,
    reps: usize,
    mean_ns: f64,
    min_ns: f64,
    stddev_ns: f64,
}

impl Point {
    fn qps(&self) -> f64 {
        1e9 / self.mean_ns
    }
}

/// Measures one point: one discarded warm-up rep, then `reps` measured
/// reps, each on a freshly built world so every rep starts cold and the
/// statistics are a pure function of the configuration.
fn measure<F: Fn() -> World>(
    build: &F,
    warm: bool,
    threads: usize,
    queries_per_thread: usize,
    reps: usize,
) -> Point {
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let world = build();
        world.wallet.set_query_cache(warm);
        let (queries, ns) = run(&world, threads, queries_per_thread, warm);
        if rep == 0 {
            continue; // warm-up pass: absorbs one-time process costs
        }
        samples.push(ns as f64 / queries as f64);
    }
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    Point {
        threads,
        queries: threads * queries_per_thread,
        reps,
        mean_ns: mean,
        min_ns: min,
        stddev_ns: var.sqrt(),
    }
}

fn series<F: Fn() -> World>(
    build: &F,
    warm: bool,
    queries_per_thread: usize,
    reps: usize,
) -> Vec<Point> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| measure(build, warm, threads, queries_per_thread, reps))
        .collect()
}

fn json_point(p: &Point) -> String {
    format!(
        "{{\"threads\": {}, \"queries\": {}, \"reps\": {}, \
         \"ns_per_query\": {:.0}, \"min_ns_per_query\": {:.0}, \
         \"stddev_ns_per_query\": {:.0}, \"queries_per_sec\": {:.1}}}",
        p.threads,
        p.queries,
        p.reps,
        p.mean_ns,
        p.min_ns,
        p.stddev_ns,
        p.qps()
    )
}

fn json_series(points: &[Point]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| format!("    {}", json_point(p)))
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Reads `"cold_single_thread_ns_per_query": N` (the recorded mean) out
/// of the committed artifact without a JSON dependency.
fn committed_cold_mean_ns(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let field = "\"cold_single_thread_ns_per_query\":";
    let at = text.find(field)? + field.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--guard`: quick cold single-thread tripwire against the committed
/// artifact, on the baseline workload. The statistics are asymmetric on
/// purpose: the probe takes its **min** over reps (noise is strictly
/// additive, so min filters out interference from this run) but compares
/// against the committed **mean** (which embeds the typical host noise of
/// the recording run). Min-vs-min is too tight — a sustained host
/// slowdown inflates even the minimum and would trip the guard without
/// any code regression; min-vs-mean keeps the 25% threshold pointed at
/// structural regressions.
fn run_guard() {
    let committed = committed_cold_mean_ns("BENCH_proof_engine.json").expect(
        "BENCH_proof_engine.json with cold_single_thread_ns_per_query \
         (run a full record first)",
    );
    let point = measure(&build_world, false, 1, 32, 5);
    let ratio = point.min_ns / committed;
    eprintln!(
        "perf guard: cold single-thread min {:.0} ns/query vs committed {:.0} ns/query ({:.2}x)",
        point.min_ns, committed, ratio
    );
    assert!(
        ratio <= GUARD_MAX_REGRESSION,
        "perf guard FAILED: cold single-thread proof search regressed {:.2}x \
         (> {GUARD_MAX_REGRESSION}x) against the committed BENCH_proof_engine.json \
         ({:.0} ns vs {:.0} ns). If the slowdown is intentional, re-record the \
         artifact with a full `scripts/bench_record.sh proof` run.",
        ratio, point.min_ns, committed
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--guard") {
        run_guard();
        return;
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                // Never clobber the committed full-run artifact from a
                // smoke run.
                "target/BENCH_proof_engine.smoke.json".to_string()
            } else {
                "BENCH_proof_engine.json".to_string()
            }
        });

    let (warm_q, cold_q, reps) = if smoke { (24, 4, 1) } else { (64, 32, 5) };

    let warm = series(&build_stress_world, true, warm_q, reps);
    let cold_base = measure(&build_world, false, 1, cold_q.max(16) * 2, reps);
    let cold = series(&build_stress_world, false, cold_q, reps);
    // Scaling ratios are computed from the per-point minima: scheduler
    // and frequency noise on a shared box is strictly additive, so the
    // min over reps is the stable estimate of each configuration's true
    // cost, where a mean ratio can swing ±40% run to run.
    let speedup_1_to_4 = warm[0].min_ns / warm[2].min_ns;
    let cold_coalesce_1_to_4 = cold[0].min_ns / cold[2].min_ns;
    // Speedup over the pre-refactor baseline, same workload both sides:
    // >1.0 means faster than the engine this PR series started from.
    let cold_vs_pre_pr = PRE_PR_COLD_NS_PER_QUERY / cold_base.mean_ns;

    let json = format!(
        "{{\n  \"bench\": \"proof_engine\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \
         \"baseline_workload\": {{\"users\": {USERS}, \"ladder_depth\": {BASE_DEPTH}, \"shared_keys\": {}}},\n  \
         \"stress_workload\": {{\"users\": {USERS}, \"ladder_depth\": {STRESS_DEPTH}, \"rung_fanout\": {STRESS_FANOUT}, \"constrained\": true, \"shared_keys\": {}}},\n  \
         \"warm_cache\": {},\n  \
         \"cold_cache_stress\": {},\n  \
         \"cold_baseline_single_thread\": {},\n  \
         \"warm_speedup_1_to_4_threads\": {speedup_1_to_4:.2},\n  \
         \"cold_coalesce_speedup_1_to_4_threads\": {cold_coalesce_1_to_4:.2},\n  \
         \"cold_single_thread_ns_per_query\": {:.0},\n  \
         \"cold_single_thread_min_ns_per_query\": {:.0},\n  \
         \"pre_pr_cold_single_thread_ns_per_query\": {PRE_PR_COLD_NS_PER_QUERY:.0},\n  \
         \"cold_single_thread_vs_pre_pr\": {cold_vs_pre_pr:.3}\n}}\n",
        USERS * BASE_DEPTH,
        USERS * 4,
        json_series(&warm),
        json_series(&cold),
        json_point(&cold_base),
        cold_base.mean_ns,
        cold_base.min_ns,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    print!("{json}");

    if !smoke {
        assert!(
            cold_vs_pre_pr >= 1.0,
            "cold single-thread search must be at least as fast as the pre-refactor \
             baseline ({:.0} ns vs {PRE_PR_COLD_NS_PER_QUERY:.0} ns, \
             speedup {cold_vs_pre_pr:.3}x < 1.0x)",
            cold_base.mean_ns
        );
        assert!(
            cold_coalesce_1_to_4 > 1.0 && cold[2].qps() > cold[0].qps(),
            "cold 4-thread throughput must beat cold 1-thread (coalescing; got \
             {cold_coalesce_1_to_4:.2}x min-based, {:.1} vs {:.1} q/s mean-based)",
            cold[2].qps(),
            cold[0].qps()
        );
        assert!(
            speedup_1_to_4 >= 2.5,
            "warm-cache throughput must scale ≥2.5x from 1 to 4 threads (got {speedup_1_to_4:.2}x)"
        );
        eprintln!(
            "acceptance: cold single-thread {cold_vs_pre_pr:.3}x of pre-refactor baseline (≥1.0), \
             cold 1→4 coalescing {cold_coalesce_1_to_4:.2}x (>1.0), \
             warm 1→4 amortization {speedup_1_to_4:.2}x (≥2.5)"
        );
    }
}
