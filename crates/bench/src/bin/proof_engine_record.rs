//! Records the concurrent proof-engine benchmark into
//! `BENCH_proof_engine.json`: proof-query throughput at 1/2/4/8 prover
//! threads, cold cache vs warm cache, on the 8-user × depth-4 role-ladder
//! workload (seed 2002) used for the pre-refactor baseline.
//!
//! The machine this runs on may have a single core, so the warm-cache
//! scaling is *not* CPU parallelism: it is cache-sharing amortization.
//! Each prover thread issues a fixed number of queries over a shared key
//! set, so with more threads the one-off cold-search cost of each key is
//! amortized over proportionally more served queries — which is exactly
//! the property the revocation-coherent proof cache exists to provide.
//!
//! Usage: `proof_engine_record [--smoke]`. Smoke mode shrinks the query
//! counts so `scripts/check.sh` can exercise the pipeline quickly; the
//! committed artifact comes from a full run, which also enforces the
//! acceptance thresholds (≥2x warm throughput 1→4 threads).

use std::hint::black_box;
use std::time::Instant;

use drbac_core::{LocalEntity, Node, SimClock};
use drbac_crypto::SchnorrGroup;
use drbac_wallet::Wallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2002;
const USERS: usize = 8;
const DEPTH: usize = 4;
/// Pre-refactor cold single-thread cost on this workload (mean of three
/// runs: 315066 / 366206 / 343844 ns per query).
const PRE_PR_COLD_NS_PER_QUERY: f64 = 341_705.0;

struct World {
    wallet: Wallet,
    /// Every (subject, object) pair: 8 users × the 4 rungs of their ladder.
    keys: Vec<(Node, Node)>,
}

/// Builds the baseline workload: each user holds a grant into the bottom
/// of a private depth-4 role ladder `lad{u}d0 → … → lad{u}d3`.
fn build_world() -> World {
    let mut rng = StdRng::seed_from_u64(SEED);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let users: Vec<LocalEntity> = (0..USERS)
        .map(|u| LocalEntity::generate(format!("U{u}"), g.clone(), &mut rng))
        .collect();
    let wallet = Wallet::new("bench.proof-engine", SimClock::new());
    let mut keys = Vec::new();
    for (u, user) in users.iter().enumerate() {
        wallet
            .publish(
                owner
                    .delegate(
                        Node::entity(user),
                        Node::role(owner.role(&format!("lad{u}d0"))),
                    )
                    .sign(&owner)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        for d in 1..DEPTH {
            wallet
                .publish(
                    owner
                        .delegate(
                            Node::role(owner.role(&format!("lad{u}d{}", d - 1))),
                            Node::role(owner.role(&format!("lad{u}d{d}"))),
                        )
                        .sign(&owner)
                        .unwrap(),
                    vec![],
                )
                .unwrap();
        }
        for d in 0..DEPTH {
            keys.push((
                Node::entity(user),
                Node::role(owner.role(&format!("lad{u}d{d}"))),
            ));
        }
    }
    World { wallet, keys }
}

/// Runs `threads` provers, each issuing `queries_per_thread` queries
/// round-robin over the shared key set (staggered start offsets), and
/// returns (total queries, elapsed ns).
fn run(world: &World, threads: usize, queries_per_thread: usize) -> (usize, u128) {
    let keys = &world.keys;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let wallet = world.wallet.clone();
            scope.spawn(move || {
                for i in 0..queries_per_thread {
                    let (subject, object) = &keys[(t * 7 + i) % keys.len()];
                    black_box(wallet.find_proof(subject, object, &[]));
                }
            });
        }
    });
    (threads * queries_per_thread, start.elapsed().as_nanos())
}

struct Point {
    threads: usize,
    queries: usize,
    ns_per_query: f64,
    qps: f64,
}

fn series(warm: bool, queries_per_thread: usize) -> Vec<Point> {
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|threads| {
            // A fresh wallet per point so every series starts cold and
            // the amortization ratio is a pure function of the config.
            let world = build_world();
            world.wallet.set_query_cache(warm);
            let (queries, ns) = run(&world, threads, queries_per_thread);
            let ns_per_query = ns as f64 / queries as f64;
            Point {
                threads,
                queries,
                ns_per_query,
                qps: 1e9 / ns_per_query,
            }
        })
        .collect()
}

fn json_series(points: &[Point]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"threads\": {}, \"queries\": {}, \"ns_per_query\": {:.0}, \"queries_per_sec\": {:.1}}}",
                p.threads, p.queries, p.ns_per_query, p.qps
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Warm series: fixed per-thread query count over 32 shared keys, so
    // thread count scales how many served queries share each cold miss.
    // Cold series: cache disabled, every query pays the full search.
    let (warm_q, cold_q) = if smoke { (24, 4) } else { (128, 32) };

    let warm = series(true, warm_q);
    let cold = series(false, cold_q);
    let cold_single = cold[0].ns_per_query;
    let speedup_1_to_4 = warm[2].qps / warm[0].qps;
    let cold_vs_baseline = cold_single / PRE_PR_COLD_NS_PER_QUERY;

    let json = format!(
        "{{\n  \"bench\": \"proof_engine\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \
         \"workload\": {{\"users\": {USERS}, \"ladder_depth\": {DEPTH}, \"shared_keys\": {}}},\n  \
         \"warm_cache\": {},\n  \"cold_cache\": {},\n  \
         \"warm_speedup_1_to_4_threads\": {speedup_1_to_4:.2},\n  \
         \"cold_single_thread_ns_per_query\": {cold_single:.0},\n  \
         \"pre_pr_cold_single_thread_ns_per_query\": {PRE_PR_COLD_NS_PER_QUERY:.0},\n  \
         \"cold_single_thread_vs_pre_pr\": {cold_vs_baseline:.3}\n}}\n",
        USERS * DEPTH,
        json_series(&warm),
        json_series(&cold),
    );
    std::fs::write("BENCH_proof_engine.json", &json).expect("write BENCH_proof_engine.json");
    print!("{json}");

    if !smoke {
        assert!(
            speedup_1_to_4 >= 2.0,
            "warm-cache throughput must scale ≥2x from 1 to 4 threads (got {speedup_1_to_4:.2}x)"
        );
        assert!(
            cold_vs_baseline <= 1.10,
            "cold single-thread cost regressed more than 10% vs the pre-refactor baseline \
             ({cold_single:.0} ns vs {PRE_PR_COLD_NS_PER_QUERY:.0} ns)"
        );
        eprintln!(
            "acceptance: warm 1→4 speedup {speedup_1_to_4:.2}x (≥2.0), \
             cold single-thread {cold_vs_baseline:.3}x of baseline (≤1.10)"
        );
    }
}
