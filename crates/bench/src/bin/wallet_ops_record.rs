//! Records the indexed-wallet operations benchmark into
//! `BENCH_wallet_ops.json`: boot time and query latency at 10^4, 10^5,
//! and 10^6 delegations, indexed boot vs full journal replay.
//!
//! The world at each size is a wallet store whose log has been
//! compacted behind a snapshot, plus a current `FileTable`-backed
//! delegation index — the state a long-lived wallet is actually in
//! when it restarts. Worlds are built by signing real certificates but
//! *bypassing* `Wallet::publish` (direct `WalletStore::append`, a
//! synthesized snapshot image, a bulk `DelegationIndex::rebuild`):
//! publish-side verification costs ~140 µs per certificate and would
//! turn a 10^6 build into a re-verification benchmark of its own.
//! Everything measured afterwards goes through the production paths.
//!
//! The workload shape keeps answers small while the world grows: 16
//! *probe* users hold 8 delegations each and 64 third-party grants ride
//! on one admin support, while the remaining bulk (the other 99.99% at
//! 10^6) belongs to other subjects. What the index buys is **cost
//! proportional to the answer, not the wallet**:
//!
//! * **indexed boot** — `DurableWallet::open_indexed`: snapshot header
//!   probe + index trailer read + empty-tail scan; milliseconds at any
//!   size, and the graph hydrates lazily from the index on demand.
//! * **replay boot** — `DurableWallet::open`: decodes and re-verifies
//!   every snapshotted credential (~140 µs each ⇒ ~2 minutes at 10^6).
//! * **queries** — `query_subject` on the probe users: the planner's
//!   prefix scans + neighborhood hydration (cold) vs the warm in-memory
//!   graph walk of a fully replayed wallet.
//! * **audit sweep** — `unsupported_third_party`: one `3/` prefix scan
//!   over the 65 third-party rows vs a full scan of every credential.
//!
//! Methodology: boots are measured over several repetitions against the
//! same prebuilt world (boot is read-only), after one discarded warm-up;
//! queries are averaged over a key sweep per repetition. The artifact
//! records min/mean/stddev per point; ratios are computed from means
//! because both sides of each ratio are measured in the same process
//! run. The replay boot at 10^6 runs once — it is two minutes long and
//! its magnitude, not its variance, is the result.
//!
//! Usage: `wallet_ops_record [--smoke] [--guard] [--out PATH]`.
//!
//! * `--smoke` builds one small world, skips the acceptance thresholds,
//!   and defaults the output to a throwaway path under `target/` —
//!   `scripts/check.sh` uses it as the index-boot smoke.
//! * `--guard` records nothing: it builds the 10^4 world, measures the
//!   indexed boot, and fails (exit 1) if the min over its reps
//!   regressed more than 50% against the committed
//!   `boot_indexed_guard_ms` mean in `BENCH_wallet_ops.json`. Boot is a
//!   millisecond-scale path, so the guard threshold is looser than the
//!   proof-engine guard's 25% — at this scale scheduler noise alone can
//!   move a single rep by tens of percent; 1.5x still catches the
//!   failure this guard exists for (an accidental return to O(wallet)
//!   boot, which is a >100x regression).
//!
//! A full run (no flags) writes `BENCH_wallet_ops.json` and enforces
//! the acceptance thresholds: indexed boot and warm indexed queries in
//! single-digit milliseconds at 10^6 delegations, and an indexed-boot
//! speedup of at least 100x over replay at every size.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use drbac_core::{Encode, LocalEntity, Node, SignedDelegation, SimClock, Writer};
use drbac_crypto::SchnorrGroup;
use drbac_index::{DelegationIndex, FileTable, RebuildSource};
use drbac_store::{MemMedium, StoreEvent, WalletStore};
use drbac_wallet::DurableWallet;
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 2002;
/// Probe subjects: the users whose queries are measured.
const PROBE_USERS: usize = 16;
/// Delegations per probe user — the answer size every query pays for.
const PROBE_CERTS: usize = 8;
/// Bulk subjects the rest of the world is spread across.
const BULK_USERS: usize = 64;
/// Third-party grants riding on the admin support (audit candidates).
const AUDIT_TP: usize = 64;
/// `--guard` fails when the indexed boot is this much slower than the
/// committed artifact (see the module docs for why 1.5x, not 1.25x).
const GUARD_MAX_REGRESSION: f64 = 1.5;

/// A prebuilt restart state: compacted store + current index media.
struct World {
    store: Arc<WalletStore>,
    tab: MemMedium,
    log: MemMedium,
    probes: Vec<Node>,
    delegations: usize,
}

/// Synthesizes the `drbac-wallet-v1` snapshot image directly from the
/// certificate list (no supports, declarations, or revocations — the
/// bulk build has none).
fn snapshot_image(certs: &[Arc<SignedDelegation>]) -> Vec<u8> {
    let mut w = Writer::tagged(b"drbac-wallet-v1");
    w.u64(certs.len() as u64);
    for cert in certs {
        cert.as_ref().encode(&mut w);
    }
    w.u64(0); // supports
    w.u64(0); // declarations
    w.u64(0); // revocations
    w.finish()
}

fn build_world(n: usize) -> World {
    let mut rng = StdRng::seed_from_u64(SEED);
    let g = SchnorrGroup::test_256();
    let owner = LocalEntity::generate("Owner", g.clone(), &mut rng);
    let broker = LocalEntity::generate("Broker", g.clone(), &mut rng);
    let probe_users: Vec<LocalEntity> = (0..PROBE_USERS)
        .map(|u| LocalEntity::generate(format!("P{u}"), g.clone(), &mut rng))
        .collect();
    let bulk_users: Vec<LocalEntity> = (0..BULK_USERS)
        .map(|u| LocalEntity::generate(format!("W{u}"), g.clone(), &mut rng))
        .collect();

    let mut certs: Vec<Arc<SignedDelegation>> = Vec::with_capacity(n);
    // The admin grant the third-party certificates lean on: the audit
    // sweep finds it derivable, so the report stays empty on both the
    // indexed and the walk path.
    certs.push(Arc::new(
        owner
            .delegate(Node::entity(&broker), Node::role_admin(owner.role("tp")))
            .sign(&owner)
            .unwrap(),
    ));
    for i in 0..AUDIT_TP.min(n.saturating_sub(1)) {
        certs.push(Arc::new(
            broker
                .delegate(
                    Node::entity(&probe_users[i % PROBE_USERS]),
                    Node::role(owner.role("tp")),
                )
                .serial(i as u64)
                .sign(&broker)
                .unwrap(),
        ));
    }
    for (u, user) in probe_users.iter().enumerate() {
        for j in 0..PROBE_CERTS {
            if certs.len() >= n {
                break;
            }
            certs.push(Arc::new(
                owner
                    .delegate(Node::entity(user), Node::role(owner.role(&format!("p{u}x{j}"))))
                    .sign(&owner)
                    .unwrap(),
            ));
        }
    }
    // Bulk fill: every remaining delegation has its own role, so probe
    // neighborhoods stay the same size while the wallet grows.
    let mut i = 0usize;
    while certs.len() < n {
        certs.push(Arc::new(
            owner
                .delegate(
                    Node::entity(&bulk_users[i % BULK_USERS]),
                    Node::role(owner.role(&format!("b{i}"))),
                )
                .sign(&owner)
                .unwrap(),
        ));
        i += 1;
    }

    let store = Arc::new(WalletStore::in_memory());
    for cert in &certs {
        store
            .append(&StoreEvent::Publish(Arc::clone(cert)))
            .expect("bulk append");
    }
    let image = snapshot_image(&certs);
    store.install_snapshot(move || image).expect("snapshot");

    let tab = MemMedium::new();
    let log = MemMedium::new();
    let index = DelegationIndex::open(Box::new(
        FileTable::from_media(Box::new(tab.clone()), Box::new(log.clone())).unwrap(),
    ))
    .expect("open index");
    index
        .rebuild(
            &RebuildSource {
                certs: &certs,
                supports: &[],
                declarations: &[],
                revoked: &[],
                absorbed: &[],
            },
            certs.len() as u64,
        )
        .expect("bulk index rebuild");
    index.flush().expect("index flush");

    World {
        store,
        tab,
        log,
        probes: probe_users.iter().map(Node::entity).collect(),
        delegations: certs.len(),
    }
}

fn open_index(world: &World) -> Arc<DelegationIndex> {
    Arc::new(
        DelegationIndex::open(Box::new(
            FileTable::from_media(Box::new(world.tab.clone()), Box::new(world.log.clone()))
                .unwrap(),
        ))
        .expect("reopen index"),
    )
}

/// min/mean/stddev over a sample set, in the sample's unit.
struct Stat {
    reps: usize,
    mean: f64,
    min: f64,
    stddev: f64,
}

fn stat(samples: &[f64]) -> Stat {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
    Stat {
        reps: samples.len(),
        mean,
        min,
        stddev: var.sqrt(),
    }
}

fn json_stat(s: &Stat, unit: &str) -> String {
    format!(
        "{{\"reps\": {}, \"mean_{unit}\": {:.3}, \"min_{unit}\": {:.3}, \"stddev_{unit}\": {:.3}}}",
        s.reps, s.mean, s.min, s.stddev
    )
}

/// One discarded warm-up, then `reps` measured runs of `f` (ms each).
fn time_ms(reps: usize, mut f: impl FnMut()) -> Stat {
    let mut samples = Vec::with_capacity(reps);
    for rep in 0..=reps {
        let start = Instant::now();
        f();
        if rep > 0 {
            samples.push(start.elapsed().as_secs_f64() * 1e3);
        }
    }
    stat(&samples)
}

/// Measures the indexed boot (index open + `open_indexed`) in ms.
fn boot_indexed_ms(world: &World, reps: usize) -> Stat {
    time_ms(reps, || {
        let index = open_index(world);
        let (wallet, report) = DurableWallet::open_indexed(
            "bench.wallet-ops",
            SimClock::new(),
            Arc::clone(&world.store),
            index,
        )
        .expect("indexed boot");
        assert!(report.lazy, "a current index must boot on the fast path");
        black_box(wallet);
    })
}

/// One measured size point.
struct SizePoint {
    delegations: usize,
    boot_indexed: Stat,
    boot_replay: Stat,
    cold_query: Stat,
    query_indexed: Stat,
    query_walk: Stat,
    audit_indexed: Stat,
    audit_walk: Stat,
}

fn measure_size(n: usize, smoke: bool) -> SizePoint {
    eprintln!("building world: {n} delegations…");
    let world = build_world(n);
    let boot_reps = if smoke { 2 } else { 5 };
    // The replay boot re-verifies everything — at 10^6 one rep is ~2
    // minutes and its magnitude is the result, so it runs once there.
    let replay_reps = if smoke || n >= 1_000_000 { 1 } else { 2 };
    let query_sweeps = if smoke { 2 } else { 8 };

    let boot_indexed = boot_indexed_ms(&world, boot_reps);

    // One indexed wallet for the query measurements.
    let (indexed, report) = DurableWallet::open_indexed(
        "bench.wallet-ops",
        SimClock::new(),
        Arc::clone(&world.store),
        open_index(&world),
    )
    .expect("indexed boot");
    assert!(report.lazy);

    // Cold first answers: each probe's first query pays the planner's
    // prefix scans plus neighborhood hydration from the index.
    let cold_samples: Vec<f64> = world
        .probes
        .iter()
        .map(|probe| {
            let start = Instant::now();
            black_box(indexed.query_subject(probe, &[]));
            start.elapsed().as_nanos() as f64
        })
        .collect();
    let cold_query = stat(&cold_samples);

    let sweep_ns = |wallet: &DurableWallet, probes: &[Node]| -> f64 {
        let start = Instant::now();
        for probe in probes {
            black_box(wallet.query_subject(probe, &[]));
        }
        start.elapsed().as_nanos() as f64 / probes.len() as f64
    };
    let mut samples = Vec::new();
    for rep in 0..=query_sweeps {
        let ns = sweep_ns(&indexed, &world.probes);
        if rep > 0 {
            samples.push(ns);
        }
    }
    let query_indexed = stat(&samples);

    let audit_indexed = time_ms(if smoke { 2 } else { 3 }, || {
        black_box(indexed.unsupported_third_party());
    });

    // The replay side: boot (full re-verification), then the same
    // queries as warm in-memory graph walks.
    eprintln!("replay boot: {n} delegations × ~140 µs/cert…");
    let mut replay_samples = Vec::with_capacity(replay_reps);
    let mut replayed = None;
    for _ in 0..replay_reps {
        let start = Instant::now();
        let (wallet, _) = DurableWallet::open(
            "bench.wallet-ops",
            SimClock::new(),
            Arc::clone(&world.store),
        )
        .expect("replay boot");
        replay_samples.push(start.elapsed().as_secs_f64() * 1e3);
        replayed = Some(wallet);
    }
    let boot_replay = stat(&replay_samples);
    let replayed = replayed.expect("at least one replay rep");
    assert_eq!(replayed.len(), world.delegations, "replay recovered everything");

    let mut samples = Vec::new();
    for rep in 0..=query_sweeps {
        let ns = sweep_ns(&replayed, &world.probes);
        if rep > 0 {
            samples.push(ns);
        }
    }
    let query_walk = stat(&samples);

    let audit_walk = time_ms(if smoke { 2 } else { 3 }, || {
        black_box(replayed.unsupported_third_party());
    });

    // Both routes must agree before either number means anything.
    assert_eq!(
        indexed.unsupported_third_party().len(),
        replayed.unsupported_third_party().len(),
        "audit answers diverged between index and walk"
    );

    SizePoint {
        delegations: world.delegations,
        boot_indexed,
        boot_replay,
        cold_query,
        query_indexed,
        query_walk,
        audit_indexed,
        audit_walk,
    }
}

fn json_point(p: &SizePoint) -> String {
    let boot_speedup = p.boot_replay.mean / p.boot_indexed.mean;
    format!(
        "    {{\"delegations\": {}, \"boot_indexed\": {}, \"boot_replay\": {}, \
         \"boot_speedup\": {:.1}, \"cold_query\": {}, \"query_indexed\": {}, \
         \"query_walk\": {}, \"audit_indexed\": {}, \"audit_walk\": {}}}",
        p.delegations,
        json_stat(&p.boot_indexed, "ms"),
        json_stat(&p.boot_replay, "ms"),
        boot_speedup,
        json_stat(&p.cold_query, "ns"),
        json_stat(&p.query_indexed, "ns"),
        json_stat(&p.query_walk, "ns"),
        json_stat(&p.audit_indexed, "ms"),
        json_stat(&p.audit_walk, "ms"),
    )
}

/// Reads `"boot_indexed_guard_ms": N` out of the committed artifact
/// without a JSON dependency.
fn committed_guard_ms(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let field = "\"boot_indexed_guard_ms\":";
    let at = text.find(field)? + field.len();
    let rest = text[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// `--guard`: quick indexed-boot tripwire at 10^4 against the committed
/// artifact — min over reps vs committed mean, as in the proof guard.
fn run_guard() {
    let committed = committed_guard_ms("BENCH_wallet_ops.json").expect(
        "BENCH_wallet_ops.json with boot_indexed_guard_ms (run a full record first)",
    );
    let world = build_world(10_000);
    let point = boot_indexed_ms(&world, 5);
    let ratio = point.min / committed;
    eprintln!(
        "boot guard: indexed boot min {:.2} ms vs committed {:.2} ms ({ratio:.2}x)",
        point.min, committed
    );
    assert!(
        ratio <= GUARD_MAX_REGRESSION,
        "boot guard FAILED: indexed wallet boot regressed {ratio:.2}x \
         (> {GUARD_MAX_REGRESSION}x) against the committed BENCH_wallet_ops.json \
         ({:.2} ms vs {:.2} ms). If the slowdown is intentional, re-record the \
         artifact with a full `scripts/bench_record.sh wallet` run.",
        point.min, committed
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    if args.iter().any(|a| a == "--guard") {
        run_guard();
        return;
    }
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            if smoke {
                // Never clobber the committed full-run artifact.
                "target/BENCH_wallet_ops.smoke.json".to_string()
            } else {
                "BENCH_wallet_ops.json".to_string()
            }
        });

    let sizes: &[usize] = if smoke {
        &[5_000]
    } else {
        &[10_000, 100_000, 1_000_000]
    };
    let points: Vec<SizePoint> = sizes.iter().map(|&n| measure_size(n, smoke)).collect();

    let guard_ms = points[0].boot_indexed.mean;
    let last = points.last().expect("at least one size");
    let headline_speedup = last.boot_replay.mean / last.boot_indexed.mean;
    let rows: Vec<String> = points.iter().map(json_point).collect();
    let json = format!(
        "{{\n  \"bench\": \"wallet_ops\",\n  \"seed\": {SEED},\n  \"smoke\": {smoke},\n  \
         \"workload\": {{\"probe_users\": {PROBE_USERS}, \"probe_certs_each\": {PROBE_CERTS}, \
         \"third_party\": {AUDIT_TP}}},\n  \
         \"points\": [\n{}\n  ],\n  \
         \"boot_indexed_guard_ms\": {guard_ms:.3},\n  \
         \"headline_boot_speedup\": {headline_speedup:.1}\n}}\n",
        rows.join(",\n"),
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    print!("{json}");

    if !smoke {
        for p in &points {
            let speedup = p.boot_replay.mean / p.boot_indexed.mean;
            assert!(
                speedup >= 100.0,
                "indexed boot must be ≥100x faster than replay at {} delegations \
                 (got {speedup:.1}x: {:.2} ms vs {:.2} ms)",
                p.delegations,
                p.boot_indexed.mean,
                p.boot_replay.mean
            );
        }
        assert!(
            last.boot_indexed.mean < 10.0,
            "indexed boot at {} delegations must be single-digit ms (got {:.2} ms)",
            last.delegations,
            last.boot_indexed.mean
        );
        assert!(
            last.query_indexed.mean < 10.0 * 1e6,
            "warm indexed queries at {} delegations must be single-digit ms \
             (got {:.0} ns)",
            last.delegations,
            last.query_indexed.mean
        );
        eprintln!(
            "acceptance: boot {:.2} ms and queries {:.0} ns at {} delegations, \
             boot speedup {headline_speedup:.0}x over replay (≥100x at every size)",
            last.boot_indexed.mean, last.query_indexed.mean, last.delegations
        );
    }
}
