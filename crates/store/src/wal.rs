//! The write-ahead log proper: record framing, log scanning with a
//! corruption taxonomy, and the [`WalletStore`] handle providing
//! group-committed appends, snapshots, compaction, and crash recovery.
//!
//! ## Frame format
//!
//! A log is the 8-byte [`LOG_MAGIC`] followed by records:
//!
//! ```text
//! record   := len:u32be | crc:u32be | payload        (len = |payload|)
//! payload  := seq:u64be | kind:u8 | body             (crc = crc32(payload))
//! ```
//!
//! Sequence numbers start at 1 and are strictly increasing; the CRC and
//! the length prefix together detect torn and bit-flipped tails. A
//! snapshot file is [`SNAPSHOT_MAGIC`], the highest sequence number the
//! image covers, then a crc-framed wallet image:
//!
//! ```text
//! snapshot := magic:8 | seq:u64be | len:u32be | crc:u32be | image
//! ```

use std::fmt;
use std::io;
use std::path::Path;

use parking_lot::Mutex;

use drbac_core::{Reader, Writer};

use crate::crc::crc32;
use crate::event::StoreEvent;
use crate::medium::{FileMedium, MemMedium, Medium};

/// Leading magic of a write-ahead log.
pub const LOG_MAGIC: [u8; 8] = *b"drbacWL1";

/// Leading magic of a snapshot file.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"drbacSN1";

/// Upper bound on a single record payload (64 MiB). A length prefix
/// above this is treated as corruption rather than an allocation request.
const MAX_RECORD: usize = 1 << 26;

const FRAME_HEADER: usize = 8; // len:u32 + crc:u32
const SNAPSHOT_HEADER: usize = 24; // magic:8 + seq:8 + len:4 + crc:4

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The backing medium failed.
    Io(String),
    /// The data violates the store's framing invariants in a way that
    /// cannot be repaired by tail truncation (e.g. an oversize record
    /// on the write path).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "store corruption: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Tuning knobs for a [`WalletStore`].
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Fsync after every `group_commit` appended records (1 = sync every
    /// append). Higher values batch fsyncs at the cost of losing up to
    /// `group_commit - 1` records on power loss; the log remains
    /// well-formed either way because appends are ordered.
    pub group_commit: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { group_commit: 1 }
    }
}

/// Why a log scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Corruption {
    /// The file does not begin with [`LOG_MAGIC`].
    BadMagic,
    /// The file ends inside a record header (torn write).
    TornHeader {
        /// Byte offset of the incomplete header.
        offset: usize,
    },
    /// The file ends inside a record payload (torn write).
    TornRecord {
        /// Byte offset of the record's header.
        offset: usize,
        /// Payload bytes the header promised.
        need: usize,
        /// Payload bytes actually present.
        have: usize,
    },
    /// A length prefix exceeded the record size cap.
    OversizeRecord {
        /// Byte offset of the record's header.
        offset: usize,
        /// The implausible length.
        len: usize,
    },
    /// A payload failed its CRC (bit rot or a torn-then-overwritten tail).
    BadCrc {
        /// Byte offset of the record's header.
        offset: usize,
    },
    /// A payload passed its CRC but did not decode as a [`StoreEvent`].
    BadPayload {
        /// Byte offset of the record's header.
        offset: usize,
        /// The decode failure.
        error: String,
    },
    /// A record's sequence number did not increase.
    NonMonotonicSeq {
        /// Byte offset of the record's header.
        offset: usize,
        /// The previous record's sequence number.
        prev: u64,
        /// The offending sequence number.
        found: u64,
    },
}

impl Corruption {
    /// Whether this is an ordinary torn tail (an interrupted final
    /// write) rather than mid-log damage.
    pub fn is_torn(&self) -> bool {
        matches!(
            self,
            Corruption::TornHeader { .. } | Corruption::TornRecord { .. }
        )
    }
}

impl fmt::Display for Corruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Corruption::BadMagic => f.write_str("missing or damaged log magic"),
            Corruption::TornHeader { offset } => {
                write!(f, "torn record header at byte {offset}")
            }
            Corruption::TornRecord { offset, need, have } => write!(
                f,
                "torn record at byte {offset}: {have} of {need} payload bytes"
            ),
            Corruption::OversizeRecord { offset, len } => {
                write!(f, "implausible record length {len} at byte {offset}")
            }
            Corruption::BadCrc { offset } => write!(f, "crc mismatch at byte {offset}"),
            Corruption::BadPayload { offset, error } => {
                write!(f, "undecodable payload at byte {offset}: {error}")
            }
            Corruption::NonMonotonicSeq {
                offset,
                prev,
                found,
            } => write!(
                f,
                "sequence went backwards at byte {offset}: {prev} then {found}"
            ),
        }
    }
}

/// One record recovered by [`scan_log`].
#[derive(Debug, Clone, PartialEq)]
pub struct ScannedRecord {
    /// The record's sequence number.
    pub seq: u64,
    /// The decoded event.
    pub event: StoreEvent,
    /// Byte offset one past the record's frame (i.e. the log is valid
    /// up to at least `end`).
    pub end: usize,
}

/// The result of scanning a log image.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Every record of the longest valid prefix, in log order.
    pub records: Vec<ScannedRecord>,
    /// Length in bytes of the longest valid prefix (magic included).
    /// Truncating the log to this length yields a clean log.
    pub valid_len: usize,
    /// Why the scan stopped early, if it did.
    pub corruption: Option<Corruption>,
}

/// Scans a log image and returns the longest valid prefix of records.
///
/// This never panics on arbitrary input: any framing violation —
/// truncated magic, torn header or payload, CRC mismatch, undecodable
/// payload, regressing sequence numbers, implausible lengths — stops
/// the scan and is reported as [`Corruption`], with `valid_len` marking
/// the boundary of the intact prefix.
pub fn scan_log(bytes: &[u8]) -> ScanOutcome {
    if bytes.is_empty() {
        // A never-written medium: valid, vacuously.
        return ScanOutcome {
            records: Vec::new(),
            valid_len: 0,
            corruption: None,
        };
    }
    if bytes.len() < LOG_MAGIC.len() || bytes[..LOG_MAGIC.len()] != LOG_MAGIC {
        return ScanOutcome {
            records: Vec::new(),
            valid_len: 0,
            corruption: Some(Corruption::BadMagic),
        };
    }

    let mut records = Vec::new();
    let mut offset = LOG_MAGIC.len();
    let mut prev_seq: Option<u64> = None;
    let mut corruption = None;

    while offset < bytes.len() {
        if bytes.len() - offset < FRAME_HEADER {
            corruption = Some(Corruption::TornHeader { offset });
            break;
        }
        let len =
            u32::from_be_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            corruption = Some(Corruption::OversizeRecord { offset, len });
            break;
        }
        let have = bytes.len() - offset - FRAME_HEADER;
        if have < len {
            corruption = Some(Corruption::TornRecord {
                offset,
                need: len,
                have,
            });
            break;
        }
        let payload = &bytes[offset + FRAME_HEADER..offset + FRAME_HEADER + len];
        if crc32(payload) != crc {
            corruption = Some(Corruption::BadCrc { offset });
            break;
        }
        let decoded = (|| {
            let mut r = Reader::new(payload);
            let seq = r.u64()?;
            let kind = r.u8()?;
            let event = StoreEvent::decode_body(kind, &mut r)?;
            r.finish()?;
            Ok::<_, drbac_core::DecodeError>((seq, event))
        })();
        let (seq, event) = match decoded {
            Ok(ok) => ok,
            Err(e) => {
                corruption = Some(Corruption::BadPayload {
                    offset,
                    error: e.to_string(),
                });
                break;
            }
        };
        if let Some(prev) = prev_seq {
            if seq <= prev {
                corruption = Some(Corruption::NonMonotonicSeq {
                    offset,
                    prev,
                    found: seq,
                });
                break;
            }
        }
        prev_seq = Some(seq);
        offset += FRAME_HEADER + len;
        records.push(ScannedRecord {
            seq,
            event,
            end: offset,
        });
    }

    let valid_len = records.last().map_or(LOG_MAGIC.len(), |r| r.end);
    ScanOutcome {
        records,
        valid_len,
        corruption,
    }
}

fn encode_frame(seq: u64, event: &StoreEvent) -> Vec<u8> {
    let mut w = Writer::default();
    w.u64(seq);
    w.u8(event.kind());
    event.encode_body(&mut w);
    let payload = w.finish();
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&crc32(&payload).to_be_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Parses only a snapshot's header: magic, covered sequence number, and
/// the length envelope — *without* CRC-checking the image. Open uses
/// this so a store over a multi-hundred-megabyte snapshot starts in
/// microseconds; [`WalletStore::recover`] and [`WalletStore::verify`]
/// still run the full CRC before the image is trusted.
fn parse_snapshot_header(header: &[u8], total_len: u64) -> Option<u64> {
    if header.len() < SNAPSHOT_HEADER || header[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let seq = u64::from_be_bytes(header[8..16].try_into().expect("8 bytes"));
    let len = u32::from_be_bytes(header[16..20].try_into().expect("4 bytes")) as u64;
    if total_len != SNAPSHOT_HEADER as u64 + len {
        return None;
    }
    Some(seq)
}

fn parse_snapshot(bytes: &[u8]) -> Option<(u64, Vec<u8>)> {
    if bytes.len() < SNAPSHOT_HEADER || bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let seq = u64::from_be_bytes(bytes[8..16].try_into().expect("8 bytes"));
    let len = u32::from_be_bytes(bytes[16..20].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(bytes[20..24].try_into().expect("4 bytes"));
    if bytes.len() != SNAPSHOT_HEADER + len {
        return None;
    }
    let image = &bytes[SNAPSHOT_HEADER..];
    if crc32(image) != crc {
        return None;
    }
    Some((seq, image.to_vec()))
}

/// Everything recovery produced: the snapshot (if any) plus the log
/// tail to replay on top of it.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovered {
    /// The latest valid snapshot: the sequence number it covers and the
    /// wallet image bytes (`Wallet::export_bytes` format).
    pub snapshot: Option<(u64, Vec<u8>)>,
    /// Log records with sequence numbers above the snapshot's, in order.
    pub events: Vec<(u64, StoreEvent)>,
    /// Bytes dropped from the log tail because they were torn or
    /// corrupt (already truncated from the medium when this is returned).
    pub truncated_bytes: u64,
    /// Whether the damage was an ordinary torn tail (interrupted final
    /// write) as opposed to mid-log corruption.
    pub torn_tail: bool,
    /// Human-readable description of the damage, if any.
    pub corruption: Option<String>,
    /// Whether a snapshot file was present but failed its own framing
    /// or CRC and was ignored (recovery then replays the full log).
    pub snapshot_discarded: bool,
}

/// A point-in-time summary of a store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStatus {
    /// Valid records currently in the log.
    pub records: u64,
    /// Log size in bytes (magic included).
    pub log_bytes: u64,
    /// The sequence number the next append will use.
    pub next_seq: u64,
    /// The sequence number covered by the installed snapshot, if any.
    pub snapshot_seq: Option<u64>,
}

/// The result of a read-only integrity check (`drbac store verify`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyReport {
    /// Total log size in bytes as found on the medium.
    pub log_bytes: u64,
    /// Records in the longest valid prefix.
    pub records: u64,
    /// First valid sequence number, if any records exist.
    pub first_seq: Option<u64>,
    /// Last valid sequence number, if any records exist.
    pub last_seq: Option<u64>,
    /// Length of the longest valid prefix.
    pub valid_len: u64,
    /// Bytes beyond the valid prefix (0 for a clean log).
    pub trailing_bytes: u64,
    /// Description of the damage, if any.
    pub corruption: Option<String>,
    /// Whether the damage is an ordinary torn tail.
    pub torn_tail: bool,
    /// The snapshot's covered sequence number, if a valid snapshot exists.
    pub snapshot_seq: Option<u64>,
    /// Snapshot file size in bytes (0 if absent).
    pub snapshot_bytes: u64,
    /// False if a snapshot file exists but fails its framing or CRC.
    pub snapshot_ok: bool,
    /// Cross-check of the delegation index against the recovered event
    /// stream, when an index sits next to this store. `None` means no
    /// index was checked (absent, or the caller did not ask). The store
    /// itself never fills this in — the index layer computes it and the
    /// CLI attaches it, so the report stays a single source of truth for
    /// `drbac store verify`.
    pub index: Option<IndexCheck>,
}

/// Index/WAL consistency, as attached to a [`VerifyReport`] by the
/// index layer: every indexed id must exist in the recovered event
/// stream and vice versa.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexCheck {
    /// Total entries in the index's tables.
    pub entries: u64,
    /// The last store sequence number the index has applied.
    pub watermark: Option<u64>,
    /// Live delegations in the recovered store that the index is
    /// missing (beyond what log-tail catch-up past the watermark would
    /// repair).
    pub missing: u64,
    /// Ids the index holds that the recovered store does not know.
    pub orphaned: u64,
    /// The index files failed their own framing or CRC.
    pub corruption: Option<String>,
}

impl IndexCheck {
    /// True when the index agrees with the recovered event stream.
    pub fn is_clean(&self) -> bool {
        self.missing == 0 && self.orphaned == 0 && self.corruption.is_none()
    }
}

impl VerifyReport {
    /// True when the log parses end-to-end and the snapshot (if present)
    /// is intact — including the index cross-check when one was run.
    pub fn is_clean(&self) -> bool {
        self.corruption.is_none()
            && self.trailing_bytes == 0
            && self.snapshot_ok
            && self.index.as_ref().is_none_or(IndexCheck::is_clean)
    }
}

struct Inner {
    log: Box<dyn Medium>,
    snap: Box<dyn Medium>,
    /// Sequence number for the next append.
    next_seq: u64,
    /// Valid records currently in the log.
    records: u64,
    /// Highest sequence number covered by the installed snapshot.
    snapshot_seq: Option<u64>,
    /// Appends since the last fsync.
    unsynced: u64,
    /// Length of the log's longest valid prefix.
    valid_len: u64,
    /// True when bytes beyond `valid_len` exist on the medium (torn or
    /// corrupt tail found at open). The tail is truncated lazily by the
    /// first append or by [`WalletStore::recover`] — never by the
    /// constructors, so `drbac store verify` stays read-only.
    dirty_tail: bool,
}

impl Inner {
    /// Refreshes bookkeeping from the medium without modifying it.
    fn reload(&mut self) -> Result<ScanOutcome, StoreError> {
        let bytes = self.log.read_all()?;
        let outcome = scan_log(&bytes);
        self.records = outcome.records.len() as u64;
        let last_seq = outcome.records.last().map_or(0, |r| r.seq);
        // Header-only snapshot probe: open must not pay a CRC pass over
        // the full image (recover/verify still do).
        let snap_header = self.snap.read_at(0, SNAPSHOT_HEADER)?;
        self.snapshot_seq = parse_snapshot_header(&snap_header, self.snap.len()?);
        self.next_seq = last_seq.max(self.snapshot_seq.unwrap_or(0)) + 1;
        self.valid_len = outcome.valid_len as u64;
        self.dirty_tail = outcome.valid_len < bytes.len();
        Ok(outcome)
    }

    /// Makes the log tail appendable: truncates a dirty tail, or writes
    /// the leading magic if the log is empty/headless.
    fn prepare_tail(&mut self) -> Result<(), StoreError> {
        if self.valid_len < LOG_MAGIC.len() as u64 {
            self.log.replace(&LOG_MAGIC)?;
            self.valid_len = LOG_MAGIC.len() as u64;
            self.dirty_tail = false;
        } else if self.dirty_tail {
            self.log.truncate(self.valid_len)?;
            self.log.sync()?;
            self.dirty_tail = false;
        }
        Ok(())
    }
}

/// A durable, append-only journal of [`StoreEvent`]s with snapshot and
/// compaction support. Thread-safe; typically shared as an
/// `Arc<WalletStore>` between a wallet (journaling writes) and the
/// host runtime (crash/restart, snapshots).
pub struct WalletStore {
    config: StoreConfig,
    inner: Mutex<Inner>,
}

impl WalletStore {
    fn from_media(
        log: Box<dyn Medium>,
        snap: Box<dyn Medium>,
        config: StoreConfig,
    ) -> Result<Self, StoreError> {
        let mut inner = Inner {
            log,
            snap,
            next_seq: 1,
            records: 0,
            snapshot_seq: None,
            unsynced: 0,
            valid_len: 0,
            dirty_tail: false,
        };
        inner.reload()?;
        Ok(WalletStore {
            config,
            inner: Mutex::new(inner),
        })
    }

    /// An empty in-memory store with the default configuration.
    pub fn in_memory() -> Self {
        Self::in_memory_with(StoreConfig::default())
    }

    /// An empty in-memory store with an explicit configuration.
    pub fn in_memory_with(config: StoreConfig) -> Self {
        Self::from_media(
            Box::new(MemMedium::new()),
            Box::new(MemMedium::new()),
            config,
        )
        .expect("in-memory media cannot fail")
    }

    /// An in-memory store over an existing (possibly damaged) log
    /// image, with an empty snapshot. The constructor never modifies
    /// the image; damage is handled lazily by append/recover.
    pub fn from_log_bytes(bytes: Vec<u8>) -> Self {
        Self::from_media(
            Box::new(MemMedium::with_contents(bytes)),
            Box::new(MemMedium::new()),
            StoreConfig::default(),
        )
        .expect("in-memory media cannot fail")
    }

    /// Opens (creating as needed) a file-backed store in directory
    /// `dir`, using `wal.log` and `snapshot.bin` within it. An existing
    /// damaged log is *not* modified by opening — only by the first
    /// append or an explicit [`WalletStore::recover`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory or files cannot be opened.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let log = FileMedium::open(dir.join("wal.log"))?;
        let snap = FileMedium::open(dir.join("snapshot.bin"))?;
        Self::from_media(Box::new(log), Box::new(snap), StoreConfig::default())
    }

    /// Journals one event and returns its sequence number. The record
    /// is durable once this returns iff the configured group-commit
    /// interval elapsed (interval 1, the default, syncs every append).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure; [`StoreError::Corrupt`] if
    /// the encoded record exceeds the size cap.
    pub fn append(&self, event: &StoreEvent) -> Result<u64, StoreError> {
        let mut inner = self.inner.lock();
        inner.prepare_tail()?;
        let seq = inner.next_seq;
        let frame = encode_frame(seq, event);
        if frame.len() - FRAME_HEADER > MAX_RECORD {
            return Err(StoreError::Corrupt(format!(
                "record of {} bytes exceeds the {} byte cap",
                frame.len() - FRAME_HEADER,
                MAX_RECORD
            )));
        }
        inner.log.append(&frame)?;
        inner.valid_len += frame.len() as u64;
        inner.next_seq = seq + 1;
        inner.records += 1;
        inner.unsynced += 1;
        drbac_obs::static_counter!("drbac.store.append.count").inc();
        drbac_obs::static_counter!("drbac.store.append.bytes.total").add(frame.len() as u64);
        if inner.unsynced >= self.config.group_commit {
            let timer = drbac_obs::static_histogram!("drbac.store.fsync.ns").start_timer();
            inner.log.sync()?;
            drop(timer);
            inner.unsynced = 0;
            drbac_obs::static_counter!("drbac.store.fsync.count").inc();
        }
        Ok(seq)
    }

    /// Forces any group-commit-buffered appends to durable storage.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn sync(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        if inner.unsynced > 0 {
            let timer = drbac_obs::static_histogram!("drbac.store.fsync.ns").start_timer();
            inner.log.sync()?;
            drop(timer);
            inner.unsynced = 0;
            drbac_obs::static_counter!("drbac.store.fsync.count").inc();
        }
        Ok(())
    }

    /// Recovers the store's contents: the latest valid snapshot plus
    /// the log records above it, after truncating any torn or corrupt
    /// log tail on the medium. Never panics on a damaged log — the
    /// longest valid prefix is recovered and the rest dropped.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure. Corruption is *not* an
    /// error: it is reported in the returned [`Recovered`].
    pub fn recover(&self) -> Result<Recovered, StoreError> {
        let mut inner = self.inner.lock();
        let _timer = drbac_obs::static_histogram!("drbac.store.recover.scan.ns").start_timer();
        let bytes = inner.log.read_all()?;
        let outcome = scan_log(&bytes);
        let truncated_bytes = (bytes.len() - outcome.valid_len) as u64;
        if outcome.valid_len < LOG_MAGIC.len() {
            // Empty or headless log: (re)establish the leading magic so
            // subsequent appends land on a well-formed file.
            inner.log.replace(&LOG_MAGIC)?;
        } else if truncated_bytes > 0 {
            inner.log.truncate(outcome.valid_len as u64)?;
            inner.log.sync()?;
        }
        if truncated_bytes > 0 {
            drbac_obs::static_counter!("drbac.store.recover.truncated.bytes.total")
                .add(truncated_bytes);
        }

        let snap_bytes = inner.snap.read_all()?;
        let snapshot = parse_snapshot(&snap_bytes);
        let snapshot_discarded = snapshot.is_none() && !snap_bytes.is_empty();
        let snap_seq = snapshot.as_ref().map_or(0, |(seq, _)| *seq);

        let last_seq = outcome.records.last().map_or(0, |r| r.seq);
        inner.records = outcome.records.len() as u64;
        inner.next_seq = last_seq.max(snap_seq) + 1;
        inner.valid_len = outcome.valid_len.max(LOG_MAGIC.len()) as u64;
        inner.snapshot_seq = snapshot.as_ref().map(|(seq, _)| *seq);
        inner.dirty_tail = false;
        inner.unsynced = 0;

        let events = outcome
            .records
            .into_iter()
            .filter(|r| r.seq > snap_seq)
            .map(|r| (r.seq, r.event))
            .collect();
        Ok(Recovered {
            snapshot,
            events,
            truncated_bytes,
            torn_tail: outcome.corruption.as_ref().is_some_and(Corruption::is_torn),
            corruption: outcome.corruption.map(|c| c.to_string()),
            snapshot_discarded,
        })
    }

    /// Installs a snapshot covering every record journaled so far, then
    /// compacts the log. `image_fn` is called *without* the store lock
    /// held (so it may itself journal — e.g. a wallet export that races
    /// with concurrent publishes); any records appended while the image
    /// is being built simply stay in the log after compaction, and
    /// replay is idempotent, so a snapshot that is slightly ahead of
    /// its covered sequence number is benign.
    ///
    /// Returns the covered sequence number.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure; [`StoreError::Corrupt`]
    /// for an implausibly large image.
    pub fn install_snapshot(
        &self,
        image_fn: impl FnOnce() -> Vec<u8>,
    ) -> Result<u64, StoreError> {
        let covered = self.inner.lock().next_seq - 1;
        let image = image_fn();
        if image.len() > u32::MAX as usize {
            return Err(StoreError::Corrupt(format!(
                "snapshot image of {} bytes exceeds the format's 4 GiB cap",
                image.len()
            )));
        }
        let mut buf = Vec::with_capacity(SNAPSHOT_HEADER + image.len());
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&covered.to_be_bytes());
        buf.extend_from_slice(&(image.len() as u32).to_be_bytes());
        buf.extend_from_slice(&crc32(&image).to_be_bytes());
        buf.extend_from_slice(&image);

        let mut inner = self.inner.lock();
        inner.snap.replace(&buf)?;
        inner.snapshot_seq = Some(covered);
        drbac_obs::static_counter!("drbac.store.snapshot.count").inc();
        Self::compact_locked(&mut inner)?;
        Ok(covered)
    }

    /// Drops log records already covered by the installed snapshot.
    /// A no-op if no snapshot has been installed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn compact(&self) -> Result<(), StoreError> {
        let mut inner = self.inner.lock();
        Self::compact_locked(&mut inner)
    }

    fn compact_locked(inner: &mut Inner) -> Result<(), StoreError> {
        let Some(snap_seq) = inner.snapshot_seq else {
            return Ok(());
        };
        let bytes = inner.log.read_all()?;
        let outcome = scan_log(&bytes);
        // Sequence numbers increase, so the survivors are a suffix.
        let keep_from = match outcome.records.iter().position(|r| r.seq > snap_seq) {
            Some(0) => LOG_MAGIC.len(),
            Some(idx) => outcome.records[idx - 1].end,
            None => outcome.valid_len,
        };
        let mut rebuilt = Vec::with_capacity(LOG_MAGIC.len() + outcome.valid_len - keep_from);
        rebuilt.extend_from_slice(&LOG_MAGIC);
        rebuilt.extend_from_slice(&bytes[keep_from..outcome.valid_len]);
        inner.log.replace(&rebuilt)?;
        inner.records = outcome.records.iter().filter(|r| r.seq > snap_seq).count() as u64;
        inner.valid_len = rebuilt.len() as u64;
        inner.dirty_tail = false;
        inner.unsynced = 0;
        drbac_obs::static_counter!("drbac.store.compact.count").inc();
        Ok(())
    }

    /// A read-only integrity check of the log and snapshot as they sit
    /// on the medium. Never modifies either file.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let inner = self.inner.lock();
        let bytes = inner.log.read_all()?;
        let outcome = scan_log(&bytes);
        let snap_bytes = inner.snap.read_all()?;
        let snapshot = parse_snapshot(&snap_bytes);
        Ok(VerifyReport {
            log_bytes: bytes.len() as u64,
            records: outcome.records.len() as u64,
            first_seq: outcome.records.first().map(|r| r.seq),
            last_seq: outcome.records.last().map(|r| r.seq),
            valid_len: outcome.valid_len as u64,
            trailing_bytes: (bytes.len() - outcome.valid_len) as u64,
            torn_tail: outcome.corruption.as_ref().is_some_and(Corruption::is_torn),
            corruption: outcome.corruption.map(|c| c.to_string()),
            snapshot_seq: snapshot.map(|(seq, _)| seq),
            snapshot_bytes: snap_bytes.len() as u64,
            snapshot_ok: snap_bytes.is_empty() || parse_snapshot(&snap_bytes).is_some(),
            index: None,
        })
    }

    /// A cheap summary from the store's bookkeeping (no medium reads
    /// beyond what open already did).
    pub fn status(&self) -> StoreStatus {
        let inner = self.inner.lock();
        StoreStatus {
            records: inner.records,
            log_bytes: inner.valid_len,
            next_seq: inner.next_seq,
            snapshot_seq: inner.snapshot_seq,
        }
    }

    /// Scans the log and truncates any torn or corrupt tail — the
    /// healing [`WalletStore::recover`] performs, without reading the
    /// snapshot or replaying anything. The indexed boot path uses this
    /// so a crash-interrupted append can't linger just because the full
    /// replay was skipped. Returns the scan of the surviving prefix.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn heal_tail(&self) -> Result<ScanOutcome, StoreError> {
        let mut inner = self.inner.lock();
        let bytes = inner.log.read_all()?;
        let outcome = scan_log(&bytes);
        let truncated = (bytes.len() - outcome.valid_len) as u64;
        if outcome.valid_len < LOG_MAGIC.len() {
            inner.log.replace(&LOG_MAGIC)?;
        } else if truncated > 0 {
            inner.log.truncate(outcome.valid_len as u64)?;
            inner.log.sync()?;
        }
        if truncated > 0 {
            drbac_obs::static_counter!("drbac.store.recover.truncated.bytes.total").add(truncated);
        }
        let last_seq = outcome.records.last().map_or(0, |r| r.seq);
        inner.records = outcome.records.len() as u64;
        inner.next_seq = last_seq.max(inner.snapshot_seq.unwrap_or(0)) + 1;
        inner.valid_len = outcome.valid_len.max(LOG_MAGIC.len()) as u64;
        inner.dirty_tail = false;
        inner.unsynced = 0;
        Ok(outcome)
    }

    /// The installed snapshot exactly as it sits on the medium, CRC
    /// checked — or `None` when absent or damaged. Read-only (unlike
    /// [`WalletStore::recover`], which heals torn tails); used by the
    /// index cross-check in `drbac store verify`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn read_snapshot(&self) -> Result<Option<(u64, Vec<u8>)>, StoreError> {
        let inner = self.inner.lock();
        Ok(parse_snapshot(&inner.snap.read_all()?))
    }

    /// Scans the log as found on the medium (for `drbac store inspect`).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn read_log(&self) -> Result<ScanOutcome, StoreError> {
        let inner = self.inner.lock();
        Ok(scan_log(&inner.log.read_all()?))
    }

    /// The raw log bytes (test and benchmark helper).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure.
    pub fn log_bytes(&self) -> Result<Vec<u8>, StoreError> {
        let inner = self.inner.lock();
        Ok(inner.log.read_all()?)
    }

    /// Power-loss simulation: drops unsynced bytes from both media (a
    /// no-op for file-backed stores) and refreshes bookkeeping.
    pub fn lose_unsynced(&self) {
        let mut inner = self.inner.lock();
        inner.log.lose_unsynced();
        inner.snap.lose_unsynced();
        let _ = inner.reload();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::DelegationId;

    fn mark(byte: u8) -> StoreEvent {
        StoreEvent::RevokeMark(DelegationId([byte; 32]))
    }

    fn expire(byte: u8) -> StoreEvent {
        StoreEvent::Expire(DelegationId([byte; 32]))
    }

    #[test]
    fn append_scan_round_trip() {
        let store = WalletStore::in_memory();
        let events = [mark(1), expire(2), mark(3)];
        for (i, e) in events.iter().enumerate() {
            assert_eq!(store.append(e).unwrap(), i as u64 + 1);
        }
        let outcome = scan_log(&store.log_bytes().unwrap());
        assert!(outcome.corruption.is_none());
        assert_eq!(outcome.records.len(), 3);
        for (i, r) in outcome.records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.event, events[i]);
        }
        let status = store.status();
        assert_eq!(status.records, 3);
        assert_eq!(status.next_seq, 4);
        assert_eq!(status.snapshot_seq, None);
    }

    #[test]
    fn torn_tail_is_truncated_and_seq_continues() {
        let store = WalletStore::in_memory();
        for b in 1..=3 {
            store.append(&mark(b)).unwrap();
        }
        let mut bytes = store.log_bytes().unwrap();
        let cut = bytes.len() - 3; // tear the last record
        bytes.truncate(cut);

        let damaged = WalletStore::from_log_bytes(bytes.clone());
        let recovered = damaged.recover().unwrap();
        assert_eq!(recovered.events.len(), 2);
        assert!(recovered.torn_tail);
        assert!(recovered.truncated_bytes > 0);
        assert!(recovered.corruption.is_some());
        // The medium was healed; a fresh verify is clean and the next
        // append picks the next free sequence number.
        assert!(damaged.verify().unwrap().is_clean());
        assert_eq!(damaged.append(&mark(9)).unwrap(), 3);
    }

    #[test]
    fn bit_flip_stops_scan_at_damaged_record() {
        let store = WalletStore::in_memory();
        for b in 1..=3 {
            store.append(&mark(b)).unwrap();
        }
        let clean = store.log_bytes().unwrap();
        let outcome = scan_log(&clean);
        let second_start = outcome.records[0].end;
        let mut bytes = clean.clone();
        bytes[second_start + FRAME_HEADER + 4] ^= 0x40; // flip a payload bit of record 2
        let damaged = scan_log(&bytes);
        assert_eq!(damaged.records.len(), 1);
        assert!(matches!(damaged.corruption, Some(Corruption::BadCrc { .. })));
        assert_eq!(damaged.valid_len, second_start);
    }

    #[test]
    fn snapshot_compacts_log_and_recovery_replays_tail() {
        let store = WalletStore::in_memory();
        for b in 1..=5 {
            store.append(&mark(b)).unwrap();
        }
        let covered = store.install_snapshot(|| b"image-bytes".to_vec()).unwrap();
        assert_eq!(covered, 5);
        assert_eq!(store.status().records, 0, "log compacted");
        store.append(&expire(6)).unwrap();
        store.append(&expire(7)).unwrap();

        let recovered = store.recover().unwrap();
        assert_eq!(recovered.snapshot, Some((5, b"image-bytes".to_vec())));
        assert_eq!(
            recovered.events.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![6, 7]
        );
        assert_eq!(recovered.truncated_bytes, 0);
        assert!(!recovered.torn_tail);
    }

    #[test]
    fn group_commit_power_loss_drops_only_unsynced_records() {
        let store = WalletStore::in_memory_with(StoreConfig { group_commit: 4 });
        for b in 1..=3 {
            store.append(&mark(b)).unwrap();
        }
        store.lose_unsynced(); // 3 appends, no sync yet: all lost
        assert_eq!(store.recover().unwrap().events.len(), 0);

        for b in 1..=5 {
            store.append(&mark(b)).unwrap();
        }
        store.lose_unsynced(); // 4 synced at the group boundary, 1 lost
        let recovered = store.recover().unwrap();
        assert_eq!(recovered.events.len(), 4);

        // An explicit sync makes the tail durable.
        store.append(&mark(9)).unwrap();
        store.sync().unwrap();
        store.lose_unsynced();
        assert_eq!(store.recover().unwrap().events.len(), 5);
    }

    #[test]
    fn garbage_log_recovers_to_empty_and_is_usable() {
        let store = WalletStore::from_log_bytes(b"!!not a log at all!!".to_vec());
        let recovered = store.recover().unwrap();
        assert!(recovered.events.is_empty());
        assert!(recovered.truncated_bytes > 0);
        assert!(!recovered.torn_tail);
        assert_eq!(store.append(&mark(1)).unwrap(), 1);
        assert!(store.verify().unwrap().is_clean());
    }

    #[test]
    fn non_monotonic_sequence_is_corruption() {
        let mut bytes = LOG_MAGIC.to_vec();
        bytes.extend_from_slice(&encode_frame(5, &mark(1)));
        bytes.extend_from_slice(&encode_frame(3, &mark(2)));
        let outcome = scan_log(&bytes);
        assert_eq!(outcome.records.len(), 1);
        assert!(matches!(
            outcome.corruption,
            Some(Corruption::NonMonotonicSeq {
                prev: 5,
                found: 3,
                ..
            })
        ));
    }

    #[test]
    fn oversize_length_prefix_is_corruption_not_allocation() {
        let mut bytes = LOG_MAGIC.to_vec();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.extend_from_slice(&[0u8; 4]);
        let outcome = scan_log(&bytes);
        assert!(outcome.records.is_empty());
        assert!(matches!(
            outcome.corruption,
            Some(Corruption::OversizeRecord { .. })
        ));
    }

    #[test]
    fn verify_is_read_only_on_damaged_logs() {
        let store = WalletStore::in_memory();
        store.append(&mark(1)).unwrap();
        let mut bytes = store.log_bytes().unwrap();
        bytes.extend_from_slice(b"trailing junk");
        let damaged = WalletStore::from_log_bytes(bytes.clone());
        let report = damaged.verify().unwrap();
        assert!(!report.is_clean());
        assert_eq!(report.records, 1);
        assert!(report.trailing_bytes > 0);
        // verify() must not have healed the medium.
        assert_eq!(damaged.log_bytes().unwrap(), bytes);
    }

    #[test]
    fn corrupt_snapshot_is_discarded_and_full_log_replayed() {
        let store = WalletStore::in_memory();
        for b in 1..=4 {
            store.append(&mark(b)).unwrap();
        }
        store.install_snapshot(|| b"good".to_vec()).unwrap();
        store.append(&mark(5)).unwrap();
        // Damage the snapshot in place.
        {
            let inner = store.inner.lock();
            let mut snap = inner.snap.read_all().unwrap();
            let last = snap.len() - 1;
            snap[last] ^= 0xFF;
            inner.snap.replace(&snap).unwrap();
        }
        let recovered = store.recover().unwrap();
        assert!(recovered.snapshot.is_none());
        assert!(recovered.snapshot_discarded);
        // Only the post-compaction log tail survives — snapshot loss
        // after compaction is real data loss, which is why snapshot
        // installation is atomic (write-then-rename) in the first place.
        assert_eq!(
            recovered.events.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            vec![5]
        );
        assert!(!store.verify().unwrap().snapshot_ok);
    }

    #[test]
    fn file_backed_store_survives_reopen() {
        let dir = std::env::temp_dir().join(format!(
            "drbac-store-wal-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = WalletStore::open_dir(&dir).unwrap();
            for b in 1..=3 {
                store.append(&mark(b)).unwrap();
            }
            store.install_snapshot(|| b"disk-image".to_vec()).unwrap();
            store.append(&expire(4)).unwrap();
        }
        {
            let store = WalletStore::open_dir(&dir).unwrap();
            assert_eq!(store.status().next_seq, 5);
            let recovered = store.recover().unwrap();
            assert_eq!(recovered.snapshot, Some((3, b"disk-image".to_vec())));
            assert_eq!(recovered.events.len(), 1);
            // Appending after reopen continues the sequence.
            assert_eq!(store.append(&mark(7)).unwrap(), 5);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_at_every_offset_never_panics() {
        let store = WalletStore::in_memory();
        for b in 1..=4 {
            store.append(&mark(b)).unwrap();
        }
        let bytes = store.log_bytes().unwrap();
        let ends: Vec<usize> = scan_log(&bytes).records.iter().map(|r| r.end).collect();
        for cut in 0..=bytes.len() {
            let outcome = scan_log(&bytes[..cut]);
            let expect = ends.iter().filter(|&&e| e <= cut).count();
            assert_eq!(outcome.records.len(), expect, "cut at {cut}");
            // And the damaged store recovers without panicking.
            let s = WalletStore::from_log_bytes(bytes[..cut].to_vec());
            let r = s.recover().unwrap();
            assert_eq!(r.events.len(), expect, "recover cut at {cut}");
        }
    }
}
