//! Storage backends for the write-ahead log.
//!
//! The store is written against the small [`Medium`] seam so the same
//! WAL logic runs over an in-memory buffer (deterministic simulation,
//! property tests) and over real files (the CLI). The in-memory medium
//! additionally models *power loss*: bytes appended but not yet synced
//! can be dropped by [`Medium::lose_unsynced`], which is how the
//! simulated network makes a crash lose exactly the un-fsynced tail.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

/// A byte store the WAL can append to, truncate, atomically replace,
/// and fsync. Implementations must be safe to share across threads.
pub trait Medium: Send + Sync {
    /// Reads the entire contents.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn read_all(&self) -> io::Result<Vec<u8>>;

    /// Appends `bytes` at the end.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn append(&self, bytes: &[u8]) -> io::Result<()>;

    /// Truncates the contents to `len` bytes.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn truncate(&self, len: u64) -> io::Result<()>;

    /// Atomically replaces the entire contents (used by snapshot
    /// installation and compaction). The replacement is durable once
    /// this returns.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn replace(&self, bytes: &[u8]) -> io::Result<()>;

    /// Makes all appended bytes durable (fsync).
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn sync(&self) -> io::Result<()>;

    /// Power-loss simulation hook: drops any bytes appended since the
    /// last [`Medium::sync`]. A no-op for real files (the kernel owns
    /// that failure mode there).
    fn lose_unsynced(&self) {}

    /// Reads up to `len` bytes starting at `offset`. Returns fewer bytes
    /// (possibly zero) when the range runs past the end of the medium.
    ///
    /// The default implementation slices [`Medium::read_all`]; backends
    /// with random access (files) override it so ordered-table readers
    /// can fetch single blocks without loading the whole file.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn read_at(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let all = self.read_all()?;
        let start = usize::try_from(offset).unwrap_or(usize::MAX).min(all.len());
        let end = start.saturating_add(len).min(all.len());
        Ok(all[start..end].to_vec())
    }

    /// The current length in bytes.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn len(&self) -> io::Result<u64> {
        Ok(self.read_all()?.len() as u64)
    }

    /// True when the medium holds no bytes.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors.
    fn is_empty(&self) -> io::Result<bool> {
        Ok(self.len()? == 0)
    }
}

struct MemInner {
    data: Vec<u8>,
    synced_len: usize,
}

/// An in-memory [`Medium`] that tracks which prefix has been "fsynced",
/// so a simulated crash ([`Medium::lose_unsynced`]) drops exactly the
/// unsynced tail. Clones share contents.
#[derive(Clone)]
pub struct MemMedium {
    inner: Arc<Mutex<MemInner>>,
}

impl Default for MemMedium {
    fn default() -> Self {
        Self::new()
    }
}

impl MemMedium {
    /// An empty in-memory medium.
    pub fn new() -> Self {
        MemMedium {
            inner: Arc::new(Mutex::new(MemInner {
                data: Vec::new(),
                synced_len: 0,
            })),
        }
    }

    /// A medium pre-loaded with `bytes` (treated as already synced) —
    /// the corruption property tests build damaged logs this way.
    pub fn with_contents(bytes: Vec<u8>) -> Self {
        let synced_len = bytes.len();
        MemMedium {
            inner: Arc::new(Mutex::new(MemInner {
                data: bytes,
                synced_len,
            })),
        }
    }
}

impl Medium for MemMedium {
    fn read_all(&self) -> io::Result<Vec<u8>> {
        Ok(self.inner.lock().data.clone())
    }

    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self.inner.lock().data.extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        let mut inner = self.inner.lock();
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < inner.data.len() {
            inner.data.truncate(len);
        }
        inner.synced_len = inner.synced_len.min(len);
        Ok(())
    }

    fn replace(&self, bytes: &[u8]) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.data = bytes.to_vec();
        inner.synced_len = inner.data.len();
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock();
        inner.synced_len = inner.data.len();
        Ok(())
    }

    fn lose_unsynced(&self) {
        let mut inner = self.inner.lock();
        let keep = inner.synced_len;
        inner.data.truncate(keep);
    }

    fn read_at(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let inner = self.inner.lock();
        let start = usize::try_from(offset)
            .unwrap_or(usize::MAX)
            .min(inner.data.len());
        let end = start.saturating_add(len).min(inner.data.len());
        Ok(inner.data[start..end].to_vec())
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.inner.lock().data.len() as u64)
    }
}

/// A file-backed [`Medium`]. Appends go through a persistent handle;
/// [`Medium::replace`] writes a temporary sibling and renames it over
/// the target so readers never observe a half-written file.
pub struct FileMedium {
    path: PathBuf,
    file: Mutex<File>,
}

impl FileMedium {
    /// Opens (creating if absent) the file at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates `open`/`create` failures.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<Self> {
        let path = path.into();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(FileMedium {
            path,
            file: Mutex::new(file),
        })
    }

    /// The backing file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn reopen(&self) -> io::Result<File> {
        OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&self.path)
    }
}

impl Medium for FileMedium {
    fn read_all(&self) -> io::Result<Vec<u8>> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        file.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append(&self, bytes: &[u8]) -> io::Result<()> {
        self.file.lock().write_all(bytes)
    }

    fn truncate(&self, len: u64) -> io::Result<()> {
        self.file.lock().set_len(len)
    }

    fn replace(&self, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path.with_extension("tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // Swap the append handle onto the new inode.
        let mut file = self.file.lock();
        *file = self.reopen()?;
        Ok(())
    }

    fn sync(&self) -> io::Result<()> {
        self.file.lock().sync_all()
    }

    fn read_at(&self, offset: u64, len: usize) -> io::Result<Vec<u8>> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            let n = file.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf.truncate(filled);
        Ok(buf)
    }

    fn len(&self) -> io::Result<u64> {
        Ok(self.file.lock().metadata()?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_medium_power_loss_drops_unsynced_tail() {
        let m = MemMedium::new();
        m.append(b"durable").unwrap();
        m.sync().unwrap();
        m.append(b" volatile").unwrap();
        m.lose_unsynced();
        assert_eq!(m.read_all().unwrap(), b"durable");
        // Truncation below the synced watermark moves it down too.
        m.truncate(3).unwrap();
        m.append(b"x").unwrap();
        m.lose_unsynced();
        assert_eq!(m.read_all().unwrap(), b"dur");
    }

    #[test]
    fn file_medium_round_trips_and_replaces() {
        let dir = std::env::temp_dir().join(format!(
            "drbac-store-medium-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal.log");
        let m = FileMedium::open(&path).unwrap();
        m.append(b"hello ").unwrap();
        m.append(b"world").unwrap();
        m.sync().unwrap();
        assert_eq!(m.read_all().unwrap(), b"hello world");
        m.truncate(5).unwrap();
        assert_eq!(m.read_all().unwrap(), b"hello");
        m.replace(b"fresh").unwrap();
        assert_eq!(m.read_all().unwrap(), b"fresh");
        m.append(b"!").unwrap();
        assert_eq!(m.read_all().unwrap(), b"fresh!");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
