//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum for the write-ahead log and the network codec. Implemented
//! here because the workspace vendors no checksum crate; the tables are
//! built at compile time.
//!
//! Uses slicing-by-8: eight derived tables let the hot loop fold eight
//! input bytes per iteration instead of one, which matters because
//! every network frame CRCs its whole payload on both ends of every
//! request (see `crates/net/src/wire.rs`).

const fn build_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[k][b] = CRC of byte b followed by k zero bytes — the
    // standard slicing construction.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
}

static T: [[u32; 256]; 8] = build_tables();

/// The CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = T[7][(lo & 0xFF) as usize]
            ^ T[6][((lo >> 8) & 0xFF) as usize]
            ^ T[5][((lo >> 16) & 0xFF) as usize]
            ^ T[4][(lo >> 24) as usize]
            ^ T[3][(hi & 0xFF) as usize]
            ^ T[2][((hi >> 8) & 0xFF) as usize]
            ^ T[1][((hi >> 16) & 0xFF) as usize]
            ^ T[0][(hi >> 24) as usize];
    }
    for &byte in chunks.remainder() {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ T[0][idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), clean, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
