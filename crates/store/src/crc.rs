//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the frame
//! checksum for the write-ahead log. Implemented here because the
//! workspace vendors no checksum crate; the table is built at compile
//! time.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// The CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        let idx = ((crc ^ u32::from(byte)) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The standard check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        let mut copy = data.to_vec();
        for byte in 0..copy.len() {
            for bit in 0..8 {
                copy[byte] ^= 1 << bit;
                assert_ne!(crc32(&copy), clean, "flip at {byte}:{bit} undetected");
                copy[byte] ^= 1 << bit;
            }
        }
    }
}
