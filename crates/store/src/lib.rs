#![warn(missing_docs)]

//! Durable wallet storage for dRBAC: a write-ahead log with snapshots,
//! compaction, and crash recovery.
//!
//! The paper's wallets hold long-lived trust state — delegations,
//! support proofs, attribute declarations and, critically, revocation
//! marks — that must survive host churn in a dynamic coalition. This
//! crate provides the durability layer underneath `drbac-wallet`:
//!
//! * [`StoreEvent`] — the journal vocabulary: one record per mutating
//!   wallet operation (publish, declare, support, absorb, revoke,
//!   revocation mark, expiry tombstone), encoded with the workspace's
//!   canonical wire format.
//! * [`WalletStore`] — an append-only log of CRC32-framed records with
//!   group-committed fsync batching, periodic snapshots (reusing the
//!   wallet's `export_bytes` image format), and log compaction that
//!   drops records superseded by a snapshot.
//! * [`Medium`] — the storage backend seam: [`MemMedium`] gives the
//!   deterministic in-memory store used by the simulated network and the
//!   property tests (including power-loss simulation of unsynced
//!   tails); [`FileMedium`] backs the CLI's on-disk store.
//!
//! **Recovery invariant:** recovery = latest valid snapshot + replay of
//! the log tail. A torn or corrupted log tail (detected by the
//! length/CRC framing and the strictly-increasing sequence numbers) is
//! *truncated, never a panic*: the store recovers exactly the longest
//! valid prefix of the log. See `DESIGN.md` §4.4 for the full model.

mod crc;
mod event;
mod medium;
mod wal;

pub use crc::crc32;
pub use event::StoreEvent;
pub use medium::{FileMedium, MemMedium, Medium};
pub use wal::{
    scan_log, Corruption, IndexCheck, Recovered, ScanOutcome, ScannedRecord, StoreConfig,
    StoreError, StoreStatus, VerifyReport, WalletStore, LOG_MAGIC, SNAPSHOT_MAGIC,
};
