//! The journal vocabulary: one [`StoreEvent`] per mutating wallet
//! operation, encoded with the workspace's canonical wire format.

use std::sync::Arc;

use drbac_core::{
    Decode, DecodeError, DelegationId, Encode, Proof, Reader, SignedAttrDeclaration,
    SignedDelegation, SignedRevocation, WalletAddr, Writer,
};

/// A single durable wallet mutation, as journaled by the write-ahead
/// log. Replaying the events of a log (after restoring the latest
/// snapshot) reconstructs the wallet's durable state; every credential
/// is re-verified on replay, so a journal is no more trusted than the
/// wire.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreEvent {
    /// A credential accepted by `Wallet::publish` (its issuer-provided
    /// support proofs are journaled separately as [`StoreEvent::Support`]
    /// records preceding this one).
    Publish(Arc<SignedDelegation>),
    /// A signed attribute declaration accepted by
    /// `Wallet::publish_declaration`.
    Declare(SignedAttrDeclaration),
    /// A support proof registered by `Wallet::provide_support` (or
    /// carried by a publication).
    Support(Proof),
    /// A remote proof absorbed into the local cache by
    /// `Wallet::absorb_proof`, with its source wallet.
    Absorb {
        /// The absorbed proof.
        proof: Proof,
        /// The wallet the proof was fetched from.
        source: WalletAddr,
    },
    /// A verified signed revocation honored by `Wallet::revoke`.
    Revoke(SignedRevocation),
    /// A revocation mark learned without the signed notice in hand
    /// (e.g. from a pushed invalidation already verified upstream).
    RevokeMark(DelegationId),
    /// An expiry tombstone: the delegation was dropped because its
    /// validity window lapsed.
    Expire(DelegationId),
}

const KIND_PUBLISH: u8 = 1;
const KIND_DECLARE: u8 = 2;
const KIND_SUPPORT: u8 = 3;
const KIND_ABSORB: u8 = 4;
const KIND_REVOKE: u8 = 5;
const KIND_REVOKE_MARK: u8 = 6;
const KIND_EXPIRE: u8 = 7;

impl StoreEvent {
    /// The record's kind tag on the wire.
    pub fn kind(&self) -> u8 {
        match self {
            StoreEvent::Publish(_) => KIND_PUBLISH,
            StoreEvent::Declare(_) => KIND_DECLARE,
            StoreEvent::Support(_) => KIND_SUPPORT,
            StoreEvent::Absorb { .. } => KIND_ABSORB,
            StoreEvent::Revoke(_) => KIND_REVOKE,
            StoreEvent::RevokeMark(_) => KIND_REVOKE_MARK,
            StoreEvent::Expire(_) => KIND_EXPIRE,
        }
    }

    /// A short human-readable kind name (for `drbac store inspect`).
    pub fn kind_str(&self) -> &'static str {
        match self {
            StoreEvent::Publish(_) => "publish",
            StoreEvent::Declare(_) => "declare",
            StoreEvent::Support(_) => "support",
            StoreEvent::Absorb { .. } => "absorb",
            StoreEvent::Revoke(_) => "revoke",
            StoreEvent::RevokeMark(_) => "revoke-mark",
            StoreEvent::Expire(_) => "expire",
        }
    }

    /// A one-line description of the record (for `drbac store inspect`).
    pub fn describe(&self) -> String {
        match self {
            StoreEvent::Publish(cert) => format!("publish #{}", cert.id()),
            StoreEvent::Declare(_) => "declare attribute base".to_string(),
            StoreEvent::Support(proof) => {
                format!("support {} => {}", proof.subject(), proof.object())
            }
            StoreEvent::Absorb { proof, source } => format!(
                "absorb {} cert(s) from {source}",
                proof.all_certs().len()
            ),
            StoreEvent::Revoke(rev) => format!("revoke #{}", rev.delegation_id()),
            StoreEvent::RevokeMark(id) => format!("revoke-mark #{id}"),
            StoreEvent::Expire(id) => format!("expire #{id}"),
        }
    }

    /// Appends the record body (everything after the kind byte).
    pub fn encode_body(&self, w: &mut Writer) {
        match self {
            StoreEvent::Publish(cert) => cert.as_ref().encode(w),
            StoreEvent::Declare(decl) => w.bytes(&decl.to_bytes()),
            StoreEvent::Support(proof) => proof.encode(w),
            StoreEvent::Absorb { proof, source } => {
                proof.encode(w);
                w.str(source.as_str());
            }
            StoreEvent::Revoke(rev) => w.bytes(&rev.to_bytes()),
            StoreEvent::RevokeMark(id) | StoreEvent::Expire(id) => w.bytes(&id.0),
        }
    }

    /// Decodes a record body given its kind tag.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for unknown kinds or malformed bodies.
    pub fn decode_body(kind: u8, r: &mut Reader<'_>) -> Result<StoreEvent, DecodeError> {
        fn id(r: &mut Reader<'_>) -> Result<DelegationId, DecodeError> {
            let raw: [u8; 32] = r
                .bytes()?
                .try_into()
                .map_err(|_| DecodeError::UnexpectedEof)?;
            Ok(DelegationId(raw))
        }
        match kind {
            KIND_PUBLISH => Ok(StoreEvent::Publish(Arc::new(SignedDelegation::decode(r)?))),
            KIND_DECLARE => Ok(StoreEvent::Declare(SignedAttrDeclaration::from_bytes(
                r.bytes()?,
            )?)),
            KIND_SUPPORT => Ok(StoreEvent::Support(Proof::decode(r)?)),
            KIND_ABSORB => {
                let proof = Proof::decode(r)?;
                let source = WalletAddr::new(r.str()?);
                Ok(StoreEvent::Absorb { proof, source })
            }
            KIND_REVOKE => Ok(StoreEvent::Revoke(SignedRevocation::from_bytes(
                r.bytes()?,
            )?)),
            KIND_REVOKE_MARK => Ok(StoreEvent::RevokeMark(id(r)?)),
            KIND_EXPIRE => Ok(StoreEvent::Expire(id(r)?)),
            _ => Err(DecodeError::UnexpectedEof),
        }
    }
}
