//! The query planner: routes wallet queries to the delegation index.
//!
//! With an index attached, `query_subject`/`query_object`/`query_direct`
//! hydrate only the graph neighborhood a search can touch (lazy boot),
//! the audit sweep reads the `3/` third-party set instead of iterating
//! every credential, and the expiry sweep reads the `e/` time-ordered
//! range — all prefix or range scans that cost O(answer), not O(wallet).
//!
//! **Planner rules.** A proof search only ever traverses delegation
//! edges outward from its start node — forward (`subject → object`)
//! for subject/direct queries, reverse for object queries — plus, for
//! any third-party edge it crosses, a forward sub-search from that
//! edge's *issuer* (support resolution). The hydration closure follows
//! exactly those moves over the `s/`/`o/` indexes, so a lazily booted
//! wallet answers byte-identically to a fully replayed one: the search
//! itself still runs on the ordinary in-memory graph, it just never
//! loads credentials no search from this start could reach.
//!
//! **Degradation.** Any index failure — I/O, framing, CRC — bumps
//! `drbac.index.degraded.count`, detaches the index, and falls back to
//! graph walks; a lazily booted wallet first restores the full graph
//! from the attached journal. Queries keep being answered; nothing
//! panics.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use drbac_core::{DelegationId, EntityId, Node, SignedDelegation, Timestamp};
use drbac_index::{node_key, DelegationIndex};
use drbac_store::{StoreError, StoreEvent};
use parking_lot::Mutex;

use crate::wallet::Wallet;

/// The wallet's view of an attached [`DelegationIndex`], plus the lazy
/// hydration bookkeeping.
pub(crate) struct IndexHandle {
    pub(crate) index: Arc<DelegationIndex>,
    /// Whether the wallet was lazily booted: the graph holds only the
    /// hydrated neighborhoods and credentials must be pulled from `c/`
    /// rows before a search can see them. `false` once everything is
    /// known to be in memory.
    lazy: AtomicBool,
    /// Node keys whose forward (subject-side) edges are hydrated.
    hydrated_fwd: Mutex<HashSet<Vec<u8>>>,
    /// Node keys whose reverse (object-side) edges are hydrated.
    hydrated_rev: Mutex<HashSet<Vec<u8>>>,
}

impl IndexHandle {
    fn new(index: Arc<DelegationIndex>, lazy: bool) -> Arc<IndexHandle> {
        Arc::new(IndexHandle {
            index,
            lazy: AtomicBool::new(lazy),
            hydrated_fwd: Mutex::new(HashSet::new()),
            hydrated_rev: Mutex::new(HashSet::new()),
        })
    }

    pub(crate) fn is_lazy(&self) -> bool {
        self.lazy.load(Ordering::SeqCst)
    }
}

impl Wallet {
    /// Attaches a delegation index whose contents already mirror this
    /// wallet (e.g. freshly rebuilt from it). Subsequent journaled
    /// mutations are applied to it transactionally, and queries route
    /// through it where an ordered scan beats a graph walk.
    pub fn attach_index(&self, index: Arc<DelegationIndex>) {
        *self.state.index.lock() = Some(IndexHandle::new(index, false));
    }

    /// As [`Wallet::attach_index`] for a lazily booted wallet: the graph
    /// is mostly empty and credentials hydrate from the index on
    /// demand.
    pub(crate) fn attach_index_lazy(&self, index: Arc<DelegationIndex>) {
        *self.state.index.lock() = Some(IndexHandle::new(index, true));
    }

    /// Detaches the index, returning it if one was attached. The wallet
    /// falls back to graph walks; a lazily booted wallet should be
    /// fully recovered first (see [`Wallet::recover_from_store`]).
    pub fn detach_index(&self) -> Option<Arc<DelegationIndex>> {
        self.state
            .index
            .lock()
            .take()
            .map(|h| Arc::clone(&h.index))
    }

    /// The attached delegation index, if any.
    pub fn index(&self) -> Option<Arc<DelegationIndex>> {
        self.state.index.lock().as_ref().map(|h| Arc::clone(&h.index))
    }

    /// Whether an index is attached and serving queries.
    pub fn indexed(&self) -> bool {
        self.state.index.lock().is_some()
    }

    pub(crate) fn index_handle(&self) -> Option<Arc<IndexHandle>> {
        self.state.index.lock().clone()
    }

    /// Applies one journaled event to the attached index (no-op when
    /// none). Called right after the WAL append that assigned `seq`; an
    /// error degrades the planner instead of failing the mutation.
    pub(crate) fn index_apply(&self, seq: u64, event: &StoreEvent) {
        let Some(handle) = self.index_handle() else {
            return;
        };
        if let Err(e) = handle.index.apply(seq, event) {
            self.degrade_index(&format!("apply seq {seq}: {e}"));
        }
    }

    /// Drops the index after a failure: counts, traces, and — for a
    /// lazily booted wallet — restores the full graph from the attached
    /// journal so graph walks see everything. Never panics; a wallet
    /// with a dead index is a slower wallet, not a dead one.
    pub(crate) fn degrade_index(&self, why: &str) {
        let Some(handle) = self.state.index.lock().take() else {
            return;
        };
        drbac_obs::static_counter!("drbac.index.degraded.count").inc();
        drbac_obs::event!(
            "drbac.index.degraded",
            "why" => why.to_string(),
        );
        if handle.is_lazy() {
            let store = self.state.journal.lock().clone();
            if let Some(store) = store {
                if let Err(e) = self.recover_from_store(&store) {
                    drbac_obs::event!(
                        "drbac.index.degraded.recover_failed",
                        "error" => e.to_string(),
                    );
                }
            }
        }
    }

    /// Ensures every credential a forward search from `node` could
    /// traverse is in the graph. No-op unless lazily index-booted.
    pub(crate) fn plan_forward(&self, node: &Node) {
        if let Some(handle) = self.index_handle() {
            if handle.is_lazy() {
                if let Err(e) = self.hydrate(&handle, node, true) {
                    self.degrade_index(&format!("hydrate forward: {e}"));
                }
            }
        }
    }

    /// Ensures every credential a reverse search from `node` could
    /// traverse is in the graph. No-op unless lazily index-booted.
    pub(crate) fn plan_reverse(&self, node: &Node) {
        if let Some(handle) = self.index_handle() {
            if handle.is_lazy() {
                if let Err(e) = self.hydrate(&handle, node, false) {
                    self.degrade_index(&format!("hydrate reverse: {e}"));
                }
            }
        }
    }

    /// The hydration closure: a worklist over `(node, direction)` pairs
    /// following exactly the moves a proof search can make (see the
    /// module docs). Memoized per handle, so steady-state queries pay
    /// one hash lookup.
    fn hydrate(&self, handle: &IndexHandle, start: &Node, forward: bool) -> Result<(), StoreError> {
        let mut queue: VecDeque<(Node, bool)> = VecDeque::new();
        queue.push_back((start.clone(), forward));
        while let Some((node, fwd)) = queue.pop_front() {
            let key = node_key(&node);
            {
                let set = if fwd {
                    &handle.hydrated_fwd
                } else {
                    &handle.hydrated_rev
                };
                if !set.lock().insert(key) {
                    continue;
                }
            }
            let ids = if fwd {
                handle.index.ids_by_subject(&node)?
            } else {
                handle.index.ids_by_object(&node)?
            };
            for id in ids {
                let cert = match self.state.graph.get(id) {
                    Some(cert) => cert,
                    None => match handle.index.cert(id)? {
                        Some(cert) => {
                            drbac_obs::static_counter!("drbac.index.hydrate.cert.count").inc();
                            self.insert_cert(Arc::clone(&cert));
                            cert
                        }
                        None => continue,
                    },
                };
                let d = cert.delegation();
                let far = if fwd { d.object() } else { d.subject() };
                queue.push_back((far.clone(), fwd));
                // Crossing a third-party edge may spawn a forward
                // support search from its issuer.
                if d.required_support().is_some() || d.foreign_clauses().next().is_some() {
                    queue.push_back((Node::Entity(d.issuer()), true));
                }
            }
        }
        Ok(())
    }

    /// Fully hydrates a lazily booted wallet from the index. Called
    /// before whole-wallet views — listings, snapshot export — whose
    /// answers must cover every credential, not just the hydrated
    /// neighborhoods. A no-op unless the wallet is lazily index-booted;
    /// afterwards the lazy bookkeeping is retired (the index keeps
    /// serving O(answer) scans).
    pub fn hydrate_all(&self) {
        let Some(handle) = self.index_handle() else {
            return;
        };
        if !handle.is_lazy() {
            return;
        }
        let result = handle.index.for_each_cert(&mut |cert| {
            if self.state.graph.get(cert.id()).is_none() {
                self.insert_cert(cert);
            }
        });
        match result {
            Ok(()) => {
                handle.lazy.store(false, Ordering::SeqCst);
                drbac_obs::static_counter!("drbac.index.hydrate.full.count").inc();
            }
            Err(e) => self.degrade_index(&format!("full hydration: {e}")),
        }
    }

    /// Issuer query: every live (unexpired, unrevoked) delegation issued
    /// by `issuer`, in id order. With an index attached this is one
    /// `i/` prefix scan; otherwise a full graph walk.
    pub fn query_issuer(&self, issuer: EntityId) -> Vec<Arc<SignedDelegation>> {
        let now = self.now();
        let mut out: Vec<Arc<SignedDelegation>> = Vec::new();
        if let Some(handle) = self.index_handle() {
            let fetched: Result<(), StoreError> = (|| {
                for id in handle.index.ids_by_issuer(issuer)? {
                    let cert = match self.state.graph.get(id) {
                        Some(cert) => cert,
                        None => match handle.index.cert(id)? {
                            Some(cert) => cert,
                            None => continue,
                        },
                    };
                    out.push(cert);
                }
                Ok(())
            })();
            match fetched {
                Ok(()) => {
                    out.retain(|c| {
                        !self.state.graph.is_revoked(c.id())
                            && !c.delegation().is_expired(now)
                    });
                    return out;
                }
                Err(e) => {
                    self.degrade_index(&format!("issuer scan: {e}"));
                    out.clear();
                }
            }
        }
        self.state.graph.for_each_cert(&mut |cert| {
            if cert.delegation().issuer() == issuer {
                out.push(Arc::clone(cert));
            }
        });
        out.retain(|c| {
            !self.state.graph.is_revoked(c.id()) && !c.delegation().is_expired(now)
        });
        out.sort_by_key(|c| c.id());
        out
    }

    /// The audit sweep's candidate set via the `3/` index: every
    /// credential that needs issuer support, in id order. `None` when no
    /// index is attached (callers fall back to the graph walk).
    pub(crate) fn planned_audit_certs(&self) -> Option<Vec<Arc<SignedDelegation>>> {
        let handle = self.index_handle()?;
        let fetched: Result<Vec<Arc<SignedDelegation>>, StoreError> = (|| {
            let mut out = Vec::new();
            for id in handle.index.third_party_ids()? {
                let cert = match self.state.graph.get(id) {
                    Some(cert) => cert,
                    None => match handle.index.cert(id)? {
                        Some(cert) => {
                            // The audit validates support proofs against
                            // the live graph; make sure the credential
                            // is in it like every hydrated one.
                            self.insert_cert(Arc::clone(&cert));
                            cert
                        }
                        None => continue,
                    },
                };
                out.push(cert);
            }
            Ok(out)
        })();
        match fetched {
            Ok(certs) => Some(certs),
            Err(e) => {
                self.degrade_index(&format!("audit scan: {e}"));
                None
            }
        }
    }

    /// The expiry sweep's candidate ids via the `e/` range scan, with
    /// the `drbac.wallet.expiry.scanned.count` counter recording how
    /// many index entries were touched — O(expired), not O(wallet).
    /// `None` when no index is attached.
    pub(crate) fn planned_expired(&self, now: Timestamp) -> Option<Vec<DelegationId>> {
        let handle = self.index_handle()?;
        match handle.index.expired_ids(now) {
            Ok((ids, scanned)) => {
                drbac_obs::static_counter!("drbac.wallet.expiry.scanned.count").add(scanned);
                Some(ids)
            }
            Err(e) => {
                self.degrade_index(&format!("expiry scan: {e}"));
                None
            }
        }
    }

    /// The expiry sweep's no-index fallback: pop the min-heap while the
    /// top entry's expiry has lapsed. Stale entries (credential gone or
    /// re-inserted) are discarded on pop; every pop counts toward
    /// `drbac.wallet.expiry.scanned.count`, keeping the sweep
    /// O(expired + stale) instead of O(wallet).
    pub(crate) fn heap_expired(&self, now: Timestamp) -> Vec<DelegationId> {
        let mut heap = self.state.expiry_heap.lock();
        let mut out = Vec::new();
        let mut seen: HashSet<DelegationId> = HashSet::new();
        let mut scanned = 0u64;
        while let Some(std::cmp::Reverse((at, _))) = heap.peek() {
            if now.0 <= at.0 {
                break;
            }
            let std::cmp::Reverse((_, id)) = heap.pop().expect("peeked");
            scanned += 1;
            if !seen.insert(id) {
                continue;
            }
            if self
                .state
                .graph
                .get(id)
                .is_some_and(|c| c.delegation().is_expired(now))
            {
                out.push(id);
            }
        }
        drbac_obs::static_counter!("drbac.wallet.expiry.scanned.count").add(scanned);
        out
    }

    /// Rebuilds `index` from this wallet's full in-memory contents,
    /// bulk-loading the backend; `watermark` must be the journal
    /// sequence the wallet is current to (the store's `next_seq - 1`).
    /// This is the wallet.bin → store → indexed-store migration step
    /// and the repair path for a corrupt index.
    ///
    /// # Errors
    ///
    /// [`StoreError`] if the index backend fails.
    pub fn rebuild_index_into(
        &self,
        index: &DelegationIndex,
        watermark: u64,
    ) -> Result<(), StoreError> {
        let mut certs: Vec<Arc<SignedDelegation>> = Vec::new();
        self.state
            .graph
            .for_each_cert(&mut |cert| certs.push(Arc::clone(cert)));
        let supports = self.state.graph.all_supports();
        let declarations = self.state.signed_declarations.lock().clone();
        let revoked: Vec<DelegationId> = self.state.graph.revoked_ids().into_iter().collect();
        let absorbed: Vec<_> = self
            .state
            .cache_meta
            .lock()
            .iter()
            .map(|(id, entry)| (*id, entry.source.clone()))
            .collect();
        index.rebuild(
            &drbac_index::RebuildSource {
                certs: &certs,
                supports: &supports,
                declarations: &declarations,
                revoked: &revoked,
                absorbed: &absorbed,
            },
            watermark,
        )
    }
}
