//! Delegation subscription events.

use std::fmt;

use drbac_core::DelegationId;
use serde::{Deserialize, Serialize};

/// Why a delegation stopped being usable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InvalidationReason {
    /// The issuer revoked it.
    Revoked,
    /// Its expiration date passed.
    Expired,
}

impl fmt::Display for InvalidationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InvalidationReason::Revoked => "revoked",
            InvalidationReason::Expired => "expired",
        })
    }
}

/// A status-change event pushed to delegation subscribers.
///
/// dRBAC's subscriptions "notify subscribers if the corresponding
/// delegation is invalidated" (§4.2.2) using an event push model — no
/// polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DelegationEvent {
    /// The delegation whose status changed.
    pub delegation: DelegationId,
    /// What happened to it.
    pub reason: InvalidationReason,
}

impl fmt::Display for DelegationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delegation #{} {}", self.delegation, self.reason)
    }
}

/// Handle identifying one registered subscription, for unsubscribe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub(crate) u64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_display() {
        let e = DelegationEvent {
            delegation: DelegationId([0xab; 32]),
            reason: InvalidationReason::Revoked,
        };
        let s = e.to_string();
        assert!(s.contains("revoked"));
        assert!(s.contains("abababab"));
    }
}
