//! The revocation-coherent proof cache.
//!
//! [`ProofCache`] memoizes direct-query answers keyed by
//! `(subject, object, constraint-set)`. Each positive entry carries the
//! full set of delegation ids its proof depends on — recursively,
//! including every credential inside support proofs — plus the earliest
//! expiry among them. The invariant the wallet maintains through it:
//!
//! > **A cached proof can never outlive any edge in its DAG.** Whenever a
//! > delegation is revoked or expires (locally or via a pushed remote
//! > invalidation), every cached answer depending on it is dropped before
//! > the revocation becomes observable; time-based expiry is checked on
//! > every read against the entry's minimum expiry.
//!
//! Negative answers carry no dependencies: revocation and expiry only
//! *remove* edges, and search answers are monotone in the edge set, so a
//! negative answer can only be flipped by an *addition* (publish, absorb,
//! provide-support, import). Those paths call
//! [`ProofCache::invalidate_negatives`]; declaration changes can flip
//! either direction (they re-base constraint evaluation) and clear the
//! whole cache.
//!
//! Concurrency: a lost-invalidation race exists between a prover that
//! searched stale data and an invalidator whose sweep ran before the
//! prover inserted. The cache closes it with an epoch counter —
//! invalidators bump the epoch *before* sweeping, and
//! [`ProofCache::insert`] refuses to store an answer computed against an
//! older epoch.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use drbac_core::{AttrConstraint, AttrRef, AttrSummary, DelegationId, Node, Proof, Timestamp};
use parking_lot::Mutex;

/// Cache key for a direct query: endpoints plus constraints (operand
/// bit-patterns keep `f64` hashable without loss).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct QueryKey {
    subject: Node,
    object: Node,
    constraints: Vec<(AttrRef, u64)>,
}

impl QueryKey {
    pub(crate) fn new(subject: &Node, object: &Node, constraints: &[AttrConstraint]) -> Self {
        QueryKey {
            subject: subject.clone(),
            object: object.clone(),
            constraints: constraints
                .iter()
                .map(|c| (c.attr.clone(), c.at_least.to_bits()))
                .collect(),
        }
    }
}

/// A memoized direct-query answer. `found: None` caches a negative.
#[derive(Debug, Clone)]
struct CacheSlot {
    found: Option<(Proof, AttrSummary)>,
    /// Every delegation id the proof depends on (recursive, including
    /// support proofs). Empty for negative answers.
    deps: BTreeSet<DelegationId>,
    /// Earliest expiry among the proof's credentials; `None` when none
    /// of them expire.
    min_expiry: Option<Timestamp>,
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<QueryKey, CacheSlot>,
    /// Reverse index: delegation id → keys of entries depending on it.
    rev: HashMap<DelegationId, HashSet<QueryKey>>,
}

/// See the module docs.
#[derive(Debug, Default)]
pub(crate) struct ProofCache {
    inner: Mutex<CacheInner>,
    /// Bumped by every invalidation *before* the sweep; inserts are
    /// rejected if the epoch moved since the search began.
    epoch: AtomicU64,
}

impl ProofCache {
    /// The current invalidation epoch. Capture before searching; pass to
    /// [`ProofCache::insert`].
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Looks up a cached answer valid at `now`. Entries past their
    /// minimum expiry are dropped on the way out (a proof must not
    /// outlive its earliest-expiring edge).
    pub(crate) fn get(&self, key: &QueryKey, now: Timestamp) -> Option<Option<(Proof, AttrSummary)>> {
        let mut inner = self.inner.lock();
        let expired = match inner.entries.get(key) {
            None => return None,
            Some(slot) => slot.min_expiry.is_some_and(|e| now > e),
        };
        if expired {
            let slot = inner.entries.remove(key).expect("checked above");
            deregister(&mut inner, key, &slot);
            return None;
        }
        inner.entries.get(key).map(|slot| slot.found.clone())
    }

    /// Stores an answer computed while the cache was at `epoch_at_search`.
    /// If any invalidation ran in between, the answer may reflect edges
    /// that no longer exist — it is discarded instead of stored.
    pub(crate) fn insert(
        &self,
        key: QueryKey,
        found: Option<(Proof, AttrSummary)>,
        epoch_at_search: u64,
    ) {
        let mut inner = self.inner.lock();
        if self.epoch.load(Ordering::SeqCst) != epoch_at_search {
            drbac_obs::static_counter!("drbac.graph.proof_cache.race_skip.count").inc();
            return;
        }
        let (deps, min_expiry) = match &found {
            None => (BTreeSet::new(), None),
            Some((proof, _)) => {
                let deps = proof.delegation_ids();
                let min_expiry = proof
                    .all_certs()
                    .iter()
                    .filter_map(|c| c.delegation().expires())
                    .min();
                (deps, min_expiry)
            }
        };
        if let Some(old) = inner.entries.remove(&key) {
            deregister(&mut inner, &key, &old);
        }
        for id in &deps {
            inner.rev.entry(*id).or_default().insert(key.clone());
        }
        inner.entries.insert(
            key,
            CacheSlot {
                found,
                deps,
                min_expiry,
            },
        );
    }

    /// Drops every entry whose proof depends on `id` (revoked or
    /// expired). The epoch is bumped *before* the sweep so concurrent
    /// in-flight searches cannot re-install a stale answer afterwards.
    pub(crate) fn invalidate_dep(&self, id: DelegationId) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        let keys = match inner.rev.remove(&id) {
            Some(keys) => keys,
            None => return,
        };
        let mut dropped = 0u64;
        for key in keys {
            // The reverse index can be stale if the entry was replaced by
            // a proof no longer depending on `id`; verify before removal.
            let depends = inner
                .entries
                .get(&key)
                .is_some_and(|slot| slot.deps.contains(&id));
            if !depends {
                continue;
            }
            if let Some(slot) = inner.entries.remove(&key) {
                let mut remaining = slot;
                remaining.deps.remove(&id);
                deregister(&mut inner, &key, &remaining);
                dropped += 1;
            }
        }
        if dropped > 0 {
            drbac_obs::static_counter!("drbac.graph.proof_cache.invalidated.count").add(dropped);
        }
    }

    /// Drops every cached negative answer. Called on any path that adds
    /// edges (publish, absorb, provide-support, import): additions can
    /// flip a negative to a positive but never invalidate a cached proof.
    pub(crate) fn invalidate_negatives(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        inner.entries.retain(|_, slot| slot.found.is_some());
    }

    /// Drops everything (declaration changes, imports, wipes, toggles).
    pub(crate) fn clear(&self) {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.rev.clear();
    }

    /// Number of cached answers (diagnostics).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }
}

/// Removes `key` from the reverse index of every dep in `slot`.
fn deregister(inner: &mut CacheInner, key: &QueryKey, slot: &CacheSlot) {
    for id in &slot.deps {
        if let Some(keys) = inner.rev.get_mut(id) {
            keys.remove(key);
            if keys.is_empty() {
                inner.rev.remove(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, ProofStep};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn proof_with_expiry(expiry: Option<Timestamp>) -> (Proof, DelegationId) {
        let mut rng = StdRng::seed_from_u64(17);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let mut b = a.delegate(Node::entity(&m), Node::role(a.role("r")));
        if let Some(e) = expiry {
            b = b.expires(e);
        }
        let cert = b.sign(&a).unwrap();
        let id = cert.id();
        (Proof::from_steps(vec![ProofStep::new(cert)]).unwrap(), id)
    }

    fn key(n: u8) -> QueryKey {
        let mut rng = StdRng::seed_from_u64(n as u64);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("K", g, &mut rng);
        QueryKey::new(
            &Node::entity(&a),
            &Node::role(a.role("r")),
            &[],
        )
    }

    #[test]
    fn positive_entries_die_with_their_dependency() {
        let cache = ProofCache::default();
        let (proof, id) = proof_with_expiry(None);
        let epoch = cache.epoch();
        cache.insert(key(1), Some((proof, AttrSummary::default())), epoch);
        assert!(cache.get(&key(1), Timestamp(0)).is_some());
        cache.invalidate_dep(id);
        assert!(cache.get(&key(1), Timestamp(0)).is_none());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn expiry_is_enforced_on_read() {
        let cache = ProofCache::default();
        let (proof, _) = proof_with_expiry(Some(Timestamp(5)));
        cache.insert(key(1), Some((proof, AttrSummary::default())), cache.epoch());
        assert!(cache.get(&key(1), Timestamp(5)).is_some(), "valid at expiry");
        assert!(cache.get(&key(1), Timestamp(6)).is_none(), "dead after");
        assert_eq!(cache.len(), 0, "expired entry dropped");
    }

    #[test]
    fn negatives_survive_revocation_but_not_additions() {
        let cache = ProofCache::default();
        let (_, id) = proof_with_expiry(None);
        cache.insert(key(1), None, cache.epoch());
        cache.invalidate_dep(id);
        assert!(
            matches!(cache.get(&key(1), Timestamp(0)), Some(None)),
            "revocation cannot flip a negative"
        );
        cache.invalidate_negatives();
        assert!(cache.get(&key(1), Timestamp(0)).is_none());
    }

    #[test]
    fn stale_epoch_insert_is_discarded() {
        let cache = ProofCache::default();
        let (proof, id) = proof_with_expiry(None);
        let epoch = cache.epoch();
        // An invalidation lands between search and insert.
        cache.invalidate_dep(id);
        cache.insert(key(1), Some((proof, AttrSummary::default())), epoch);
        assert!(
            cache.get(&key(1), Timestamp(0)).is_none(),
            "stale answer must not be cached"
        );
    }
}
