//! Proof monitors: continuous validity tracking for returned proofs.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use drbac_core::{AttrSummary, DelegationId, Proof};
use parking_lot::Mutex;

use crate::events::{DelegationEvent, InvalidationReason};

/// Current status of a monitored proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorStatus {
    /// Every delegation in the proof is still valid.
    Valid,
    /// A delegation in the proof was invalidated.
    Invalidated {
        /// The delegation that failed.
        delegation: DelegationId,
        /// Why it failed.
        reason: InvalidationReason,
    },
}

impl MonitorStatus {
    /// `true` while the proof remains valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, MonitorStatus::Valid)
    }
}

impl fmt::Display for MonitorStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorStatus::Valid => f.write_str("valid"),
            MonitorStatus::Invalidated { delegation, reason } => {
                write!(f, "invalidated: #{delegation} {reason}")
            }
        }
    }
}

type Callback = Box<dyn Fn(&MonitorStatus) + Send + Sync>;

pub(crate) struct MonitorCore {
    proof: Proof,
    summary: AttrSummary,
    watched: BTreeSet<DelegationId>,
    status: Mutex<MonitorStatus>,
    callbacks: Mutex<Vec<Callback>>,
}

impl MonitorCore {
    pub(crate) fn new(proof: Proof, summary: AttrSummary) -> Arc<Self> {
        let watched = proof.delegation_ids();
        Arc::new(MonitorCore {
            proof,
            summary,
            watched,
            status: Mutex::new(MonitorStatus::Valid),
            callbacks: Mutex::new(Vec::new()),
        })
    }

    pub(crate) fn watched(&self) -> &BTreeSet<DelegationId> {
        &self.watched
    }

    /// Delivers an event; flips status and fires callbacks exactly once.
    pub(crate) fn deliver(&self, event: DelegationEvent) {
        if !self.watched.contains(&event.delegation) {
            return;
        }
        let new_status = {
            let mut status = self.status.lock();
            if !status.is_valid() {
                return; // already invalidated; first cause wins
            }
            *status = MonitorStatus::Invalidated {
                delegation: event.delegation,
                reason: event.reason,
            };
            status.clone()
        };
        drbac_obs::static_counter!("drbac.wallet.monitor.invalidated.count").inc();
        drbac_obs::event!(
            "drbac.wallet.monitor.invalidated",
            "reason" => event.reason.to_string(),
        );
        for cb in self.callbacks.lock().iter() {
            cb(&new_status);
        }
    }
}

impl fmt::Debug for MonitorCore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorCore")
            .field("proof", &self.proof.to_string())
            .field("status", &*self.status.lock())
            .finish()
    }
}

/// A proof wrapped with continuous monitoring (paper §4.2.2).
///
/// "What [a query] returns is a proof wrapped in a proof monitor object.
/// Proof monitors register delegation subscriptions ... for each
/// delegation in the proof" and notify the requester through a callback
/// when any of them is invalidated.
///
/// Cheap to clone; clones share status and callbacks.
#[derive(Clone, Debug)]
pub struct ProofMonitor {
    pub(crate) core: Arc<MonitorCore>,
}

impl ProofMonitor {
    /// The monitored proof.
    pub fn proof(&self) -> &Proof {
        &self.core.proof
    }

    /// Effective attribute values computed when the proof was validated.
    pub fn summary(&self) -> &AttrSummary {
        &self.core.summary
    }

    /// Current status.
    pub fn status(&self) -> MonitorStatus {
        self.core.status.lock().clone()
    }

    /// `true` while every delegation in the proof remains valid.
    pub fn is_valid(&self) -> bool {
        self.status().is_valid()
    }

    /// Registers a callback fired (once) when the proof is invalidated.
    /// If the proof is already invalid the callback fires immediately.
    pub fn on_invalidate(&self, cb: impl Fn(&MonitorStatus) + Send + Sync + 'static) {
        let status = self.status();
        if status.is_valid() {
            self.core.callbacks.lock().push(Box::new(cb));
        } else {
            cb(&status);
        }
    }

    /// The delegation ids this monitor subscribes to.
    pub fn watched(&self) -> &BTreeSet<DelegationId> {
        self.core.watched()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, Node, Proof, ProofStep};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn sample_proof() -> Proof {
        let mut rng = StdRng::seed_from_u64(41);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let cert = a
            .delegate(Node::entity(&m), Node::role(a.role("r")))
            .sign(&a)
            .unwrap();
        Proof::from_steps(vec![ProofStep::new(cert)]).unwrap()
    }

    #[test]
    fn deliver_flips_status_once_and_fires_callbacks() {
        let proof = sample_proof();
        let id = *proof.delegation_ids().iter().next().unwrap();
        let core = MonitorCore::new(proof, AttrSummary::default());
        let monitor = ProofMonitor {
            core: Arc::clone(&core),
        };

        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        monitor.on_invalidate(move |status| {
            assert!(!status.is_valid());
            fired2.fetch_add(1, Ordering::SeqCst);
        });

        assert!(monitor.is_valid());
        core.deliver(DelegationEvent {
            delegation: id,
            reason: InvalidationReason::Revoked,
        });
        assert!(!monitor.is_valid());
        assert_eq!(fired.load(Ordering::SeqCst), 1);

        // Second delivery is a no-op (first cause wins).
        core.deliver(DelegationEvent {
            delegation: id,
            reason: InvalidationReason::Expired,
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        match monitor.status() {
            MonitorStatus::Invalidated { reason, .. } => {
                assert_eq!(reason, InvalidationReason::Revoked)
            }
            MonitorStatus::Valid => panic!("should be invalidated"),
        }
    }

    #[test]
    fn events_for_unwatched_delegations_ignored() {
        let core = MonitorCore::new(sample_proof(), AttrSummary::default());
        core.deliver(DelegationEvent {
            delegation: DelegationId([9; 32]),
            reason: InvalidationReason::Revoked,
        });
        assert!(core.status.lock().is_valid());
    }

    #[test]
    fn late_callback_on_already_invalid_fires_immediately() {
        let proof = sample_proof();
        let id = *proof.delegation_ids().iter().next().unwrap();
        let core = MonitorCore::new(proof, AttrSummary::default());
        let monitor = ProofMonitor {
            core: Arc::clone(&core),
        };
        core.deliver(DelegationEvent {
            delegation: id,
            reason: InvalidationReason::Expired,
        });

        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        monitor.on_invalidate(move |_| {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn clones_share_status() {
        let proof = sample_proof();
        let id = *proof.delegation_ids().iter().next().unwrap();
        let core = MonitorCore::new(proof, AttrSummary::default());
        let m1 = ProofMonitor {
            core: Arc::clone(&core),
        };
        let m2 = m1.clone();
        core.deliver(DelegationEvent {
            delegation: id,
            reason: InvalidationReason::Revoked,
        });
        assert!(!m1.is_valid());
        assert!(!m2.is_valid());
    }
}
