#![warn(missing_docs)]

//! dRBAC wallets: distributed credential repositories (paper §4.1).
//!
//! "Similar to a real wallet containing identification cards, a dRBAC
//! wallet stores a collection of delegations." A [`Wallet`] supports the
//! paper's three operations:
//!
//! * **Publication** — [`Wallet::publish`] validates a credential and, for
//!   third-party delegations, requires the issuer-provided support proofs
//!   (freeing the wallet "from having to conduct recursive searches");
//! * **Authorization queries** — [`Wallet::query_direct`] (wrapped in a
//!   [`ProofMonitor`]), [`Wallet::query_subject`], and
//!   [`Wallet::query_object`], all accepting valued-attribute constraints;
//! * **Proof monitoring** — [`ProofMonitor`] registers *delegation
//!   subscriptions* ([`Wallet::subscribe`]) on every credential in a proof
//!   and fires callbacks the moment any of them is revoked or expires.
//!
//! Wallets also serve as *validated caches* for remote credentials
//! ([`Wallet::absorb_proof`]) with TTL-based coherence metadata; the
//! inter-wallet protocol that keeps caches coherent lives in `drbac-net`.

mod cache;
mod durable;
mod events;
mod monitor;
mod planner;
mod wallet;

pub use durable::{DurableWallet, IndexedBootReport};
pub use events::{DelegationEvent, InvalidationReason, SubscriptionId};
pub use monitor::{MonitorStatus, ProofMonitor};
pub use wallet::{CacheEntry, ImportReport, RecoveryReport, Wallet, WalletError};
