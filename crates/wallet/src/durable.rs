//! A wallet bound to a write-ahead store.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use drbac_core::{Node, SimClock, Ticks, WalletAddr};
use drbac_index::DelegationIndex;
use drbac_store::{StoreEvent, WalletStore};

use crate::wallet::{CacheEntry, RecoveryReport, Wallet, WalletError};

/// A [`Wallet`] permanently bound to a [`WalletStore`]: opening
/// recovers whatever the store holds (latest snapshot + log-tail
/// replay) and attaches the journal, so every subsequent mutating call
/// is logged before it is applied. Dereferences to [`Wallet`] for the
/// whole query/publish/monitor API.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use drbac_core::{LocalEntity, Node, SimClock};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_store::WalletStore;
/// use drbac_wallet::DurableWallet;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let org = LocalEntity::generate("Org", SchnorrGroup::test_256(), &mut rng);
/// let store = Arc::new(WalletStore::in_memory());
///
/// let (wallet, _) = DurableWallet::open("wallet.org", SimClock::new(), Arc::clone(&store))?;
/// wallet.publish(
///     org.delegate(Node::entity(&org), Node::role(org.role("member"))).sign(&org)?,
///     vec![],
/// )?;
/// drop(wallet); // "crash"
///
/// let (reborn, report) = DurableWallet::open("wallet.org", SimClock::new(), store)?;
/// assert_eq!(report.replayed, 1);
/// assert_eq!(reborn.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DurableWallet {
    wallet: Wallet,
    store: Arc<WalletStore>,
}

impl DurableWallet {
    /// Opens a durable wallet at `addr` over `store`: recovers the
    /// store's contents into a fresh wallet, then attaches the journal.
    ///
    /// # Errors
    ///
    /// [`WalletError::Storage`] if the store's medium fails (corrupt
    /// contents are recovered-around, not errors).
    pub fn open(
        addr: impl Into<WalletAddr>,
        clock: SimClock,
        store: Arc<WalletStore>,
    ) -> Result<(Self, RecoveryReport), WalletError> {
        let wallet = Wallet::new(addr, clock);
        let report = wallet.recover_from_store(&store)?;
        wallet.attach_journal(Arc::clone(&store));
        Ok((DurableWallet { wallet, store }, report))
    }

    /// Opens a durable wallet with a delegation index, skipping the full
    /// replay when the index is current: boot becomes *snapshot header +
    /// index open + log-tail catch-up*. The graph starts out lazily
    /// hydrated — queries pull only the neighborhoods they can reach
    /// from the index's `c/` rows — so a million-credential wallet is
    /// answering in milliseconds instead of re-verifying its history.
    ///
    /// The index is current when its watermark `w` satisfies
    /// `snapshot_seq ≤ w ≤ last logged seq`: everything at or below `w`
    /// is served from the index, and the log records above `w` (the
    /// tail) are replayed through the ordinary verify path. Otherwise —
    /// missing watermark, index behind a compaction, or ahead of a
    /// truncated log — the wallet falls back to a full
    /// [`DurableWallet::open`] replay and rebuilds the index from the
    /// recovered contents, so a stale or corrupt index costs time, not
    /// correctness.
    ///
    /// # Errors
    ///
    /// [`WalletError::Storage`] if the store's medium fails. Index
    /// failures are never errors: they degrade to the rebuild path.
    pub fn open_indexed(
        addr: impl Into<WalletAddr> + Clone,
        clock: SimClock,
        store: Arc<WalletStore>,
        index: Arc<DelegationIndex>,
    ) -> Result<(Self, IndexedBootReport), WalletError> {
        let timer = drbac_obs::static_histogram!("drbac.wallet.boot.indexed.ns").start_timer();
        let wallet = Wallet::new(addr.clone(), clock.clone());
        match Self::seed_from_index(&wallet, &store, &index) {
            Ok(report) => {
                drop(timer);
                wallet.attach_journal(Arc::clone(&store));
                Ok((DurableWallet { wallet, store }, report))
            }
            Err(why) => {
                drop(timer);
                drbac_obs::static_counter!("drbac.index.degraded.count").inc();
                drbac_obs::event!(
                    "drbac.index.boot.fallback",
                    "why" => why,
                );
                // Full replay into a *fresh* wallet (the aborted seed may
                // have left partial state), then rebuild the index from
                // the recovered truth.
                let (durable, recovery) = Self::open(addr, clock, store)?;
                let watermark = durable.store.status().next_seq.saturating_sub(1);
                match durable.wallet.rebuild_index_into(&index, watermark) {
                    Ok(()) => durable.wallet.attach_index(index),
                    Err(e) => {
                        drbac_obs::event!(
                            "drbac.index.rebuild.failed",
                            "error" => e.to_string(),
                        );
                    }
                }
                let report = IndexedBootReport {
                    lazy: false,
                    watermark: durable.wallet.index().map(|_| watermark).unwrap_or(0),
                    caught_up: recovery.replayed,
                    recovery: Some(recovery),
                };
                Ok((durable, report))
            }
        }
    }

    /// The fast path of [`DurableWallet::open_indexed`]: seeds the
    /// wallet's eager state (declarations, support proofs, revocation
    /// marks, cache coherence metadata) from the index, attaches it
    /// lazily, and replays the log tail above the watermark. Any index
    /// trouble returns `Err(reason)` and the caller falls back to a
    /// full replay.
    fn seed_from_index(
        wallet: &Wallet,
        store: &Arc<WalletStore>,
        index: &Arc<DelegationIndex>,
    ) -> Result<IndexedBootReport, String> {
        let status = store.status();
        let snap_seq = status.snapshot_seq.unwrap_or(0);
        // Heal while scanning: a torn final append must be truncated
        // here exactly as a full recover() would, since this boot path
        // otherwise never touches the damaged bytes.
        let tail = store.heal_tail().map_err(|e| format!("log scan: {e}"))?;
        let last_seq = tail.records.last().map_or(0, |r| r.seq).max(snap_seq);

        let watermark = match index.watermark() {
            Some(w) => w,
            None if last_seq == 0 => {
                // Fresh store, fresh index: nothing to seed or catch up.
                wallet.attach_index(Arc::clone(index));
                return Ok(IndexedBootReport {
                    lazy: false,
                    watermark: 0,
                    caught_up: 0,
                    recovery: None,
                });
            }
            None => return Err("index has no watermark for a non-empty store".into()),
        };
        if watermark < snap_seq {
            return Err(format!(
                "index watermark {watermark} is behind the snapshot ({snap_seq}); \
                 the missing records were compacted away"
            ));
        }
        if watermark > last_seq {
            return Err(format!(
                "index watermark {watermark} is ahead of the log tail ({last_seq})"
            ));
        }

        // Eager state. Declarations and support proofs feed every
        // validation context; marks make `is_revoked` answer correctly
        // before the certificate itself is hydrated; absorbed sources
        // restore cache-coherence monitoring.
        let err = |e: drbac_store::StoreError| format!("index read: {e}");
        for decl in index.declarations().map_err(err)? {
            wallet.state.graph.insert_declaration(decl.declaration());
            let mut signed = wallet.state.signed_declarations.lock();
            if !signed.contains(&decl) {
                signed.push(decl);
            }
        }
        for proof in index.supports().map_err(err)? {
            for cert in proof.all_certs() {
                wallet.insert_cert(cert);
            }
            wallet.state.graph.provide_support(proof);
        }
        for (id, mark) in index.marks().map_err(err)? {
            if mark == drbac_index::Mark::Revoked {
                wallet.state.graph.revoke(id);
            }
        }
        let now = wallet.now();
        for (id, source) in index.absorbed().map_err(err)? {
            let ttl = match index.cert(id).map_err(err)? {
                Some(cert) => cert
                    .delegation()
                    .subject_tag()
                    .or(cert.delegation().object_tag())
                    .map(|t| t.ttl())
                    .unwrap_or(Ticks(0)),
                None => Ticks(0),
            };
            wallet
                .state
                .cache_meta
                .lock()
                .entry(id)
                .or_insert(CacheEntry {
                    source,
                    fetched_at: now,
                    ttl,
                });
        }

        wallet.attach_index_lazy(Arc::clone(index));

        // Tail catch-up: records above the watermark replay through the
        // ordinary verify path (the journal is still detached, so
        // nothing is double-logged) and are applied to the index at
        // their original sequence numbers.
        let mut caught_up = 0usize;
        for record in tail.records {
            if record.seq <= watermark {
                continue;
            }
            match &record.event {
                // `publish` enforces the support rule with a live graph
                // query from the issuer; `revoke` needs the certificate
                // present. Hydrate those neighborhoods first.
                StoreEvent::Publish(cert) => {
                    wallet.plan_forward(&Node::Entity(cert.delegation().issuer()));
                }
                StoreEvent::Revoke(revocation) => {
                    let id = revocation.delegation_id();
                    if wallet.state.graph.get(id).is_none() {
                        if let Ok(Some(cert)) = index.cert(id) {
                            wallet.insert_cert(cert);
                        }
                    }
                }
                _ => {}
            }
            if let Err(e) = wallet.apply_event(record.event.clone()) {
                drbac_obs::event!(
                    "drbac.index.boot.tail_skipped",
                    "seq" => record.seq,
                    "error" => e.to_string(),
                );
            }
            index
                .apply(record.seq, &record.event)
                .map_err(|e| format!("index catch-up at seq {}: {e}", record.seq))?;
            caught_up += 1;
        }

        Ok(IndexedBootReport {
            lazy: true,
            watermark,
            caught_up,
            recovery: None,
        })
    }

    /// The underlying wallet (also available through `Deref`).
    pub fn wallet(&self) -> &Wallet {
        &self.wallet
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<WalletStore> {
        &self.store
    }

    /// Installs a snapshot of the wallet's current durable contents and
    /// compacts the log behind it. Returns the sequence number the
    /// snapshot covers.
    ///
    /// # Errors
    ///
    /// [`WalletError::Storage`] if the store's medium fails.
    pub fn snapshot(&self) -> Result<u64, WalletError> {
        let wallet = self.wallet.clone();
        let covered = self
            .store
            .install_snapshot(move || wallet.export_bytes())
            .map_err(|e| WalletError::Storage(e.to_string()))?;
        // Persist the index's delta log alongside the snapshot so the
        // `snapshot_seq ≤ watermark` boot invariant survives a crash
        // right after compaction.
        if let Some(index) = self.wallet.index() {
            if let Err(e) = index.flush() {
                self.wallet.degrade_index(&format!("flush at snapshot: {e}"));
            }
        }
        Ok(covered)
    }
}

/// How [`DurableWallet::open_indexed`] booted.
#[derive(Debug, Clone, Default)]
pub struct IndexedBootReport {
    /// `true` for the fast path: the graph is lazily hydrated from the
    /// index. `false` when the wallet fell back to a full replay (or
    /// both store and index were empty).
    pub lazy: bool,
    /// The index watermark the boot keyed off.
    pub watermark: u64,
    /// Log-tail records replayed above the watermark (fast path), or
    /// total records replayed (fallback).
    pub caught_up: usize,
    /// The full-replay report when the boot fell back.
    pub recovery: Option<RecoveryReport>,
}

impl Deref for DurableWallet {
    type Target = Wallet;

    fn deref(&self) -> &Wallet {
        &self.wallet
    }
}

impl fmt::Debug for DurableWallet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableWallet")
            .field("wallet", &self.wallet)
            .field("store", &self.store.status())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{LocalEntity, Node, Ticks};
    use drbac_crypto::SchnorrGroup;
    use drbac_index::MemTable;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mem_index() -> Arc<DelegationIndex> {
        Arc::new(DelegationIndex::open(Box::new(MemTable::new())).unwrap())
    }

    /// A shareable mem table so "the same index files" survive a
    /// simulated restart (the index handle is dropped, the table kept).
    #[derive(Clone)]
    struct Shared(Arc<MemTable>);

    impl drbac_index::TableBackend for Shared {
        fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, drbac_store::StoreError> {
            self.0.get(key)
        }
        fn apply(&self, batch: &[drbac_index::TableOp]) -> Result<(), drbac_store::StoreError> {
            self.0.apply(batch)
        }
        fn scan(
            &self,
            start: &[u8],
            end: Option<&[u8]>,
            f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
        ) -> Result<(), drbac_store::StoreError> {
            self.0.scan(start, end, f)
        }
        fn entries(&self) -> Result<u64, drbac_store::StoreError> {
            self.0.entries()
        }
        fn stats(&self) -> drbac_index::TableStats {
            self.0.stats()
        }
        fn flush(&self) -> Result<(), drbac_store::StoreError> {
            self.0.flush()
        }
        fn compact(&self) -> Result<(), drbac_store::StoreError> {
            self.0.compact()
        }
        fn reset_with(
            &self,
            entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
        ) -> Result<(), drbac_store::StoreError> {
            self.0.reset_with(entries)
        }
    }

    #[test]
    fn indexed_boot_is_lazy_and_answers_like_full_replay() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let store = Arc::new(WalletStore::in_memory());
        let table = Shared(Arc::new(MemTable::new()));

        {
            let index = Arc::new(DelegationIndex::open(Box::new(table.clone())).unwrap());
            let (w, _) = DurableWallet::open("w", SimClock::new(), Arc::clone(&store)).unwrap();
            w.attach_index(index);
            for i in 0..10 {
                let cert = a
                    .delegate(Node::entity(&m), Node::role(a.role(&format!("r{i}"))))
                    .sign(&a)
                    .unwrap();
                w.publish(cert, vec![]).unwrap();
            }
            w.snapshot().unwrap();
            // Two more after the snapshot, with the index detached (a
            // crash before its delta log synced): the log tail the next
            // boot must catch up on.
            w.detach_index().unwrap();
            for i in 10..12 {
                let cert = a
                    .delegate(Node::entity(&m), Node::role(a.role(&format!("r{i}"))))
                    .sign(&a)
                    .unwrap();
                w.publish(cert, vec![]).unwrap();
            }
        }

        let index = Arc::new(DelegationIndex::open(Box::new(table.clone())).unwrap());
        let (reborn, report) =
            DurableWallet::open_indexed("w", SimClock::new(), Arc::clone(&store), index).unwrap();
        assert!(report.lazy, "index was current; boot must take the fast path");
        assert_eq!(report.caught_up, 2);
        assert!(reborn.len() < 12, "lazy boot must not hydrate everything");

        let (full, _) = DurableWallet::open("w", SimClock::new(), Arc::clone(&store)).unwrap();
        for i in 0..12 {
            let want: Vec<Vec<u8>> = full
                .query_subject(&Node::entity(&m), &[])
                .iter()
                .map(|p| p.to_bytes())
                .collect();
            let got: Vec<Vec<u8>> = reborn
                .query_subject(&Node::entity(&m), &[])
                .iter()
                .map(|p| p.to_bytes())
                .collect();
            assert_eq!(got, want, "indexed answers must match full replay (r{i})");
        }
        assert_eq!(reborn.len(), 12, "subject query hydrates the neighborhood");
    }

    #[test]
    fn stale_index_falls_back_to_full_replay_and_rebuilds() {
        let mut rng = StdRng::seed_from_u64(23);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let store = Arc::new(WalletStore::in_memory());
        {
            let (w, _) = DurableWallet::open("w", SimClock::new(), Arc::clone(&store)).unwrap();
            let cert =
                a.delegate(Node::entity(&m), Node::role(a.role("r"))).sign(&a).unwrap();
            w.publish(cert, vec![]).unwrap();
        }
        // A brand-new (empty, no-watermark) index against a non-empty
        // store is stale: boot must fall back, then rebuild it.
        let index = mem_index();
        let (reborn, report) =
            DurableWallet::open_indexed("w", SimClock::new(), store, Arc::clone(&index)).unwrap();
        assert!(!report.lazy);
        assert!(report.recovery.is_some());
        assert_eq!(reborn.len(), 1);
        assert!(reborn.indexed(), "rebuilt index ends up attached");
        assert_eq!(index.watermark(), Some(1));
    }

    #[test]
    fn expiry_sweep_scans_only_the_expired_prefix() {
        let mut rng = StdRng::seed_from_u64(29);
        let g = SchnorrGroup::test_256();
        let a = LocalEntity::generate("A", g.clone(), &mut rng);
        let m = LocalEntity::generate("M", g, &mut rng);
        let clock = SimClock::new();
        let store = Arc::new(WalletStore::in_memory());
        let (w, _) = DurableWallet::open("w", clock.clone(), Arc::clone(&store)).unwrap();
        w.attach_index(mem_index());
        for i in 0..8 {
            let mut b = a.delegate(Node::entity(&m), Node::role(a.role(&format!("r{i}"))));
            if i < 3 {
                b = b.expires(clock.now().after(Ticks(5)));
            }
            w.publish(b.sign(&a).unwrap(), vec![]).unwrap();
        }
        clock.advance(Ticks(10));
        let (expired, _) = w.process_expiries();
        assert_eq!(expired, 3);
        assert_eq!(w.len(), 5);
        // Idempotent: nothing left in the lapsed range.
        assert_eq!(w.process_expiries().0, 0);
    }
}
