//! A wallet bound to a write-ahead store.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

use drbac_core::{SimClock, WalletAddr};
use drbac_store::WalletStore;

use crate::wallet::{RecoveryReport, Wallet, WalletError};

/// A [`Wallet`] permanently bound to a [`WalletStore`]: opening
/// recovers whatever the store holds (latest snapshot + log-tail
/// replay) and attaches the journal, so every subsequent mutating call
/// is logged before it is applied. Dereferences to [`Wallet`] for the
/// whole query/publish/monitor API.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use drbac_core::{LocalEntity, Node, SimClock};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_store::WalletStore;
/// use drbac_wallet::DurableWallet;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let org = LocalEntity::generate("Org", SchnorrGroup::test_256(), &mut rng);
/// let store = Arc::new(WalletStore::in_memory());
///
/// let (wallet, _) = DurableWallet::open("wallet.org", SimClock::new(), Arc::clone(&store))?;
/// wallet.publish(
///     org.delegate(Node::entity(&org), Node::role(org.role("member"))).sign(&org)?,
///     vec![],
/// )?;
/// drop(wallet); // "crash"
///
/// let (reborn, report) = DurableWallet::open("wallet.org", SimClock::new(), store)?;
/// assert_eq!(report.replayed, 1);
/// assert_eq!(reborn.len(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DurableWallet {
    wallet: Wallet,
    store: Arc<WalletStore>,
}

impl DurableWallet {
    /// Opens a durable wallet at `addr` over `store`: recovers the
    /// store's contents into a fresh wallet, then attaches the journal.
    ///
    /// # Errors
    ///
    /// [`WalletError::Storage`] if the store's medium fails (corrupt
    /// contents are recovered-around, not errors).
    pub fn open(
        addr: impl Into<WalletAddr>,
        clock: SimClock,
        store: Arc<WalletStore>,
    ) -> Result<(Self, RecoveryReport), WalletError> {
        let wallet = Wallet::new(addr, clock);
        let report = wallet.recover_from_store(&store)?;
        wallet.attach_journal(Arc::clone(&store));
        Ok((DurableWallet { wallet, store }, report))
    }

    /// The underlying wallet (also available through `Deref`).
    pub fn wallet(&self) -> &Wallet {
        &self.wallet
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<WalletStore> {
        &self.store
    }

    /// Installs a snapshot of the wallet's current durable contents and
    /// compacts the log behind it. Returns the sequence number the
    /// snapshot covers.
    ///
    /// # Errors
    ///
    /// [`WalletError::Storage`] if the store's medium fails.
    pub fn snapshot(&self) -> Result<u64, WalletError> {
        let wallet = self.wallet.clone();
        self.store
            .install_snapshot(move || wallet.export_bytes())
            .map_err(|e| WalletError::Storage(e.to_string()))
    }
}

impl Deref for DurableWallet {
    type Target = Wallet;

    fn deref(&self) -> &Wallet {
        &self.wallet
    }
}

impl fmt::Debug for DurableWallet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DurableWallet")
            .field("wallet", &self.wallet)
            .field("store", &self.store.status())
            .finish()
    }
}
