//! The wallet itself.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};

use drbac_core::{
    AttrConstraint, DelegationId, Node, Proof, ProofValidator, SignedAttrDeclaration,
    SignedDelegation, SignedRevocation, SimClock, Ticks, Timestamp, ValidationContext,
    ValidationError, WalletAddr,
};
use drbac_graph::{DelegationGraph, SearchOptions, SearchStats, ShardedGraph};
use drbac_store::{StoreEvent, WalletStore};
use parking_lot::Mutex;

use crate::cache::{ProofCache, QueryKey};
use crate::events::{DelegationEvent, InvalidationReason, SubscriptionId};
use crate::monitor::{MonitorCore, ProofMonitor};

/// Errors returned by wallet operations.
#[derive(Debug, Clone, PartialEq)]
pub enum WalletError {
    /// The credential (or a support proof) failed validation.
    Validation(ValidationError),
    /// A third-party delegation was published without the support proofs
    /// its issuer is required to provide.
    SupportNotProvided {
        /// Description of the missing right.
        needed: String,
    },
    /// No proof satisfying the query exists in this wallet.
    NoProof,
    /// A revocation arrived for a delegation this wallet does not hold.
    UnknownDelegation(DelegationId),
    /// The attached write-ahead store failed to journal the mutation
    /// (the mutation was NOT applied — journal-before-apply).
    Storage(String),
}

impl fmt::Display for WalletError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalletError::Validation(e) => write!(f, "credential rejected: {e}"),
            WalletError::SupportNotProvided { needed } => {
                write!(
                    f,
                    "third-party publication must provide support for {needed}"
                )
            }
            WalletError::NoProof => f.write_str("no satisfying proof found"),
            WalletError::UnknownDelegation(id) => write!(f, "unknown delegation #{id}"),
            WalletError::Storage(e) => write!(f, "durable store rejected the mutation: {e}"),
        }
    }
}

impl std::error::Error for WalletError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WalletError::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for WalletError {
    fn from(e: ValidationError) -> Self {
        WalletError::Validation(e)
    }
}

/// Coherence metadata for a cached remote credential (paper §4.2.2,
/// "coherent caching of delegations").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheEntry {
    /// The wallet the credential was fetched from.
    pub source: WalletAddr,
    /// When it was validated.
    pub fetched_at: Timestamp,
    /// Discovery-tag TTL; zero means "no monitoring required".
    pub ttl: Ticks,
}

impl CacheEntry {
    /// `true` once the TTL has lapsed and the copy needs revalidation.
    pub fn is_stale(&self, now: Timestamp) -> bool {
        self.ttl.0 > 0 && now > self.fetched_at.after(self.ttl)
    }
}

type SubCallback = Arc<dyn Fn(DelegationEvent) + Send + Sync>;
type WatchCallback = Box<dyn Fn(ProofMonitor) + Send + Sync>;

struct ProofWatch {
    subject: Node,
    object: Node,
    constraints: Vec<AttrConstraint>,
    callback: WatchCallback,
}

/// The published result of one in-flight cold query.
enum FlightOutcome {
    /// The leader finished; followers may reuse this answer (after a
    /// cheap freshness check).
    Done(Option<(Proof, drbac_core::AttrSummary)>),
    /// The leader unwound without an answer (panic or early drop);
    /// followers must run their own search.
    Abandoned,
}

/// One in-flight cold query that identical concurrent queries can wait
/// on instead of searching the same graph again (singleflight). Uses the
/// std `Mutex`/`Condvar` pair directly: the vendored `parking_lot` shim
/// has no `Condvar`, and poisoning is absorbed in place because the
/// outcome slot is always coherent (a flight either publishes or is
/// marked abandoned by the leader's drop guard).
struct Flight {
    slot: std::sync::Mutex<Option<FlightOutcome>>,
    cv: std::sync::Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: std::sync::Mutex::new(None),
            cv: std::sync::Condvar::new(),
        }
    }

    fn publish(&self, outcome: FlightOutcome) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some(outcome);
        self.cv.notify_all();
    }

    /// Blocks until the leader publishes. `None` means the flight was
    /// abandoned.
    ///
    /// Graph searches are short (tens of microseconds warm), so parking
    /// on the condvar immediately would spend more on the two context
    /// switches than the coalescing saves. Followers first yield the
    /// processor a bounded number of times — on a loaded single core each
    /// yield hands the timeslice to the leader — and only park if the
    /// flight is still unresolved after that.
    fn wait(&self) -> Option<Option<(Proof, drbac_core::AttrSummary)>> {
        for _ in 0..64 {
            {
                let slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
                match &*slot {
                    Some(FlightOutcome::Done(answer)) => return Some(answer.clone()),
                    Some(FlightOutcome::Abandoned) => return None,
                    None => {}
                }
            }
            std::thread::yield_now();
        }
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            match &*slot {
                Some(FlightOutcome::Done(answer)) => return Some(answer.clone()),
                Some(FlightOutcome::Abandoned) => return None,
                None => slot = self.cv.wait(slot).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }
}

/// Removes the leader's flight from the in-flight table and guarantees an
/// outcome is published exactly once — `Abandoned` if the leader unwinds
/// before calling [`FlightGuard::finish`], so followers never block on a
/// dead flight.
struct FlightGuard<'a> {
    state: &'a WalletState,
    key: QueryKey,
    flight: Arc<Flight>,
    published: bool,
}

impl FlightGuard<'_> {
    fn finish(mut self, answer: Option<(Proof, drbac_core::AttrSummary)>) {
        self.published = true;
        self.state.inflight.lock().remove(&self.key);
        self.flight.publish(FlightOutcome::Done(answer));
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.published {
            self.state.inflight.lock().remove(&self.key);
            self.flight.publish(FlightOutcome::Abandoned);
        }
    }
}

pub(crate) struct WalletState {
    pub(crate) addr: WalletAddr,
    pub(crate) clock: SimClock,
    /// The delegation store, sharded behind per-shard locks so concurrent
    /// provers and publishers don't serialize (there is deliberately no
    /// outer wallet-wide graph lock any more).
    pub(crate) graph: ShardedGraph,
    subscriptions: Mutex<HashMap<DelegationId, Vec<(SubscriptionId, SubCallback)>>>,
    monitors: Mutex<HashMap<DelegationId, Vec<Weak<MonitorCore>>>>,
    watches: Mutex<Vec<ProofWatch>>,
    pub(crate) cache_meta: Mutex<HashMap<DelegationId, CacheEntry>>,
    pub(crate) signed_declarations: Mutex<Vec<SignedAttrDeclaration>>,
    next_subscription: AtomicU64,
    /// The revocation-coherent direct-query answer cache; entries track
    /// the delegation ids their proofs depend on and die with them.
    proof_cache: ProofCache,
    /// Cold queries currently being answered, keyed like the proof cache.
    /// Concurrent identical queries coalesce onto the leader's search
    /// (singleflight) instead of repeating it.
    inflight: Mutex<HashMap<QueryKey, Arc<Flight>>>,
    cache_enabled: std::sync::atomic::AtomicBool,
    /// Worker threads used for parallel proof search (1 = sequential).
    search_workers: AtomicUsize,
    /// The attached write-ahead store, if any. Mutations are journaled
    /// here *before* they are applied to the graph.
    pub(crate) journal: Mutex<Option<Arc<WalletStore>>>,
    /// The attached delegation index, if any (see `planner.rs`). The
    /// handle is cloned out before use so index scans never run under
    /// this lock.
    pub(crate) index: Mutex<Option<Arc<crate::planner::IndexHandle>>>,
    /// Min-heap of `(expiry, id)` over every inserted bounded-lifetime
    /// credential: the expiry sweep's O(expired) fallback when no index
    /// is attached. Entries are discarded lazily on pop (a revoked or
    /// re-inserted credential leaves a stale entry behind).
    pub(crate) expiry_heap:
        Mutex<std::collections::BinaryHeap<std::cmp::Reverse<(Timestamp, DelegationId)>>>,
}

/// A dRBAC wallet (paper Figure 1). Cheap to clone; clones share state.
///
/// # Example
///
/// The single-wallet flow: publish, query, monitor, revoke.
///
/// ```
/// use drbac_core::{LocalEntity, Node, SignedRevocation, SimClock, Timestamp};
/// use drbac_crypto::SchnorrGroup;
/// use drbac_wallet::Wallet;
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(51);
/// # let g = SchnorrGroup::test_256();
/// let a = LocalEntity::generate("A", g.clone(), &mut rng);
/// let m = LocalEntity::generate("M", g, &mut rng);
/// let clock = SimClock::new();
/// let wallet = Wallet::new("wallet.a.example", clock.clone());
///
/// let cert = a.delegate(Node::entity(&m), Node::role(a.role("r"))).sign(&a)?;
/// wallet.publish(cert.clone(), vec![])?;
///
/// let monitor = wallet
///     .query_direct(&Node::entity(&m), &Node::role(a.role("r")), &[])
///     .expect("proof exists");
/// assert!(monitor.is_valid());
///
/// let revocation = SignedRevocation::revoke(&cert, &a, clock.now())?;
/// wallet.revoke(&revocation)?;
/// assert!(!monitor.is_valid());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone)]
pub struct Wallet {
    pub(crate) state: Arc<WalletState>,
}

impl fmt::Debug for Wallet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Wallet")
            .field("addr", &self.state.addr)
            .field("delegations", &self.state.graph.len())
            .finish()
    }
}

impl Wallet {
    /// Creates an empty wallet at `addr` sharing `clock`.
    pub fn new(addr: impl Into<WalletAddr>, clock: SimClock) -> Self {
        Wallet {
            state: Arc::new(WalletState {
                addr: addr.into(),
                clock,
                graph: ShardedGraph::new(),
                subscriptions: Mutex::new(HashMap::new()),
                monitors: Mutex::new(HashMap::new()),
                watches: Mutex::new(Vec::new()),
                cache_meta: Mutex::new(HashMap::new()),
                signed_declarations: Mutex::new(Vec::new()),
                next_subscription: AtomicU64::new(0),
                proof_cache: ProofCache::default(),
                inflight: Mutex::new(HashMap::new()),
                cache_enabled: std::sync::atomic::AtomicBool::new(true),
                search_workers: AtomicUsize::new(1),
                journal: Mutex::new(None),
                index: Mutex::new(None),
                expiry_heap: Mutex::new(std::collections::BinaryHeap::new()),
            }),
        }
    }

    /// Attaches a write-ahead store: every subsequent mutating call is
    /// journaled to it before being applied, so the wallet's durable
    /// state can be rebuilt by [`Wallet::recover_from_store`] after a
    /// crash. Replaces any previously attached store.
    pub fn attach_journal(&self, store: Arc<WalletStore>) {
        *self.state.journal.lock() = Some(store);
    }

    /// Detaches the journal, returning it if one was attached.
    /// Subsequent mutations are no longer logged.
    pub fn detach_journal(&self) -> Option<Arc<WalletStore>> {
        self.state.journal.lock().take()
    }

    /// Whether a write-ahead store is currently attached.
    pub fn journaling(&self) -> bool {
        self.state.journal.lock().is_some()
    }

    /// Journals `event` to the attached store (no-op when detached).
    /// Called *before* applying the mutation, and never while holding
    /// the graph lock — the store has its own lock and fsyncs inside it.
    fn journal(&self, event: &StoreEvent) -> Result<(), WalletError> {
        let store = self.state.journal.lock().clone();
        if let Some(store) = store {
            let seq = store
                .append(event)
                .map_err(|e| WalletError::Storage(e.to_string()))?;
            // Same event, same sequence number, into the index — one
            // atomic batch per record. An index failure degrades the
            // planner to graph walks; it never fails the mutation (the
            // WAL, the source of truth, already holds the event).
            self.index_apply(seq, event);
        }
        Ok(())
    }

    /// As [`Wallet::journal`] for paths that must not fail (event
    /// delivery, expiry sweeps): a journal error is counted and traced
    /// but the in-memory mutation proceeds.
    fn journal_best_effort(&self, event: &StoreEvent) {
        if let Err(e) = self.journal(event) {
            drbac_obs::static_counter!("drbac.wallet.journal.error.count").inc();
            drbac_obs::event!(
                "drbac.wallet.journal.error",
                "error" => e.to_string(),
            );
        }
    }

    /// Enables or disables the direct-query answer cache (enabled by
    /// default; disable for measurement).
    pub fn set_query_cache(&self, enabled: bool) {
        self.state.cache_enabled.store(enabled, Ordering::SeqCst);
        if !enabled {
            self.state.proof_cache.clear();
        }
    }

    /// Sets how many worker threads proof searches may use (clamped to at
    /// least 1; 1 means sequential search).
    pub fn set_search_workers(&self, workers: usize) {
        self.state
            .search_workers
            .store(workers.max(1), Ordering::SeqCst);
    }

    /// Current proof-search worker-pool size.
    pub fn search_workers(&self) -> usize {
        self.state.search_workers.load(Ordering::SeqCst)
    }

    /// Number of direct-query answers currently held in the proof cache
    /// (diagnostics; both positive and negative answers count).
    pub fn cached_query_answers(&self) -> usize {
        self.state.proof_cache.len()
    }

    /// Search options for the current time/constraints, carrying the
    /// configured worker-pool size.
    fn search_opts(&self, now: Timestamp, constraints: &[AttrConstraint]) -> SearchOptions {
        let mut opts = SearchOptions::at(now);
        opts.constraints = constraints.to_vec();
        opts.workers = self.search_workers();
        opts
    }

    /// A validation context carrying this wallet's declarations and full
    /// revocation set.
    fn validation_ctx(&self, now: Timestamp) -> ValidationContext {
        let mut ctx =
            ValidationContext::at(now).with_declarations(self.state.graph.declarations());
        for id in self.state.graph.revoked_ids() {
            ctx = ctx.with_revoked(id);
        }
        ctx
    }

    /// This wallet's address.
    pub fn addr(&self) -> &WalletAddr {
        &self.state.addr
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.state.clock
    }

    /// Current logical time.
    pub fn now(&self) -> Timestamp {
        self.state.clock.now()
    }

    /// Number of stored delegations.
    pub fn len(&self) -> usize {
        self.state.graph.len()
    }

    /// `true` if no delegations are stored.
    pub fn is_empty(&self) -> bool {
        self.state.graph.is_empty()
    }

    /// `true` if the wallet holds delegation `id`.
    pub fn contains(&self, id: DelegationId) -> bool {
        self.state.graph.contains(id)
    }

    /// `true` if delegation `id` is marked revoked here. This reads a
    /// single id shard — the fast path for per-credential liveness checks
    /// (the network layer calls it on every served proof).
    pub fn is_revoked(&self, id: DelegationId) -> bool {
        self.state.graph.is_revoked(id)
    }

    /// Fetches a stored delegation.
    pub fn get(&self, id: DelegationId) -> Option<Arc<SignedDelegation>> {
        self.state.graph.get(id)
    }

    /// Inserts a credential into the graph, tracking bounded lifetimes
    /// in the expiry heap so the sweep stays O(expired) even without an
    /// index attached. Every credential insertion goes through here.
    pub(crate) fn insert_cert(&self, cert: Arc<SignedDelegation>) -> DelegationId {
        if let Some(at) = cert.delegation().expires() {
            self.state
                .expiry_heap
                .lock()
                .push(std::cmp::Reverse((at, cert.id())));
        }
        self.state.graph.insert(cert)
    }

    /// Publishes a credential with its issuer-provided support proofs.
    ///
    /// Verifies the credential and each support proof cryptographically,
    /// and enforces the paper's publication rule: a third-party delegation
    /// (or one carrying foreign attribute clauses) must come with support
    /// proofs for every right its issuer exercises — either in this call
    /// or already present in the wallet.
    ///
    /// # Errors
    ///
    /// [`WalletError::Validation`] or [`WalletError::SupportNotProvided`].
    pub fn publish(
        &self,
        cert: impl Into<Arc<SignedDelegation>>,
        supports: Vec<Proof>,
    ) -> Result<DelegationId, WalletError> {
        let cert: Arc<SignedDelegation> = cert.into();
        let _span = drbac_obs::span!(
            "drbac.wallet.publish",
            "supports" => supports.len(),
        );
        let _timer = drbac_obs::static_histogram!("drbac.wallet.publish.ns").start_timer();
        drbac_obs::static_counter!("drbac.wallet.publish.count").inc();
        let now = self.now();
        cert.verify(now)?;

        // Validate each provided support proof in isolation, under the
        // full wallet context — including local revocation marks. This
        // must match the context `provide_support` applies when the
        // journaled `Support` event is replayed at recovery: anything
        // accepted (and committed) here has to be re-accepted then, or
        // replay would silently drop credentials the live wallet held.
        {
            let validator = ProofValidator::new(self.validation_ctx(now));
            for support in &supports {
                validator
                    .validate(support)
                    .map_err(WalletError::Validation)?;
            }
        }

        // Journal the validated supports before applying them (never
        // while holding a shard lock — the store fsyncs under its own).
        for support in &supports {
            self.journal(&StoreEvent::Support(support.clone()))?;
        }

        let graph = &self.state.graph;
        for support in supports {
            for c in support.all_certs() {
                self.insert_cert(c);
            }
            graph.provide_support(support);
        }

        // Enforce provided-support rule for every right the issuer needs.
        let delegation = cert.delegation();
        let issuer = delegation.issuer();
        let mut needed: Vec<Node> = Vec::new();
        if let Some(right) = delegation.required_support() {
            needed.push(right);
        }
        for clause in delegation.foreign_clauses() {
            let admin = Node::attr_admin(clause.attr().clone());
            if !needed.contains(&admin) {
                needed.push(admin);
            }
        }
        if !needed.is_empty() {
            // The derivability check below queries the live graph from
            // the issuer; a lazily booted wallet must hydrate that
            // neighborhood first.
            self.plan_forward(&Node::Entity(issuer));
        }
        for right in &needed {
            let provided = graph.provided_support(issuer, right).is_some();
            let derivable = provided || {
                let (p, _) =
                    graph.direct_query(&Node::Entity(issuer), right, &SearchOptions::at(now));
                p.is_some()
            };
            if !derivable {
                return Err(WalletError::SupportNotProvided {
                    needed: right.to_string(),
                });
            }
        }

        // Journal before insertion. Another publisher may slip in
        // between — insertion is idempotent.
        self.journal(&StoreEvent::Publish(Arc::clone(&cert)))?;
        let id = self.insert_cert(Arc::clone(&cert));
        // A new edge can only flip cached negatives, never break a
        // cached proof.
        self.state.proof_cache.invalidate_negatives();
        self.run_watches();
        Ok(id)
    }

    /// Publishes a signed attribute declaration (base value) after
    /// verifying it.
    ///
    /// # Errors
    ///
    /// [`WalletError::Validation`] if the declaration fails verification.
    pub fn publish_declaration(&self, decl: &SignedAttrDeclaration) -> Result<(), WalletError> {
        drbac_obs::static_counter!("drbac.wallet.publish_declaration.count").inc();
        decl.verify(self.now())?;
        if !self.state.signed_declarations.lock().contains(decl) {
            self.journal(&StoreEvent::Declare(decl.clone()))?;
        }
        self.state.graph.insert_declaration(decl.declaration());
        // Declarations re-base constraint evaluation and can flip answers
        // in either direction — drop everything.
        self.state.proof_cache.clear();
        let mut signed = self.state.signed_declarations.lock();
        if !signed.contains(decl) {
            signed.push(decl.clone());
        }
        Ok(())
    }

    /// Every signed attribute declaration this wallet can re-serve to
    /// peers (the network layer forwards these alongside proofs so remote
    /// verifiers learn base values).
    pub fn signed_declarations(&self) -> Vec<SignedAttrDeclaration> {
        self.state.signed_declarations.lock().clone()
    }

    /// Absorbs a validated remote proof into the local cache: verifies the
    /// whole proof, then inserts every credential with coherence metadata
    /// (`source`, TTL from the relevant discovery tags).
    ///
    /// This is paper §5 step 5: "Delegations from this proof are inserted
    /// into the local wallet, which is trusted to verify signatures and
    /// establish its own validation subscriptions."
    ///
    /// # Errors
    ///
    /// [`WalletError::Validation`] if the proof fails validation.
    pub fn absorb_proof(&self, proof: &Proof, source: &WalletAddr) -> Result<(), WalletError> {
        let _span = drbac_obs::span!(
            "drbac.wallet.absorb",
            "chain_len" => proof.chain_len(),
        );
        drbac_obs::static_counter!("drbac.wallet.absorb.count").inc();
        let now = self.now();
        {
            let ctx =
                ValidationContext::at(now).with_declarations(self.state.graph.declarations());
            ProofValidator::new(ctx)
                .validate(proof)
                .map_err(WalletError::Validation)?;
        }
        self.journal(&StoreEvent::Absorb {
            proof: proof.clone(),
            source: source.clone(),
        })?;
        let graph = &self.state.graph;
        let mut cache = self.state.cache_meta.lock();
        for cert in proof.all_certs() {
            let ttl = cert
                .delegation()
                .subject_tag()
                .or(cert.delegation().object_tag())
                .map(|t| t.ttl())
                .unwrap_or(Ticks(0));
            drbac_obs::static_counter!("drbac.wallet.absorb.certs.count").inc();
            let id = self.insert_cert(Arc::clone(&cert));
            cache.entry(id).or_insert(CacheEntry {
                source: source.clone(),
                fetched_at: now,
                ttl,
            });
        }
        // Register the sub-proofs so future third-party steps revalidate.
        register_supports(graph, proof);
        drop(cache);
        self.state.proof_cache.invalidate_negatives();
        self.run_watches();
        Ok(())
    }

    /// Coherence metadata for a cached delegation, if it was absorbed from
    /// a remote wallet.
    pub fn cache_entry(&self, id: DelegationId) -> Option<CacheEntry> {
        self.state.cache_meta.lock().get(&id).cloned()
    }

    /// Records a successful revalidation of a cached credential: its TTL
    /// window restarts now. Returns `false` for unknown cache entries.
    pub fn mark_refreshed(&self, id: DelegationId) -> bool {
        let now = self.now();
        match self.state.cache_meta.lock().get_mut(&id) {
            Some(entry) => {
                entry.fetched_at = now;
                drbac_obs::static_counter!("drbac.wallet.cache.refresh.count").inc();
                true
            }
            None => false,
        }
    }

    /// Coherence metadata for every cached delegation, as
    /// `(delegation, entry)` pairs in unspecified order. Used to
    /// re-register push subscriptions at each entry's source wallet
    /// after the source restarts.
    pub fn cache_entries(&self) -> Vec<(DelegationId, CacheEntry)> {
        self.state
            .cache_meta
            .lock()
            .iter()
            .map(|(id, entry)| (*id, entry.clone()))
            .collect()
    }

    /// Drops all volatile state — subscriptions, proof monitors, pending
    /// proof watches, cache-coherence metadata and cached query answers —
    /// the way a process crash would. Durable contents (credentials,
    /// supports, declarations, revocations) are untouched; pair with
    /// [`Wallet::export_bytes`] / [`Wallet::import_bytes`] to model a
    /// full crash/restart cycle.
    pub fn clear_volatile(&self) {
        self.state.subscriptions.lock().clear();
        self.state.monitors.lock().clear();
        self.state.watches.lock().clear();
        self.state.cache_meta.lock().clear();
        self.state.proof_cache.clear();
    }

    /// Ids of cached entries whose TTL has lapsed.
    pub fn stale_entries(&self) -> Vec<DelegationId> {
        let now = self.now();
        self.state
            .cache_meta
            .lock()
            .iter()
            .filter(|(_, e)| e.is_stale(now))
            .map(|(id, _)| *id)
            .collect()
    }

    /// Direct query (§4.1): find, validate, and monitor a proof
    /// `subject ⇒ object` under `constraints`.
    ///
    /// Returns `None` when no valid satisfying proof exists.
    pub fn query_direct(
        &self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
    ) -> Option<ProofMonitor> {
        self.query_direct_with_stats(subject, object, constraints).0
    }

    /// As [`Wallet::query_direct`], also returning search work counters.
    pub fn query_direct_with_stats(
        &self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
    ) -> (Option<ProofMonitor>, SearchStats) {
        let _span = drbac_obs::span!(
            "drbac.wallet.query",
            "constraints" => constraints.len(),
        );
        let _timer = drbac_obs::static_histogram!("drbac.wallet.query.ns").start_timer();
        let now = self.now();
        match self.cached_answer(subject, object, constraints, now) {
            (Some((proof, summary)), stats) => (Some(self.monitor_proof(proof, summary)), stats),
            (None, stats) => (None, stats),
        }
    }

    /// Shared direct-query core: serve from the proof cache when
    /// possible, otherwise search + validate and populate the cache. The
    /// cache epoch is captured *before* the search so an invalidation
    /// racing with us discards our insert rather than losing the
    /// invalidation.
    ///
    /// Concurrent identical cold queries coalesce (singleflight): the
    /// first one in becomes the *leader* and runs the search; the rest
    /// wait on its [`Flight`] and reuse the answer after a cheap
    /// freshness check (no credential revoked or expired since). This is
    /// what keeps a flash crowd of provers asking the same question from
    /// multiplying search work — and it works whether or not the answer
    /// cache is enabled, since the flight lives only as long as the
    /// leader's search.
    fn cached_answer(
        &self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
        now: Timestamp,
    ) -> (Option<(Proof, drbac_core::AttrSummary)>, SearchStats) {
        let start = std::time::Instant::now();
        let cache_enabled = self.state.cache_enabled.load(Ordering::SeqCst);
        let key = QueryKey::new(subject, object, constraints);
        if cache_enabled {
            if let Some(found) = self.state.proof_cache.get(&key, now) {
                drbac_obs::static_counter!("drbac.wallet.query.cache_hit.count").inc();
                drbac_obs::static_counter!("drbac.graph.proof_cache.hit.count").inc();
                drbac_obs::static_histogram!("drbac.wallet.query.warm.ns")
                    .record(start.elapsed().as_nanos() as u64);
                return (found, SearchStats::default());
            }
        }

        drbac_obs::static_counter!("drbac.wallet.query.cache_miss.count").inc();
        drbac_obs::static_counter!("drbac.graph.proof_cache.miss.count").inc();

        // Join or lead the flight for this key.
        let flight = loop {
            let claim = {
                let mut inflight = self.state.inflight.lock();
                if let Some(f) = inflight.get(&key) {
                    Err(Arc::clone(f))
                } else {
                    let f = Arc::new(Flight::new());
                    inflight.insert(key.clone(), Arc::clone(&f));
                    Ok(f)
                }
            };
            match claim {
                Ok(f) => break f, // we lead
                Err(f) => match f.wait() {
                    Some(answer) if self.flight_answer_fresh(&answer, now) => {
                        drbac_obs::static_counter!("drbac.wallet.query.coalesced.count").inc();
                        drbac_obs::static_histogram!("drbac.wallet.query.cold.ns")
                            .record(start.elapsed().as_nanos() as u64);
                        return (answer, SearchStats::default());
                    }
                    // Stale or abandoned: compete to lead a fresh search.
                    _ => continue,
                },
            }
        };
        let guard = FlightGuard {
            state: &self.state,
            key: key.clone(),
            flight,
            published: false,
        };
        // Group-commit window: yield once between opening the flight and
        // starting the search, so provers that arrive within the same
        // scheduling quantum get to attach to this flight instead of
        // repeating the whole search after it completes. On a saturated
        // single core this is what actually forms the convoy — without
        // it the leader runs its entire timeslice and concurrent
        // identical queries never overlap a flight. Costs one bounced
        // timeslice when nobody else is waiting.
        std::thread::yield_now();

        self.plan_forward(subject);
        let epoch = self.state.proof_cache.epoch();
        let opts = self.search_opts(now, constraints);
        let (proof, stats) = self.state.graph.direct_query(subject, object, &opts);
        let answer = proof.and_then(|proof| {
            ProofValidator::new(self.validation_ctx(now))
                .validate_query(&proof, subject, object, constraints)
                .ok()
                .map(|summary| (proof, summary))
        });
        if cache_enabled {
            self.state.proof_cache.insert(key, answer.clone(), epoch);
        }
        guard.finish(answer.clone());
        drbac_obs::static_histogram!("drbac.wallet.query.cold.ns")
            .record(start.elapsed().as_nanos() as u64);
        (answer, stats)
    }

    /// Whether a coalesced flight answer is still usable at `now`:
    /// positive answers need every credential (supports included)
    /// unrevoked and unexpired; negatives are monotone under the
    /// revocation/expiry the leader saw, so they pass as-is.
    fn flight_answer_fresh(
        &self,
        answer: &Option<(Proof, drbac_core::AttrSummary)>,
        now: Timestamp,
    ) -> bool {
        match answer {
            None => true,
            Some((proof, _)) => proof.all_certs().iter().all(|c| {
                !self.state.graph.is_revoked(c.id()) && !c.delegation().is_expired(now)
            }),
        }
    }

    /// As [`Wallet::query_direct`] but returning the bare validated proof
    /// without registering a monitor — the form used when answering
    /// remote queries, where monitoring happens at the requester's wallet.
    /// Shares the proof cache with [`Wallet::query_direct`].
    pub fn find_proof(
        &self,
        subject: &Node,
        object: &Node,
        constraints: &[AttrConstraint],
    ) -> Option<Proof> {
        let now = self.now();
        self.cached_answer(subject, object, constraints, now)
            .0
            .map(|(proof, _)| proof)
    }

    /// Subject query (§4.1): all proofs `subject ⇒ *` not violating
    /// `constraints`.
    pub fn query_subject(&self, subject: &Node, constraints: &[AttrConstraint]) -> Vec<Proof> {
        self.plan_forward(subject);
        let opts = self.search_opts(self.now(), constraints);
        self.state.graph.subject_query(subject, &opts).0
    }

    /// Object query (§4.1): all proofs `* ⇒ object` not violating
    /// `constraints`.
    pub fn query_object(&self, object: &Node, constraints: &[AttrConstraint]) -> Vec<Proof> {
        self.plan_reverse(object);
        let opts = self.search_opts(self.now(), constraints);
        self.state.graph.object_query(object, &opts).0
    }

    /// Registers a freshly discovered support proof after validating it
    /// (paper §4.2.1: "it may become necessary at some point to discover
    /// new supporting delegations").
    ///
    /// # Errors
    ///
    /// [`WalletError::Validation`] if the proof fails validation here.
    pub fn provide_support(&self, support: Proof) -> Result<(), WalletError> {
        let now = self.now();
        ProofValidator::new(self.validation_ctx(now)).validate(&support)?;
        self.journal(&StoreEvent::Support(support.clone()))?;
        for cert in support.all_certs() {
            self.insert_cert(cert);
        }
        self.state.graph.provide_support(support);
        self.state.proof_cache.invalidate_negatives();
        self.run_watches();
        Ok(())
    }

    /// Third-party delegations in this wallet whose issuer's authority
    /// can no longer be proven locally (support missing, revoked, or
    /// expired). Each entry is `(issuer, needed right, acting-as hints)` —
    /// the inputs for remote support re-discovery.
    pub fn unsupported_third_party(&self) -> Vec<(drbac_core::EntityId, Node, Vec<Node>)> {
        let now = self.now();
        let graph = &self.state.graph;
        let validator = ProofValidator::new(self.validation_ctx(now));
        let mut out = Vec::new();
        // With an index attached, the candidate set is the `3/` audit
        // prefix — exactly the credentials carrying a support obligation
        // — instead of a walk over every credential in the wallet.
        let candidates = self
            .planned_audit_certs()
            .unwrap_or_else(|| graph.iter_certs());
        for cert in candidates {
            if graph.is_revoked(cert.id()) || cert.delegation().is_expired(now) {
                continue;
            }
            let d = cert.delegation();
            let mut needed: Vec<Node> = Vec::new();
            if let Some(right) = d.required_support() {
                needed.push(right);
            }
            for clause in d.foreign_clauses() {
                let admin = Node::attr_admin(clause.attr().clone());
                if !needed.contains(&admin) {
                    needed.push(admin);
                }
            }
            if needed.is_empty() {
                continue;
            }
            // A lazily booted wallet must see the issuer's local
            // credentials before the derivation query below can run.
            self.plan_forward(&Node::Entity(d.issuer()));
            for right in needed {
                let provided_ok = graph
                    .provided_support(d.issuer(), &right)
                    .is_some_and(|p| validator.validate(&p).is_ok());
                if provided_ok {
                    continue;
                }
                // Maybe derivable from local credentials anyway.
                let (derived, _) =
                    graph.direct_query(&Node::Entity(d.issuer()), &right, &SearchOptions::at(now));
                if derived.is_some_and(|p| validator.validate(&p).is_ok()) {
                    continue;
                }
                out.push((d.issuer(), right, d.acting_as().to_vec()));
            }
        }
        out
    }

    /// Wraps an externally obtained proof in a monitor after validating
    /// it against this wallet's context.
    ///
    /// # Errors
    ///
    /// [`WalletError::Validation`] if the proof does not validate here.
    pub fn monitor_external_proof(&self, proof: Proof) -> Result<ProofMonitor, WalletError> {
        let now = self.now();
        let summary = ProofValidator::new(self.validation_ctx(now)).validate(&proof)?;
        Ok(self.monitor_proof(proof, summary))
    }

    fn monitor_proof(&self, proof: Proof, summary: drbac_core::AttrSummary) -> ProofMonitor {
        drbac_obs::static_counter!("drbac.wallet.monitor.register.count").inc();
        let core = MonitorCore::new(proof, summary);
        let mut monitors = self.state.monitors.lock();
        for id in core.watched() {
            let slot = monitors.entry(*id).or_default();
            // Garbage-collect registrations whose monitors were dropped,
            // so long-lived wallets don't accumulate dead weak refs.
            slot.retain(|weak| weak.strong_count() > 0);
            slot.push(Arc::downgrade(&core));
        }
        ProofMonitor { core }
    }

    /// Number of live monitor registrations (diagnostics).
    pub fn live_monitor_registrations(&self) -> usize {
        self.state
            .monitors
            .lock()
            .values()
            .map(|v| v.iter().filter(|w| w.strong_count() > 0).count())
            .sum()
    }

    /// Registers a delegation subscription: `callback` fires when `id` is
    /// invalidated (push model, §4.2.2).
    pub fn subscribe(
        &self,
        id: DelegationId,
        callback: impl Fn(DelegationEvent) + Send + Sync + 'static,
    ) -> SubscriptionId {
        let sub = SubscriptionId(self.state.next_subscription.fetch_add(1, Ordering::SeqCst));
        self.state
            .subscriptions
            .lock()
            .entry(id)
            .or_default()
            .push((sub, Arc::new(callback)));
        sub
    }

    /// Removes a subscription. Returns `true` if it existed.
    pub fn unsubscribe(&self, id: SubscriptionId) -> bool {
        let mut subs = self.state.subscriptions.lock();
        let mut found = false;
        for list in subs.values_mut() {
            let before = list.len();
            list.retain(|(s, _)| *s != id);
            found |= list.len() != before;
        }
        found
    }

    /// Registers a *pending-proof watch* (§4.2.2): if the wallet cannot
    /// currently provide a proof for the relationship, the callback fires
    /// as soon as a publication makes one available. If a proof already
    /// exists the callback fires immediately.
    pub fn watch_for_proof(
        &self,
        subject: Node,
        object: Node,
        constraints: Vec<AttrConstraint>,
        callback: impl Fn(ProofMonitor) + Send + Sync + 'static,
    ) {
        if let Some(monitor) = self.query_direct(&subject, &object, &constraints) {
            callback(monitor);
            return;
        }
        self.state.watches.lock().push(ProofWatch {
            subject,
            object,
            constraints,
            callback: Box::new(callback),
        });
    }

    fn run_watches(&self) {
        let mut pending = std::mem::take(&mut *self.state.watches.lock());
        let mut still_waiting = Vec::new();
        for watch in pending.drain(..) {
            match self.query_direct(&watch.subject, &watch.object, &watch.constraints) {
                Some(monitor) => (watch.callback)(monitor),
                None => still_waiting.push(watch),
            }
        }
        self.state.watches.lock().extend(still_waiting);
    }

    /// Honors a signed revocation: verifies it against the stored
    /// credential, marks it revoked, and pushes events to subscribers and
    /// proof monitors. Returns the number of notifications delivered.
    ///
    /// # Errors
    ///
    /// [`WalletError::UnknownDelegation`] if the delegation is not stored;
    /// [`WalletError::Validation`] if the notice fails verification.
    pub fn revoke(&self, revocation: &SignedRevocation) -> Result<usize, WalletError> {
        let id = revocation.delegation_id();
        let _span = drbac_obs::span!("drbac.wallet.revoke");
        drbac_obs::static_counter!("drbac.wallet.revoke.count").inc();
        let cert = self.get(id).ok_or(WalletError::UnknownDelegation(id))?;
        revocation.verify_against(&cert)?;
        self.journal(&StoreEvent::Revoke(revocation.clone()))?;
        self.state.graph.revoke(id);
        self.state.proof_cache.invalidate_dep(id);
        Ok(self.push_event(DelegationEvent {
            delegation: id,
            reason: InvalidationReason::Revoked,
        }))
    }

    /// Drops expired delegations, notifying their subscribers and
    /// monitors. Returns `(expired_count, notifications)`. Drive this
    /// after advancing the clock.
    pub fn process_expiries(&self) -> (usize, usize) {
        let now = self.now();
        // Route via the `e/` expiry index when attached (one range scan
        // over exactly the lapsed entries), else the in-memory min-heap;
        // both are O(expired), not O(wallet), and both feed the
        // `drbac.wallet.expiry.scanned.count` counter.
        let expired: Vec<DelegationId> = match self.planned_expired(now) {
            Some(ids) => ids,
            None => self.heap_expired(now),
        };
        for id in &expired {
            self.journal_best_effort(&StoreEvent::Expire(*id));
        }
        let mut notifications = 0;
        for id in &expired {
            self.state.graph.remove(*id);
            self.state.proof_cache.invalidate_dep(*id);
        }
        for id in &expired {
            notifications += self.push_event(DelegationEvent {
                delegation: *id,
                reason: InvalidationReason::Expired,
            });
        }
        drbac_obs::static_counter!("drbac.wallet.expired.count").add(expired.len() as u64);
        (expired.len(), notifications)
    }

    /// Delivers an event to local subscribers and proof monitors. Used
    /// directly by the network layer when a remote wallet pushes an
    /// invalidation for a cached credential.
    pub fn push_event(&self, event: DelegationEvent) -> usize {
        drbac_obs::static_counter!("drbac.wallet.push_event.count").inc();
        drbac_obs::event!(
            "drbac.wallet.push_event",
            "reason" => event.reason.to_string(),
        );
        // Journal the invalidation if it is news to this wallet (the
        // revoke()/process_expiries() paths journal before calling here,
        // in which case the graph already reflects it).
        let already_known = match event.reason {
            InvalidationReason::Revoked => self.state.graph.is_revoked(event.delegation),
            InvalidationReason::Expired => !self.state.graph.contains(event.delegation),
        };
        if !already_known {
            self.journal_best_effort(&match event.reason {
                InvalidationReason::Revoked => StoreEvent::RevokeMark(event.delegation),
                InvalidationReason::Expired => StoreEvent::Expire(event.delegation),
            });
        }
        // Mirror the invalidation into the local graph and drop every
        // cached proof depending on it FIRST, so that callbacks
        // re-entering the wallet (e.g. a resilient session immediately
        // re-authorizing) never see the dead credential — cached or live.
        if event.reason == InvalidationReason::Revoked {
            self.state.graph.revoke(event.delegation);
        } else {
            self.state.graph.remove(event.delegation);
        }
        self.state.cache_meta.lock().remove(&event.delegation);
        self.state.proof_cache.invalidate_dep(event.delegation);

        let mut delivered = 0;
        // Snapshot subscriber callbacks and fire them without holding the
        // lock (callbacks may re-enter the wallet).
        let callbacks: Vec<SubCallback> = self
            .state
            .subscriptions
            .lock()
            .get(&event.delegation)
            .map(|subs| subs.iter().map(|(_, cb)| Arc::clone(cb)).collect())
            .unwrap_or_default();
        for cb in callbacks {
            cb(event);
            delivered += 1;
        }
        // Collect live monitors and deliver with the lock released:
        // monitor callbacks may also call back into this wallet.
        let cores: Vec<Arc<MonitorCore>> = {
            let mut monitors = self.state.monitors.lock();
            match monitors.get_mut(&event.delegation) {
                Some(list) => {
                    let cores: Vec<_> = list.iter().filter_map(Weak::upgrade).collect();
                    list.retain(|weak| weak.strong_count() > 0);
                    cores
                }
                None => Vec::new(),
            }
        };
        for core in cores {
            core.deliver(event);
            delivered += 1;
        }
        delivered
    }

    /// Read access to a point-in-time [`DelegationGraph`] snapshot of the
    /// sharded store, for diagnostics, experiments, and oracle checks.
    /// This materializes the whole graph — prefer the direct accessors
    /// ([`Wallet::is_revoked`], [`Wallet::get`], the query methods) on
    /// hot paths.
    pub fn with_graph<T>(&self, f: impl FnOnce(&DelegationGraph) -> T) -> T {
        // A whole-wallet view: a lazily booted wallet must pull the
        // rest of its credentials from the index first.
        self.hydrate_all();
        f(&self.state.graph.snapshot())
    }

    /// Serializes the wallet's durable contents — credentials, provided
    /// support proofs, signed declarations, and the revocation set — into
    /// the canonical wire format, for persistence across restarts.
    ///
    /// Volatile state (subscriptions, monitors, watches, cache TTLs) is
    /// deliberately not persisted: monitors belong to live sessions, and
    /// cached entries must be revalidated after a restart anyway.
    pub fn export_bytes(&self) -> Vec<u8> {
        use drbac_core::{Encode, Writer};
        // The export must cover *everything* — a lazily booted wallet
        // would otherwise snapshot only its hydrated neighborhoods.
        self.hydrate_all();
        let graph = self.state.graph.snapshot();
        let mut w = Writer::tagged(b"drbac-wallet-v1");

        let certs: Vec<Arc<SignedDelegation>> = graph.iter().cloned().collect();
        w.u64(certs.len() as u64);
        for cert in &certs {
            cert.as_ref().encode(&mut w);
        }

        let supports = graph.all_supports();
        w.u64(supports.len() as u64);
        for support in &supports {
            support.encode(&mut w);
        }

        let declarations = self.state.signed_declarations.lock();
        w.u64(declarations.len() as u64);
        for decl in declarations.iter() {
            w.bytes(&decl.to_bytes());
        }

        let revoked: Vec<DelegationId> = graph.revoked().iter().copied().collect();
        w.u64(revoked.len() as u64);
        for id in revoked {
            w.bytes(&id.0);
        }
        w.finish()
    }

    /// Restores contents exported by [`Wallet::export_bytes`] into this
    /// wallet. Every credential and declaration is re-verified; entries
    /// that no longer verify (e.g. expired since export) are skipped and
    /// counted in [`ImportReport::rejected`].
    ///
    /// # Errors
    ///
    /// [`WalletError::Validation`] wrapping a decode failure for
    /// structurally malformed input.
    pub fn import_bytes(&self, bytes: &[u8]) -> Result<ImportReport, WalletError> {
        use drbac_core::{Decode, Proof, Reader};
        let malformed = |e: drbac_core::DecodeError| {
            WalletError::Validation(drbac_core::ValidationError::Model(
                drbac_core::ModelError::InvalidName(format!("wallet image: {e}")),
            ))
        };
        let mut r = Reader::tagged(bytes, b"drbac-wallet-v1").map_err(malformed)?;
        let now = self.now();
        let mut report = ImportReport::default();

        let n = r.u64().map_err(malformed)?;
        let mut certs = Vec::new();
        for _ in 0..n {
            certs.push(Arc::new(
                SignedDelegation::decode(&mut r).map_err(malformed)?,
            ));
        }
        let n = r.u64().map_err(malformed)?;
        let mut supports = Vec::new();
        for _ in 0..n {
            supports.push(Proof::decode(&mut r).map_err(malformed)?);
        }
        let n = r.u64().map_err(malformed)?;
        let mut declarations = Vec::new();
        for _ in 0..n {
            let blob = r.bytes().map_err(malformed)?;
            declarations
                .push(drbac_core::SignedAttrDeclaration::from_bytes(blob).map_err(malformed)?);
        }
        let n = r.u64().map_err(malformed)?;
        let mut revoked = Vec::new();
        for _ in 0..n {
            let id: [u8; 32] = r
                .bytes()
                .map_err(malformed)?
                .try_into()
                .map_err(|_| malformed(drbac_core::DecodeError::UnexpectedEof))?;
            revoked.push(DelegationId(id));
        }
        r.finish().map_err(malformed)?;

        // Declarations first (constraint bases), then supports, then
        // credentials, then revocations.
        for decl in declarations {
            match self.publish_declaration(&decl) {
                Ok(()) => report.declarations += 1,
                Err(_) => report.rejected += 1,
            }
        }
        for support in &supports {
            self.journal_best_effort(&StoreEvent::Support(support.clone()));
        }
        for support in supports {
            self.state.graph.provide_support(support);
        }
        for cert in certs {
            if cert.verify(now).is_err() {
                report.rejected += 1;
                continue;
            }
            self.journal_best_effort(&StoreEvent::Publish(Arc::clone(&cert)));
            self.insert_cert(cert);
            report.credentials += 1;
        }
        for id in revoked {
            self.journal_best_effort(&StoreEvent::RevokeMark(id));
            self.state.graph.revoke(id);
            report.revocations += 1;
        }
        // An import can add and revoke in one sweep — reset the cache
        // wholesale rather than reasoning per entry.
        self.state.proof_cache.clear();
        self.run_watches();
        Ok(report)
    }

    /// Clears *all* state — durable and volatile — returning the wallet
    /// to empty, the way a process crash loses everything in memory.
    /// Pair with [`Wallet::recover_from_store`] to model a full
    /// crash/restart cycle against a write-ahead store.
    pub fn wipe(&self) {
        self.state.graph.clear();
        self.state.signed_declarations.lock().clear();
        self.clear_volatile();
    }

    /// Rebuilds this wallet's durable contents from `store`: restores
    /// the latest valid snapshot (if any), then replays the log tail on
    /// top of it. A torn or corrupt log tail is truncated by the store,
    /// never a panic. Every credential is re-verified on the way in;
    /// events that no longer apply (e.g. replaying a publication that
    /// has since expired) are counted as skipped.
    ///
    /// The attached journal (if any) is suspended for the duration so
    /// recovery does not re-journal its own replay.
    ///
    /// # Errors
    ///
    /// [`WalletError::Storage`] if the store's medium fails. Corruption
    /// is *not* an error — it is reported in the [`RecoveryReport`].
    pub fn recover_from_store(
        &self,
        store: &Arc<WalletStore>,
    ) -> Result<RecoveryReport, WalletError> {
        let _timer = drbac_obs::static_histogram!("drbac.store.replay.ns").start_timer();
        let suspended = self.detach_journal();
        let result = self.recover_from_store_inner(store);
        if let Some(journal) = suspended {
            self.attach_journal(journal);
        }
        result
    }

    fn recover_from_store_inner(
        &self,
        store: &Arc<WalletStore>,
    ) -> Result<RecoveryReport, WalletError> {
        let recovered = store
            .recover()
            .map_err(|e| WalletError::Storage(e.to_string()))?;
        let mut report = RecoveryReport {
            truncated_bytes: recovered.truncated_bytes,
            torn_tail: recovered.torn_tail,
            ..RecoveryReport::default()
        };
        if let Some((_, image)) = &recovered.snapshot {
            match self.import_bytes(image) {
                Ok(snapshot) => {
                    report.from_snapshot = true;
                    report.snapshot = snapshot;
                }
                // A snapshot that does not decode is treated like any
                // other damage: fall through to pure log replay.
                Err(_) => report.skipped += 1,
            }
        }
        for (_, event) in recovered.events {
            match self.apply_event(event) {
                Ok(()) => report.replayed += 1,
                Err(_) => report.skipped += 1,
            }
        }
        Ok(report)
    }

    /// Applies one replayed journal record through the ordinary (fully
    /// re-verifying) mutation paths.
    pub(crate) fn apply_event(&self, event: StoreEvent) -> Result<(), WalletError> {
        match event {
            StoreEvent::Publish(cert) => {
                self.publish(cert, vec![])?;
            }
            StoreEvent::Declare(decl) => self.publish_declaration(&decl)?,
            StoreEvent::Support(proof) => self.provide_support(proof)?,
            StoreEvent::Absorb { proof, source } => self.absorb_proof(&proof, &source)?,
            StoreEvent::Revoke(revocation) => {
                self.revoke(&revocation)?;
            }
            StoreEvent::RevokeMark(id) => {
                self.state.graph.revoke(id);
                self.state.proof_cache.invalidate_dep(id);
            }
            StoreEvent::Expire(id) => {
                self.state.graph.remove(id);
                self.state.cache_meta.lock().remove(&id);
                self.state.proof_cache.invalidate_dep(id);
            }
        }
        Ok(())
    }
}

/// Counts from a [`Wallet::import_bytes`] restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImportReport {
    /// Credentials restored (re-verified).
    pub credentials: usize,
    /// Signed declarations restored.
    pub declarations: usize,
    /// Revocation marks restored.
    pub revocations: usize,
    /// Entries skipped because they no longer verify.
    pub rejected: usize,
}

/// Counts from a [`Wallet::recover_from_store`] restore.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether a valid snapshot image was restored.
    pub from_snapshot: bool,
    /// Import counts from the snapshot image (all zero when none).
    pub snapshot: ImportReport,
    /// Log records replayed successfully on top of the snapshot.
    pub replayed: usize,
    /// Log records (or an undecodable snapshot) that no longer applied.
    pub skipped: usize,
    /// Log-tail bytes dropped because they were torn or corrupt.
    pub truncated_bytes: u64,
    /// Whether the dropped bytes were an ordinary torn final record.
    pub torn_tail: bool,
}

/// Recursively registers every support proof found in `proof`.
fn register_supports(graph: &ShardedGraph, proof: &Proof) {
    for step in proof.steps() {
        for support in step.supports() {
            graph.provide_support(support.clone());
            register_supports(graph, support);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_core::{AttrDeclaration, AttrOp, LocalEntity, ProofStep};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::atomic::AtomicUsize;

    struct Fx {
        a: LocalEntity,
        b: LocalEntity,
        m: LocalEntity,
        clock: SimClock,
        wallet: Wallet,
    }

    fn fx() -> Fx {
        let mut rng = StdRng::seed_from_u64(61);
        let g = SchnorrGroup::test_256();
        let clock = SimClock::new();
        Fx {
            a: LocalEntity::generate("A", g.clone(), &mut rng),
            b: LocalEntity::generate("B", g.clone(), &mut rng),
            m: LocalEntity::generate("M", g, &mut rng),
            wallet: Wallet::new("w.example", clock.clone()),
            clock,
        }
    }

    #[test]
    fn publish_and_query_direct() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        assert_eq!(f.wallet.len(), 1);
        let monitor = f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .expect("proof");
        assert!(monitor.is_valid());
        assert_eq!(monitor.proof().chain_len(), 1);
    }

    #[test]
    fn publish_rejects_bad_credential() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .expires(Timestamp(0))
                .sign(&f.a)
                .unwrap();
        f.clock.advance(Ticks(10));
        assert!(matches!(
            f.wallet.publish(cert, vec![]),
            Err(WalletError::Validation(ValidationError::Expired { .. }))
        ));
    }

    #[test]
    fn third_party_publication_requires_support() {
        let f = fx();
        let member = f.a.role("member");
        let cert =
            f.b.delegate(Node::entity(&f.m), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap();
        // No support provided and none derivable: rejected.
        assert!(matches!(
            f.wallet.publish(cert.clone(), vec![]),
            Err(WalletError::SupportNotProvided { .. })
        ));
        // With the issuer-provided support proof: accepted.
        let grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.a)
                .unwrap();
        let support = Proof::from_steps(vec![ProofStep::new(grant)]).unwrap();
        f.wallet.publish(cert, vec![support]).unwrap();
        let monitor = f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(member), &[]);
        assert!(monitor.is_some());
    }

    #[test]
    fn invalid_support_proof_rejected_at_publication() {
        let f = fx();
        let member = f.a.role("member");
        let cert =
            f.b.delegate(Node::entity(&f.m), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap();
        // Support proof signed by the wrong party (m, not a) fails.
        let bogus_grant =
            f.b.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.b)
                .unwrap();
        let bogus = Proof::from_steps(vec![ProofStep::new(bogus_grant)]).unwrap();
        assert!(matches!(
            f.wallet.publish(cert, vec![bogus]),
            Err(WalletError::Validation(_))
        ));
    }

    #[test]
    fn revocation_notifies_monitor_and_subscriber() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let id = f.wallet.publish(cert.clone(), vec![]).unwrap();

        let monitor = f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();
        let events = Arc::new(AtomicUsize::new(0));
        let events2 = Arc::clone(&events);
        f.wallet.subscribe(id, move |e| {
            assert_eq!(e.reason, InvalidationReason::Revoked);
            events2.fetch_add(1, Ordering::SeqCst);
        });

        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        let delivered = f.wallet.revoke(&revocation).unwrap();
        assert_eq!(delivered, 2, "one subscription + one monitor");
        assert_eq!(events.load(Ordering::SeqCst), 1);
        assert!(!monitor.is_valid());

        // Revoked delegation no longer answers queries.
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .is_none());
    }

    #[test]
    fn revocation_of_unknown_delegation_errors() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let revocation = SignedRevocation::revoke(&cert, &f.a, Timestamp(0)).unwrap();
        assert!(matches!(
            f.wallet.revoke(&revocation),
            Err(WalletError::UnknownDelegation(_))
        ));
    }

    #[test]
    fn expiry_processing_notifies_and_purges() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .expires(Timestamp(10))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        let monitor = f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();

        f.clock.advance(Ticks(11));
        let (expired, notified) = f.wallet.process_expiries();
        assert_eq!(expired, 1);
        assert_eq!(notified, 1);
        assert!(!monitor.is_valid());
        assert!(f.wallet.is_empty());
    }

    #[test]
    fn unsubscribe_stops_events() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let id = f.wallet.publish(cert.clone(), vec![]).unwrap();
        let events = Arc::new(AtomicUsize::new(0));
        let events2 = Arc::clone(&events);
        let sub = f.wallet.subscribe(id, move |_| {
            events2.fetch_add(1, Ordering::SeqCst);
        });
        assert!(f.wallet.unsubscribe(sub));
        assert!(!f.wallet.unsubscribe(sub));
        let revocation = SignedRevocation::revoke(&cert, &f.a, Timestamp(0)).unwrap();
        f.wallet.revoke(&revocation).unwrap();
        assert_eq!(events.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn constraint_queries_respect_declarations() {
        let f = fx();
        let bw = f.a.attr("BW", AttrOp::Min);
        let decl = drbac_core::SignedAttrDeclaration::sign(
            AttrDeclaration::new(bw.clone(), 200.0).unwrap(),
            &f.a,
        )
        .unwrap();
        f.wallet.publish_declaration(&decl).unwrap();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .with_attr(bw.clone(), 100.0)
                .unwrap()
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();

        let ok = f.wallet.query_direct(
            &Node::entity(&f.m),
            &Node::role(f.a.role("r")),
            &[AttrConstraint::at_least(bw.clone(), 100.0)],
        );
        assert!(ok.is_some());
        assert_eq!(ok.unwrap().summary().get(&bw), Some(100.0));
        let too_much = f.wallet.query_direct(
            &Node::entity(&f.m),
            &Node::role(f.a.role("r")),
            &[AttrConstraint::at_least(bw, 150.0)],
        );
        assert!(too_much.is_none());
    }

    #[test]
    fn watch_for_proof_fires_on_publication() {
        let f = fx();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        f.wallet.watch_for_proof(
            Node::entity(&f.m),
            Node::role(f.a.role("r")),
            vec![],
            move |monitor| {
                assert!(monitor.is_valid());
                fired2.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 0);
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn watch_fires_immediately_if_proof_exists() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        f.wallet.watch_for_proof(
            Node::entity(&f.m),
            Node::role(f.a.role("r")),
            vec![],
            move |_| {
                fired2.fetch_add(1, Ordering::SeqCst);
            },
        );
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn absorb_proof_caches_with_ttl_metadata() {
        let f = fx();
        let tag = drbac_core::DiscoveryTag::new("home.example").with_ttl(Ticks(30));
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .subject_tag(tag)
                .sign(&f.a)
                .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        let source = WalletAddr::new("remote.example");
        f.wallet.absorb_proof(&proof, &source).unwrap();
        assert_eq!(f.wallet.len(), 1);
        let entry = f.wallet.cache_entry(cert.id()).expect("cache metadata");
        assert_eq!(entry.source, source);
        assert_eq!(entry.ttl, Ticks(30));
        assert!(f.wallet.stale_entries().is_empty());
        f.clock.advance(Ticks(31));
        assert_eq!(f.wallet.stale_entries(), vec![cert.id()]);
    }

    #[test]
    fn push_event_handles_remote_invalidations() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        f.wallet
            .absorb_proof(&proof, &WalletAddr::new("remote"))
            .unwrap();
        let monitor = f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .unwrap();
        // A remote wallet pushes "revoked" for the cached credential.
        let n = f.wallet.push_event(DelegationEvent {
            delegation: cert.id(),
            reason: InvalidationReason::Revoked,
        });
        assert_eq!(n, 1);
        assert!(!monitor.is_valid());
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .is_none());
    }

    #[test]
    fn dropped_monitors_are_garbage_collected() {
        let f = fx();
        let role = Node::role(f.a.role("r"));
        f.wallet
            .publish(
                f.a.delegate(Node::entity(&f.m), role.clone())
                    .sign(&f.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        f.wallet.set_query_cache(false); // each query builds a fresh monitor
        for _ in 0..50 {
            let m = f
                .wallet
                .query_direct(&Node::entity(&f.m), &role, &[])
                .unwrap();
            drop(m);
        }
        // One more query; GC keeps the registration list from growing
        // without bound (only the newest registration is live).
        let keep = f
            .wallet
            .query_direct(&Node::entity(&f.m), &role, &[])
            .unwrap();
        assert_eq!(f.wallet.live_monitor_registrations(), 1);
        drop(keep);
    }

    #[test]
    fn query_cache_hits_and_invalidates() {
        let f = fx();
        let role = Node::role(f.a.role("r"));
        let cert =
            f.a.delegate(Node::entity(&f.m), role.clone())
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert.clone(), vec![]).unwrap();

        // First query does real work; second hits the cache (zero stats).
        let (m1, s1) = f
            .wallet
            .query_direct_with_stats(&Node::entity(&f.m), &role, &[]);
        assert!(m1.is_some());
        assert!(s1.edges_considered > 0);
        let (m2, s2) = f
            .wallet
            .query_direct_with_stats(&Node::entity(&f.m), &role, &[]);
        assert!(m2.is_some());
        assert_eq!(s2, SearchStats::default(), "cache hit does no search work");
        // Cached monitors are still real monitors.
        let m2 = m2.unwrap();
        assert!(m2.is_valid());

        // Negative answers cache too.
        let missing = Node::role(f.a.role("missing"));
        let (n1, ns1) = f
            .wallet
            .query_direct_with_stats(&Node::entity(&f.m), &missing, &[]);
        assert!(n1.is_none() && ns1.edges_considered > 0);
        let (n2, ns2) = f
            .wallet
            .query_direct_with_stats(&Node::entity(&f.m), &missing, &[]);
        assert!(n2.is_none());
        assert_eq!(ns2, SearchStats::default());

        // A revocation invalidates: the cached positive answer disappears
        // and the monitor from the cached proof is notified.
        let revocation = SignedRevocation::revoke(&cert, &f.a, f.clock.now()).unwrap();
        f.wallet.revoke(&revocation).unwrap();
        assert!(!m2.is_valid());
        let (m3, _) = f
            .wallet
            .query_direct_with_stats(&Node::entity(&f.m), &role, &[]);
        assert!(m3.is_none());

        // Publication invalidates negative answers.
        f.wallet
            .publish(
                f.a.delegate(Node::entity(&f.m), missing.clone())
                    .sign(&f.a)
                    .unwrap(),
                vec![],
            )
            .unwrap();
        let (n3, _) = f
            .wallet
            .query_direct_with_stats(&Node::entity(&f.m), &missing, &[]);
        assert!(n3.is_some());
    }

    #[test]
    fn query_cache_respects_time_and_toggle() {
        let f = fx();
        let role = Node::role(f.a.role("r"));
        let cert =
            f.a.delegate(Node::entity(&f.m), role.clone())
                .expires(Timestamp(10))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &role, &[])
            .is_some());
        // Advancing the clock alone (no generation change) must not serve
        // the stale positive answer once the credential expired.
        f.clock.advance(drbac_core::Ticks(11));
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &role, &[])
            .is_none());

        // Disabling the cache still answers correctly.
        f.wallet.set_query_cache(false);
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &role, &[])
            .is_none());
    }

    #[test]
    fn provide_support_validates_before_accepting() {
        let f = fx();
        let member = f.a.role("member");
        // A support proving the wrong thing (expired credential) is
        // rejected; a valid one is accepted and indexed.
        let expired_grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .expires(Timestamp(0))
                .sign(&f.a)
                .unwrap();
        f.clock.advance(drbac_core::Ticks(5));
        let stale = Proof::from_steps(vec![drbac_core::ProofStep::new(expired_grant)]).unwrap();
        assert!(matches!(
            f.wallet.provide_support(stale),
            Err(WalletError::Validation(_))
        ));

        let fresh_grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .serial(2)
                .sign(&f.a)
                .unwrap();
        let fresh = Proof::from_steps(vec![drbac_core::ProofStep::new(fresh_grant)]).unwrap();
        f.wallet.provide_support(fresh).unwrap();
        // The support now authorizes a third-party publication without
        // resending it.
        let enrollment =
            f.b.delegate(Node::entity(&f.m), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap();
        f.wallet.publish(enrollment, vec![]).unwrap();
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(member), &[])
            .is_some());
        assert!(f.wallet.unsupported_third_party().is_empty());
    }

    #[test]
    fn export_import_round_trip_restores_answers() {
        let f = fx();
        let member = f.a.role("member");
        // Third-party credential with support, a declaration, and a
        // revocation — all four durable categories.
        let bw = f.a.attr("bw", drbac_core::AttrOp::Min);
        let decl = drbac_core::SignedAttrDeclaration::sign(
            drbac_core::AttrDeclaration::new(bw.clone(), 100.0).unwrap(),
            &f.a,
        )
        .unwrap();
        f.wallet.publish_declaration(&decl).unwrap();

        let grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(member.clone()))
                .sign(&f.a)
                .unwrap();
        let support = Proof::from_steps(vec![drbac_core::ProofStep::new(grant)]).unwrap();
        let enrollment =
            f.b.delegate(Node::entity(&f.m), Node::role(member.clone()))
                .sign(&f.b)
                .unwrap();
        f.wallet.publish(enrollment, vec![support]).unwrap();

        let dead =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("dead")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(dead.clone(), vec![]).unwrap();
        let revocation = SignedRevocation::revoke(&dead, &f.a, f.clock.now()).unwrap();
        f.wallet.revoke(&revocation).unwrap();

        let image = f.wallet.export_bytes();
        let restored = Wallet::new("restored", f.clock.clone());
        let report = restored.import_bytes(&image).unwrap();
        assert_eq!(report.rejected, 0);
        assert_eq!(report.declarations, 1);
        assert!(report.credentials >= 3);
        assert_eq!(report.revocations, 1);

        // Same answers as the original: member provable, dead role not.
        assert!(restored
            .query_direct(&Node::entity(&f.m), &Node::role(member), &[])
            .is_some());
        assert!(restored
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("dead")), &[])
            .is_none());
        // Declarations restored: constraint uses the declared base.
        assert_eq!(restored.signed_declarations().len(), 1);
    }

    #[test]
    fn import_rejects_expired_and_garbage() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .expires(Timestamp(5))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        let image = f.wallet.export_bytes();

        // Time passes beyond the expiry: the restored wallet skips it.
        f.clock.advance(drbac_core::Ticks(10));
        let restored = Wallet::new("restored", f.clock.clone());
        let report = restored.import_bytes(&image).unwrap();
        assert_eq!(report.credentials, 0);
        assert_eq!(report.rejected, 1);

        // Garbage fails cleanly.
        assert!(restored.import_bytes(b"not a wallet image").is_err());
        let mut truncated = image.clone();
        truncated.truncate(image.len() / 2);
        assert!(restored.import_bytes(&truncated).is_err());
    }

    #[test]
    fn monitor_external_proof_validates_against_local_revocations() {
        let f = fx();
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        let proof = Proof::from_steps(vec![ProofStep::new(cert.clone())]).unwrap();
        assert!(f.wallet.monitor_external_proof(proof.clone()).is_ok());
        // After learning of a revocation, the same proof is rejected.
        f.wallet.publish(cert.clone(), vec![]).unwrap();
        let revocation = SignedRevocation::revoke(&cert, &f.a, Timestamp(0)).unwrap();
        f.wallet.revoke(&revocation).unwrap();
        assert!(matches!(
            f.wallet.monitor_external_proof(proof),
            Err(WalletError::Validation(ValidationError::Revoked(_)))
        ));
    }

    #[test]
    fn journaled_mutations_survive_wipe_and_recovery() {
        let f = fx();
        let store = Arc::new(drbac_store::WalletStore::in_memory());
        f.wallet.attach_journal(Arc::clone(&store));

        // Delegation chain: A hands assignment rights to B, B enrolls M.
        let grant =
            f.a.delegate(Node::entity(&f.b), Node::role_admin(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(grant, vec![]).unwrap();
        let enroll =
            f.b.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.b)
                .unwrap();
        f.wallet.publish(enroll.clone(), vec![]).unwrap();
        // And one revocation.
        let doomed =
            f.a.delegate(Node::entity(&f.b), Node::role(f.a.role("other")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(doomed.clone(), vec![]).unwrap();
        let revocation = SignedRevocation::revoke(&doomed, &f.a, f.clock.now()).unwrap();
        f.wallet.revoke(&revocation).unwrap();

        f.wallet.wipe();
        assert!(f.wallet.is_empty());

        let report = f.wallet.recover_from_store(&store).unwrap();
        assert!(!report.from_snapshot);
        assert_eq!(report.replayed, 4, "3 publishes + 1 revocation");
        assert_eq!(report.skipped, 0);
        assert_eq!(report.truncated_bytes, 0);
        assert_eq!(f.wallet.len(), 3);
        assert!(f.wallet.with_graph(|g| g.is_revoked(doomed.id())));
        // The third-party chain still answers.
        assert!(f
            .wallet
            .query_direct(&Node::entity(&f.m), &Node::role(f.a.role("r")), &[])
            .is_some());
        // Recovery restored the journal it suspended.
        assert!(f.wallet.journaling());
    }

    #[test]
    fn recovery_from_snapshot_plus_tail_and_torn_log() {
        let f = fx();
        let store = Arc::new(drbac_store::WalletStore::in_memory());
        f.wallet.attach_journal(Arc::clone(&store));

        let first =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(first, vec![]).unwrap();
        // Snapshot covers the first publish; the log is compacted.
        let wallet = f.wallet.clone();
        store
            .install_snapshot(move || wallet.export_bytes())
            .unwrap();
        let second =
            f.a.delegate(Node::entity(&f.b), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(second, vec![]).unwrap();

        // Tear the final record on a copy of the log.
        let mut bytes = store.log_bytes().unwrap();
        let cut = bytes.len() - 5;
        bytes.truncate(cut);
        let torn = Arc::new(drbac_store::WalletStore::from_log_bytes(bytes));
        // A torn log with no snapshot medium: only the snapshot-covered
        // first publish would be lost, so re-plant the snapshot by
        // recovering from the original store's snapshot via export.
        let restored = Wallet::new("restored", f.clock.clone());
        let report = restored.recover_from_store(&torn).unwrap();
        assert!(report.torn_tail);
        assert!(report.truncated_bytes > 0);
        assert_eq!(report.replayed, 0, "the only tail record was torn");

        // The intact store recovers snapshot + tail.
        let full = Wallet::new("full", f.clock.clone());
        let report = full.recover_from_store(&store).unwrap();
        assert!(report.from_snapshot);
        assert_eq!(report.snapshot.credentials, 1);
        assert_eq!(report.replayed, 1);
        assert_eq!(full.len(), 2);
    }

    #[test]
    fn replay_skips_events_that_no_longer_apply() {
        let f = fx();
        let store = Arc::new(drbac_store::WalletStore::in_memory());
        f.wallet.attach_journal(Arc::clone(&store));
        let shortlived =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .expires(Timestamp(5))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(shortlived, vec![]).unwrap();

        // The clock moves past expiry before the crash is recovered.
        f.clock.advance(Ticks(10));
        f.wallet.wipe();
        let report = f.wallet.recover_from_store(&store).unwrap();
        assert_eq!(report.replayed, 0);
        assert_eq!(report.skipped, 1);
        assert!(f.wallet.is_empty());
    }

    #[test]
    fn push_event_journals_remote_invalidations_once() {
        let f = fx();
        let store = Arc::new(drbac_store::WalletStore::in_memory());
        f.wallet.attach_journal(Arc::clone(&store));
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert.clone(), vec![]).unwrap();

        // A remote push (no signed notice in hand) journals a mark…
        f.wallet.push_event(DelegationEvent {
            delegation: cert.id(),
            reason: InvalidationReason::Revoked,
        });
        // …and a duplicate push does not journal again.
        f.wallet.push_event(DelegationEvent {
            delegation: cert.id(),
            reason: InvalidationReason::Revoked,
        });
        assert_eq!(store.status().records, 2, "one publish + one mark");

        f.wallet.wipe();
        f.wallet.recover_from_store(&store).unwrap();
        assert!(f.wallet.with_graph(|g| g.is_revoked(cert.id())));
    }

    #[test]
    fn detach_journal_stops_logging() {
        let f = fx();
        let store = Arc::new(drbac_store::WalletStore::in_memory());
        f.wallet.attach_journal(Arc::clone(&store));
        let cert =
            f.a.delegate(Node::entity(&f.m), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(cert, vec![]).unwrap();
        assert_eq!(store.status().records, 1);

        assert!(f.wallet.detach_journal().is_some());
        assert!(!f.wallet.journaling());
        let other =
            f.a.delegate(Node::entity(&f.b), Node::role(f.a.role("r")))
                .sign(&f.a)
                .unwrap();
        f.wallet.publish(other, vec![]).unwrap();
        assert_eq!(store.status().records, 1, "unjournaled after detach");
    }
}
