//! Lock-sharded metrics registry.
//!
//! Instruments are created (and snapshotted) under a per-shard
//! `RwLock<HashMap<..>>`, but once a handle is held every update is a
//! relaxed atomic operation — hot paths never contend on the registry.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::RwLock;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time level that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets. Bucket `b` counts values `v` with
/// `bit_length(v) == b`, i.e. bucket 0 holds 0, bucket 1 holds 1,
/// bucket 2 holds 2..=3, and so on up to `u64::MAX`.
const BUCKETS: usize = 65;

/// Write shards per histogram. Like the registry's name shards, these
/// exist so concurrent recorders (daemon connection handlers, prover
/// pools) do not all hammer one cache line; each thread is striped onto
/// a fixed shard. Snapshots merge the shards deterministically (index
/// order, saturating adds), so the reported totals and quantiles do not
/// depend on which thread recorded where.
const HIST_SHARDS: usize = 8;

/// One write stripe of a [`Histogram`].
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for HistShard {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Adds `v` to an atomic with saturation instead of wrap-around, so a
/// sum fed pathological samples (`u64::MAX` nanoseconds) pins at the
/// ceiling rather than lying small.
fn saturating_fetch_add(cell: &AtomicU64, v: u64) {
    if v == 0 {
        return;
    }
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(v);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// The shard index this thread records into, assigned round-robin on
/// first touch so a thread pool spreads evenly across the stripes.
fn my_shard() -> usize {
    use std::sync::atomic::AtomicUsize;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % HIST_SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A log₂-bucketed histogram of `u64` observations (typically
/// nanoseconds), write-sharded by thread. Recording is two relaxed
/// atomic adds, one saturating CAS loop, and one max-CAS — all on the
/// recording thread's own stripe, so concurrent recorders do not
/// contend. Bucket math saturates: `0` and `u64::MAX` are valid
/// samples, and overflowing totals pin at `u64::MAX` instead of
/// wrapping or panicking.
pub struct Histogram {
    shards: [HistShard; HIST_SHARDS],
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| HistShard::default()),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        // 0 → bucket 0, u64::MAX → bucket 64: always in range, no
        // shift or index can overflow whatever the sample.
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive) of a bucket, used to report quantiles.
    fn bucket_upper(bucket: usize) -> u64 {
        if bucket == 0 {
            0
        } else if bucket >= 64 {
            u64::MAX
        } else {
            (1u64 << bucket) - 1
        }
    }

    pub fn record(&self, value: u64) {
        let shard = &self.shards[my_shard()];
        saturating_fetch_add(&shard.count, 1);
        saturating_fetch_add(&shard.sum, value);
        self.max.fetch_max(value, Ordering::Relaxed);
        shard.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Times a closure and records its wall-clock nanoseconds.
    pub fn time<T>(&self, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record_duration(start.elapsed());
        out
    }

    /// A guard that records elapsed nanoseconds when dropped.
    pub fn start_timer(self: &Arc<Self>) -> HistogramTimer {
        HistogramTimer {
            histogram: Arc::clone(self),
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .fold(0u64, |acc, s| acc.saturating_add(s.count.load(Ordering::Relaxed)))
    }

    pub fn reset(&self) {
        for shard in &self.shards {
            shard.count.store(0, Ordering::Relaxed);
            shard.sum.store(0, Ordering::Relaxed);
            for b in &shard.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
        self.max.store(0, Ordering::Relaxed);
    }

    /// Merges every write shard (fixed index order, saturating adds —
    /// the result is independent of which threads recorded where) and
    /// summarizes the merged distribution. Quantiles are upper bounds
    /// of the log₂ bucket containing the requested rank.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for shard in &self.shards {
            sum = sum.saturating_add(shard.sum.load(Ordering::Relaxed));
            for (merged, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *merged = merged.saturating_add(b.load(Ordering::Relaxed));
            }
        }
        let count = buckets
            .iter()
            .fold(0u64, |acc, n| acc.saturating_add(*n));
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, n) in buckets.iter().enumerate() {
                seen = seen.saturating_add(*n);
                if seen >= rank {
                    return Self::bucket_upper(i);
                }
            }
            Self::bucket_upper(BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum,
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
            p999: quantile(0.999),
        }
    }
}

/// A point-in-time summary of a [`Histogram`]. Quantiles are upper bounds
/// of the log₂ bucket containing the requested rank.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub p999: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[derive(Debug)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

const SHARDS: usize = 16;

/// A named collection of instruments, sharded by name hash so concurrent
/// handle creation in different subsystems does not contend on one lock.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [RwLock<HashMap<String, Instrument>>; SHARDS],
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, name: &str) -> &RwLock<HashMap<String, Instrument>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// The counter registered under `name`, created on first use.
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: impl Into<String>) -> Arc<Counter> {
        let name = name.into();
        let shard = self.shard(&name);
        if let Some(Instrument::Counter(c)) = shard.read().get(&name) {
            return Arc::clone(c);
        }
        let mut map = shard.write();
        match map
            .entry(name.clone())
            .or_insert_with(|| Instrument::Counter(Arc::new(Counter::default())))
        {
            Instrument::Counter(c) => Arc::clone(c),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&self, name: impl Into<String>) -> Arc<Gauge> {
        let name = name.into();
        let shard = self.shard(&name);
        if let Some(Instrument::Gauge(g)) = shard.read().get(&name) {
            return Arc::clone(g);
        }
        let mut map = shard.write();
        match map
            .entry(name.clone())
            .or_insert_with(|| Instrument::Gauge(Arc::new(Gauge::default())))
        {
            Instrument::Gauge(g) => Arc::clone(g),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// The histogram registered under `name`, created on first use.
    pub fn histogram(&self, name: impl Into<String>) -> Arc<Histogram> {
        let name = name.into();
        let shard = self.shard(&name);
        if let Some(Instrument::Histogram(h)) = shard.read().get(&name) {
            return Arc::clone(h);
        }
        let mut map = shard.write();
        match map
            .entry(name.clone())
            .or_insert_with(|| Instrument::Histogram(Arc::new(Histogram::default())))
        {
            Instrument::Histogram(h) => Arc::clone(h),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Zeroes every instrument. Handles stay valid; concurrent updates are
    /// neither lost wholesale nor double-counted — each in-flight increment
    /// lands either before or after the reset.
    pub fn reset(&self) {
        for shard in &self.shards {
            for instrument in shard.read().values() {
                match instrument {
                    Instrument::Counter(c) => c.reset(),
                    Instrument::Gauge(g) => g.reset(),
                    Instrument::Histogram(h) => h.reset(),
                }
            }
        }
    }

    /// A consistent-enough view of every instrument (each value is read
    /// atomically; the set is whatever is registered at call time).
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            for (name, instrument) in shard.read().iter() {
                match instrument {
                    Instrument::Counter(c) => {
                        snap.counters.insert(name.clone(), c.get());
                    }
                    Instrument::Gauge(g) => {
                        snap.gauges.insert(name.clone(), g.get());
                    }
                    Instrument::Histogram(h) => {
                        snap.histograms.insert(name.clone(), h.snapshot());
                    }
                }
            }
        }
        snap
    }
}

/// All instrument values at one point in time, name-sorted.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Folds another snapshot in (its entries win on name collision).
    pub fn merge(&mut self, other: Snapshot) {
        self.counters.extend(other.counters);
        self.gauges.extend(other.gauges);
        self.histograms.extend(other.histograms);
    }

    /// Counters whose name starts with `prefix`.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// A plain-text table of every instrument, suitable for terminals.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let _ = writeln!(out, "{:<52} {:>14}", "counter", "value");
            for (name, v) in &self.counters {
                let _ = writeln!(out, "{name:<52} {v:>14}");
            }
        }
        if !self.gauges.is_empty() {
            let _ = writeln!(out, "{:<52} {:>14}", "gauge", "value");
            for (name, v) in &self.gauges {
                let _ = writeln!(out, "{name:<52} {v:>14}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(
                out,
                "{:<52} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "histogram", "count", "mean", "p50", "p90", "p99", "p999"
            );
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "{name:<52} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    h.count,
                    format_scaled(h.mean() as u64),
                    format_scaled(h.p50),
                    format_scaled(h.p90),
                    format_scaled(h.p99),
                    format_scaled(h.p999),
                );
            }
        }
        out
    }
}

/// Renders a nanosecond-scale value with a unit suffix.
fn format_scaled(v: u64) -> String {
    if v < 1_000 {
        format!("{v}ns")
    } else if v < 1_000_000 {
        format!("{:.1}us", v as f64 / 1e3)
    } else if v < 1_000_000_000 {
        format!("{:.1}ms", v as f64 / 1e6)
    } else {
        format!("{:.2}s", v as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_and_gauges_round_trip() {
        let r = Registry::new();
        let c = r.counter("drbac.test.ops.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("drbac.test.level.gauge");
        g.set(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        // Same name returns the same instrument.
        assert_eq!(r.counter("drbac.test.ops.count").get(), 5);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        r.counter("drbac.test.x");
        r.gauge("drbac.test.x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 1107);
        assert_eq!(s.max, 1000);
        // Rank 4 of 7 lands in the bucket holding 2..=3.
        assert_eq!(s.p50, 3);
        // Rank 7 of 7 (both p90 and p99) is the 1000 observation; the
        // reported value is its bucket's upper bound.
        assert!(s.p90 >= 1000 && s.p90 <= 1023);
        assert!(s.p99 >= 1000 && s.p99 <= 1023);
    }

    #[test]
    fn histogram_handles_extremes() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, u64::MAX);
        assert_eq!(s.p999, u64::MAX);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let h = Histogram::default();
        // Three samples at the ceiling would wrap a naive u64 sum twice
        // over; the histogram must pin at u64::MAX instead.
        for _ in 0..3 {
            h.record(u64::MAX);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum, u64::MAX, "sum must saturate, not wrap");
        assert_eq!(s.max, u64::MAX);
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn histogram_bucket_math_covers_the_whole_u64_domain() {
        // Every power-of-two boundary (and its neighbours) lands in a
        // bucket without panicking, and the quantile upper bound never
        // undershoots the sample.
        let h = Histogram::default();
        for bit in 0..64u32 {
            let v = 1u64 << bit;
            for sample in [v.saturating_sub(1), v, v.saturating_add(1)] {
                let one = Histogram::default();
                one.record(sample);
                let s = one.snapshot();
                assert_eq!(s.count, 1);
                assert!(s.p50 >= sample, "p50 {} < sample {}", s.p50, sample);
                assert!(s.p999 >= sample);
            }
            h.record(v);
        }
        assert_eq!(h.snapshot().count, 64);
    }

    #[test]
    fn sharded_recording_merges_deterministically() {
        // The same multiset of samples recorded by different thread
        // layouts must yield an identical snapshot: the cross-shard
        // merge is a fixed-order saturating sum, not thread-dependent.
        let samples: Vec<u64> = (0..1000u64).map(|i| i * 37 % 4096).collect();
        let single = Histogram::default();
        for &v in &samples {
            single.record(v);
        }
        let sharded = Arc::new(Histogram::default());
        let workers: Vec<_> = samples
            .chunks(125)
            .map(|chunk| {
                let h = Arc::clone(&sharded);
                let chunk = chunk.to_vec();
                thread::spawn(move || {
                    for v in chunk {
                        h.record(v);
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        assert_eq!(single.snapshot(), sharded.snapshot());
    }

    #[test]
    fn snapshot_prefix_and_merge() {
        let r = Registry::new();
        r.counter("drbac.a.x.count").add(1);
        r.counter("drbac.a.y.count").add(2);
        r.counter("drbac.b.z.count").add(3);
        let snap = r.snapshot();
        let a: Vec<_> = snap.counters_with_prefix("drbac.a.").collect();
        assert_eq!(a, vec![("drbac.a.x.count", 1), ("drbac.a.y.count", 2)]);

        let other = Registry::new();
        other.counter("drbac.c.w.count").add(9);
        let mut merged = snap.clone();
        merged.merge(other.snapshot());
        assert_eq!(merged.counters.len(), 4);
        assert!(merged.render_table().contains("drbac.c.w.count"));
    }

    #[test]
    fn reset_under_concurrent_traffic_is_safe() {
        let r = Arc::new(Registry::new());
        let c = r.counter("drbac.test.traffic.count");
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for _ in 0..100 {
            r.reset();
        }
        for w in writers {
            w.join().unwrap();
        }
        // Whatever survived the last reset is bounded by total traffic.
        assert!(c.get() <= 40_000);
    }

    #[test]
    fn timer_records() {
        let r = Registry::new();
        let h = r.histogram("drbac.test.op.ns");
        {
            let _t = h.start_timer();
        }
        h.time(|| ());
        assert_eq!(h.count(), 2);
    }
}

/// Guard returned by [`Histogram::start_timer`].
pub struct HistogramTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Drop for HistogramTimer {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}
