//! Observability substrate for the dRBAC workspace.
//!
//! Two cooperating halves:
//!
//! * [`metrics`] — a lock-sharded [`metrics::Registry`] of always-on atomic
//!   [`metrics::Counter`]s, [`metrics::Gauge`]s, and log-bucketed
//!   [`metrics::Histogram`]s with p50/p90/p99 summaries. Incrementing an
//!   instrument is a relaxed atomic op; the registry lock is only taken to
//!   create or snapshot instruments.
//! * [`trace`] — a span/event facade over a pluggable [`trace::Recorder`].
//!   With no recorder installed (the default), [`span!`] and [`event!`]
//!   reduce to one relaxed atomic load and never evaluate their fields,
//!   so instrumented hot paths stay near-zero cost.
//!
//! # Metric naming convention
//!
//! `drbac.<crate>.<op>.<unit>` — e.g. `drbac.core.proof.validate.ns`
//! (histogram of nanoseconds), `drbac.wallet.query.cache_hit.count`
//! (counter), `drbac.net.sim.bytes.total` (counter of bytes). Units:
//! `.count` monotonic counts, `.total` monotonic sums of a quantity,
//! `.ns` latency histograms in nanoseconds, `.gauge` point-in-time levels.
//!
//! # Adding a new instrument
//!
//! Use the `static_*!` macros to bind a name to a cached handle on the
//! [`global()`] registry once, then hit the handle on the hot path:
//!
//! ```
//! drbac_obs::static_counter!("drbac.example.op.count").inc();
//! let _timer = drbac_obs::static_histogram!("drbac.example.op.ns").start_timer();
//! ```
//!
//! Subsystems that need isolated accounting (e.g. each simulated network)
//! create their own [`metrics::Registry`] instead of using [`global()`].

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use trace::{
    clear_current_trace, clear_recorder, current_trace_id, enabled, install_recorder,
    set_current_trace, FieldValue, JsonlFileRecorder, Recorder, RingRecorder, Span, TraceEvent,
    TraceKind,
};

use std::sync::OnceLock;

/// The process-wide default registry. Crate-level instrumentation
/// (proof validation, wallets, discovery) records here.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A counter handle on [`global()`], resolved once and cached in a static.
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A gauge handle on [`global()`], resolved once and cached in a static.
#[macro_export]
macro_rules! static_gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A histogram handle on [`global()`], resolved once and cached in a static.
#[macro_export]
macro_rules! static_histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Opens a span guard. Fields are only evaluated while a recorder is
/// installed; the guard emits a `SpanEnd` with elapsed nanoseconds on drop.
///
/// ```
/// let _span = drbac_obs::span!("drbac.example.op", "depth" => 3u64);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::enter($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:literal => $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::Span::enter(
                $name,
                vec![$(($key, $crate::trace::FieldValue::from($value))),+],
            )
        } else {
            $crate::trace::Span::disabled()
        }
    };
}

/// Emits a point event. Fields are only evaluated while a recorder is
/// installed.
///
/// ```
/// drbac_obs::event!("drbac.example.hop", "wallet" => "w1");
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        $crate::trace::emit_event($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:literal => $value:expr),+ $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_event(
                $name,
                vec![$(($key, $crate::trace::FieldValue::from($value))),+],
            );
        }
    };
}
