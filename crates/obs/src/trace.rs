//! Span/event tracing facade.
//!
//! Instrumented code calls [`crate::span!`] / [`crate::event!`]; both check
//! one relaxed atomic ([`enabled`]) and are inert until a [`Recorder`] is
//! installed. Recorders receive [`TraceEvent`]s — span starts, span ends
//! (with elapsed nanoseconds), and point events — and can buffer
//! ([`RingRecorder`]), stream, or aggregate them.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

/// A typed field attached to a span or event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<i32> for FieldValue {
    fn from(v: i32) -> Self {
        Self::I64(i64::from(v))
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        Self::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::U64(v) => write!(f, "{v}"),
            Self::I64(v) => write!(f, "{v}"),
            Self::F64(v) => write!(f, "{v}"),
            Self::Bool(v) => write!(f, "{v}"),
            Self::Str(v) => write!(f, "{v}"),
        }
    }
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    SpanStart,
    SpanEnd,
    Event,
}

impl TraceKind {
    pub fn as_str(self) -> &'static str {
        match self {
            Self::SpanStart => "span_start",
            Self::SpanEnd => "span_end",
            Self::Event => "event",
        }
    }
}

/// One record delivered to a [`Recorder`].
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global emission order.
    pub seq: u64,
    /// Monotonic nanoseconds since the first trace touch in this process.
    pub ts_ns: u64,
    /// Id of the trace this record belongs to (0 for none). Unlike
    /// `span`/`parent`, a trace id is meaningful *across* processes:
    /// it is minted once at the root span and propagated over the wire
    /// (see `drbac-net`'s trace-context frame extension), so spans on
    /// both sides of a socket stitch into one distributed trace.
    pub trace_id: u64,
    pub kind: TraceKind,
    pub name: &'static str,
    /// Id of the span this record belongs to (0 for a root-level event).
    pub span: u64,
    /// Id of the enclosing span (0 for none).
    pub parent: u64,
    /// Wall time inside the span; only on [`TraceKind::SpanEnd`].
    pub elapsed_ns: Option<u64>,
    pub fields: Vec<(&'static str, FieldValue)>,
}

/// Sink for trace records. Implementations must tolerate concurrent calls.
pub trait Recorder: Send + Sync {
    fn record(&self, event: &TraceEvent);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SEQ: AtomicU64 = AtomicU64::new(1);
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

fn recorder_slot() -> &'static RwLock<Option<Arc<dyn Recorder>>> {
    static SLOT: OnceLock<RwLock<Option<Arc<dyn Recorder>>>> = OnceLock::new();
    SLOT.get_or_init(|| RwLock::new(None))
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
    /// (trace_id, remote_parent_span): the distributed trace context of
    /// this thread. `trace_id` is minted at the first root span (or
    /// adopted from the wire via [`set_current_trace`]);
    /// `remote_parent_span` is the peer-side span a server-side root
    /// span should hang under.
    static TRACE_CTX: std::cell::Cell<(u64, u64)> = const { std::cell::Cell::new((0, 0)) };
}

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

/// Mints a process-unique (and, with overwhelming probability,
/// fleet-unique) trace id: a per-process random-ish seed mixed with a
/// counter through splitmix64, never zero.
fn mint_trace_id() -> u64 {
    static SEED: OnceLock<u64> = OnceLock::new();
    let seed = *SEED.get_or_init(|| {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        nanos ^ (std::process::id() as u64).rotate_left(32)
    });
    loop {
        let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
        let mut z = seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        if z != 0 {
            return z;
        }
    }
}

/// Adopts a trace context received from a peer: subsequent root spans
/// on this thread join trace `trace_id` and hang under the peer's
/// `parent_span`. Pair with [`clear_current_trace`] once the request
/// that carried the context has been served.
pub fn set_current_trace(trace_id: u64, parent_span: u64) {
    TRACE_CTX.with(|c| c.set((trace_id, parent_span)));
}

/// Drops any adopted (or minted) trace context on this thread.
pub fn clear_current_trace() {
    TRACE_CTX.with(|c| c.set((0, 0)));
}

/// The trace id active on this thread (0 when none).
pub fn current_trace_id() -> u64 {
    TRACE_CTX.with(|c| c.get().0)
}

/// Whether a recorder is installed. The only cost instrumentation pays on
/// hot paths while tracing is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Routes subsequent spans/events to `recorder` (replacing any previous
/// one) and turns the facade on.
pub fn install_recorder(recorder: Arc<dyn Recorder>) {
    *recorder_slot().write() = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Turns the facade off and drops the recorder.
pub fn clear_recorder() {
    ENABLED.store(false, Ordering::Release);
    *recorder_slot().write() = None;
}

fn dispatch(event: TraceEvent) {
    if let Some(recorder) = recorder_slot().read().as_ref() {
        recorder.record(&event);
    }
}

fn current_parent() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// Emits a point event under the current span. Prefer [`crate::event!`],
/// which skips field construction while disabled.
pub fn emit_event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    if !enabled() {
        return;
    }
    let parent = current_parent();
    dispatch(TraceEvent {
        seq: SEQ.fetch_add(1, Ordering::Relaxed),
        ts_ns: epoch().elapsed().as_nanos() as u64,
        trace_id: current_trace_id(),
        kind: TraceKind::Event,
        name,
        span: parent,
        parent,
        elapsed_ns: None,
        fields,
    });
}

/// An RAII span: emits `SpanStart` on enter and `SpanEnd` (with elapsed
/// wall time) on drop. While active it is the parent of nested spans and
/// events on the same thread.
pub struct Span {
    id: u64,
    parent: u64,
    trace_id: u64,
    /// Whether this span minted the thread's trace id (and must clear
    /// it on drop).
    minted_trace: bool,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// A span that records nothing; what [`crate::span!`] returns while
    /// tracing is off.
    pub fn disabled() -> Self {
        Self {
            id: 0,
            parent: 0,
            trace_id: 0,
            minted_trace: false,
            name: "",
            start: None,
        }
    }

    /// Opens a span. Prefer [`crate::span!`], which skips field
    /// construction while disabled.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> Self {
        if !enabled() {
            return Self::disabled();
        }
        let id = NEXT_SPAN.fetch_add(1, Ordering::Relaxed);
        let mut parent = current_parent();
        // Join the thread's distributed trace; a root span with no
        // context yet mints the trace id (and owns clearing it). A root
        // span under an adopted context hangs beneath the peer's span.
        let (ctx_trace, remote_parent) = TRACE_CTX.with(|c| c.get());
        let (trace_id, minted_trace) = if ctx_trace != 0 {
            if parent == 0 {
                parent = remote_parent;
            }
            (ctx_trace, false)
        } else {
            let minted = mint_trace_id();
            TRACE_CTX.with(|c| c.set((minted, 0)));
            (minted, true)
        };
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        dispatch(TraceEvent {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: epoch().elapsed().as_nanos() as u64,
            trace_id,
            kind: TraceKind::SpanStart,
            name,
            span: id,
            parent,
            elapsed_ns: None,
            fields,
        });
        Self {
            id,
            parent,
            trace_id,
            minted_trace,
            name,
            start: Some(Instant::now()),
        }
    }

    /// Whether this span is actually recording.
    pub fn is_active(&self) -> bool {
        self.id != 0
    }

    /// This span's id (0 while disabled) — what a peer should use as
    /// its remote parent when the span crosses a socket.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The distributed trace this span belongs to (0 while disabled).
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    /// Attaches a point event to this span specifically.
    pub fn event(&self, name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
        if self.id == 0 || !enabled() {
            return;
        }
        dispatch(TraceEvent {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: epoch().elapsed().as_nanos() as u64,
            trace_id: self.trace_id,
            kind: TraceKind::Event,
            name,
            span: self.id,
            parent: self.id,
            elapsed_ns: None,
            fields,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.id == 0 {
            return;
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.truncate(pos);
            }
        });
        if self.minted_trace {
            TRACE_CTX.with(|c| {
                if c.get().0 == self.trace_id {
                    c.set((0, 0));
                }
            });
        }
        let elapsed = self
            .start
            .map(|t| t.elapsed().as_nanos() as u64)
            .unwrap_or(0);
        dispatch(TraceEvent {
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            ts_ns: epoch().elapsed().as_nanos() as u64,
            trace_id: self.trace_id,
            kind: TraceKind::SpanEnd,
            name: self.name,
            span: self.id,
            parent: self.parent,
            elapsed_ns: Some(elapsed),
            fields: Vec::new(),
        });
    }
}

/// A bounded in-memory recorder: keeps the most recent `capacity` records.
pub struct RingRecorder {
    capacity: usize,
    buf: Mutex<std::collections::VecDeque<TraceEvent>>,
}

impl RingRecorder {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Creates a ring recorder and installs it globally.
    pub fn install(capacity: usize) -> Arc<Self> {
        let rec = Arc::new(Self::new(capacity));
        install_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        rec
    }

    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Removes and returns everything buffered, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.buf.lock().drain(..).collect()
    }

    /// Copies the buffer without draining it.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Renders the buffer as JSON-lines, one record per line, without
    /// draining. Field order is fixed so traces diff cleanly.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.buf.lock().iter() {
            append_jsonl(&mut out, event);
        }
        out
    }
}

impl Recorder for RingRecorder {
    fn record(&self, event: &TraceEvent) {
        let mut buf = self.buf.lock();
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Streams trace records to a file as JSON lines, one per record,
/// flushed per write so `drbac trace --follow` can tail it live.
pub struct JsonlFileRecorder {
    file: Mutex<std::fs::File>,
}

impl JsonlFileRecorder {
    /// Creates (truncating) `path` and returns a recorder writing to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            file: Mutex::new(file),
        })
    }

    /// Creates the recorder and installs it globally.
    pub fn install(path: &std::path::Path) -> std::io::Result<Arc<Self>> {
        let rec = Arc::new(Self::create(path)?);
        install_recorder(Arc::clone(&rec) as Arc<dyn Recorder>);
        Ok(rec)
    }
}

impl Recorder for JsonlFileRecorder {
    fn record(&self, event: &TraceEvent) {
        use std::io::Write as _;
        let mut line = String::new();
        append_jsonl(&mut line, event);
        let mut file = self.file.lock();
        // Tracing is best-effort: a full disk must not take the daemon
        // down with it.
        let _ = file.write_all(line.as_bytes());
        let _ = file.flush();
    }
}

/// Appends one trace record as a JSON line.
fn append_jsonl(out: &mut String, event: &TraceEvent) {
    let _ = write!(
        out,
        "{{\"seq\":{},\"ts_ns\":{},\"trace\":{},\"kind\":\"{}\",\"name\":\"{}\",\"span\":{},\"parent\":{}",
        event.seq,
        event.ts_ns,
        event.trace_id,
        event.kind.as_str(),
        escape_json(event.name),
        event.span,
        event.parent,
    );
    if let Some(elapsed) = event.elapsed_ns {
        let _ = write!(out, ",\"elapsed_ns\":{elapsed}");
    }
    if !event.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (key, value)) in event.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":", escape_json(key));
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) if v.is_finite() => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => {
                    let _ = write!(out, "\"{v}\"");
                }
                FieldValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::Str(v) => {
                    let _ = write!(out, "\"{}\"", escape_json(v));
                }
            }
        }
        out.push('}');
    }
    out.push_str("}\n");
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The recorder slot is process-global, so every test in this module
    // runs under one lock to avoid cross-talk.
    fn serial() -> parking_lot::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(())).lock()
    }

    #[test]
    fn disabled_facade_is_inert() {
        let _guard = serial();
        clear_recorder();
        assert!(!enabled());
        let span = Span::enter("drbac.test.noop", Vec::new());
        assert!(!span.is_active());
        emit_event("drbac.test.noop.event", Vec::new());
        // Nothing to observe — the point is that nothing panics and no
        // recorder is required.
    }

    #[test]
    fn spans_nest_and_events_attach() {
        let _guard = serial();
        let ring = RingRecorder::install(64);
        {
            let _outer = Span::enter("outer", vec![("k", FieldValue::from(1u64))]);
            {
                let _inner = Span::enter("inner", Vec::new());
                emit_event("hop", vec![("wallet", FieldValue::from("w1"))]);
            }
        }
        clear_recorder();
        let events = ring.drain();
        let kinds: Vec<_> = events.iter().map(|e| (e.kind, e.name)).collect();
        assert_eq!(
            kinds,
            vec![
                (TraceKind::SpanStart, "outer"),
                (TraceKind::SpanStart, "inner"),
                (TraceKind::Event, "hop"),
                (TraceKind::SpanEnd, "inner"),
                (TraceKind::SpanEnd, "outer"),
            ]
        );
        let outer_id = events[0].span;
        assert_eq!(events[1].parent, outer_id, "inner's parent is outer");
        assert_eq!(events[2].span, events[1].span, "event attached to inner");
        assert!(events[3].elapsed_ns.is_some());
    }

    #[test]
    fn ring_caps_capacity() {
        let _guard = serial();
        let ring = RingRecorder::install(4);
        for _ in 0..10 {
            emit_event("e", Vec::new());
        }
        clear_recorder();
        let events = ring.drain();
        assert_eq!(events.len(), 4);
        // The survivors are the newest records.
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn jsonl_is_valid_and_escaped() {
        let _guard = serial();
        let ring = RingRecorder::install(16);
        emit_event(
            "quote\"test",
            vec![
                ("n", FieldValue::from(7u64)),
                ("s", FieldValue::from("a\"b\\c\nd")),
                ("f", FieldValue::from(0.5f64)),
                ("b", FieldValue::from(true)),
            ],
        );
        clear_recorder();
        let jsonl = ring.to_jsonl();
        assert!(jsonl.contains("\"kind\":\"event\""));
        assert!(jsonl.contains("\"name\":\"quote\\\"test\""));
        assert!(jsonl.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(jsonl.contains("\"f\":0.5"));
        assert!(jsonl.contains("\"b\":true"));
        assert!(jsonl.ends_with('\n'));
        assert_eq!(jsonl.lines().count(), 1);
    }

    #[test]
    fn root_span_mints_one_trace_id_shared_by_descendants() {
        let _guard = serial();
        clear_current_trace();
        let ring = RingRecorder::install(64);
        {
            let outer = Span::enter("outer", Vec::new());
            assert_ne!(outer.trace_id(), 0);
            {
                let _inner = Span::enter("inner", Vec::new());
                emit_event("hop", Vec::new());
            }
        }
        clear_recorder();
        let events = ring.drain();
        let trace = events[0].trace_id;
        assert_ne!(trace, 0, "root span mints a nonzero trace id");
        assert!(
            events.iter().all(|e| e.trace_id == trace),
            "all spans/events in the tree share the root's trace id"
        );
        assert_eq!(
            current_trace_id(),
            0,
            "minted context is cleared when the root span drops"
        );
    }

    #[test]
    fn adopted_context_threads_through_spans() {
        let _guard = serial();
        clear_current_trace();
        let ring = RingRecorder::install(64);
        set_current_trace(0xfeed_beef, 42);
        {
            let span = Span::enter("served", Vec::new());
            assert_eq!(span.trace_id(), 0xfeed_beef);
        }
        clear_current_trace();
        clear_recorder();
        let events = ring.drain();
        assert_eq!(events[0].trace_id, 0xfeed_beef, "adopted trace id is used");
        assert_eq!(
            events[0].parent, 42,
            "root span hangs under the peer's remote parent span"
        );
        assert_eq!(
            current_trace_id(),
            0,
            "adopted context stays until explicitly cleared, then goes"
        );
    }

    #[test]
    fn distinct_roots_get_distinct_trace_ids() {
        let _guard = serial();
        clear_current_trace();
        let ring = RingRecorder::install(64);
        {
            let _a = Span::enter("a", Vec::new());
        }
        {
            let _b = Span::enter("b", Vec::new());
        }
        clear_recorder();
        let events = ring.drain();
        let a = events.iter().find(|e| e.name == "a").unwrap().trace_id;
        let b = events.iter().find(|e| e.name == "b").unwrap().trace_id;
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "independent root spans are independent traces");
    }

    #[test]
    fn jsonl_file_recorder_streams_flushed_lines() {
        let _guard = serial();
        clear_current_trace();
        let dir = std::env::temp_dir().join(format!("drbac-obs-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let _rec = JsonlFileRecorder::install(&path).unwrap();
        {
            let _span = Span::enter("filed", Vec::new());
        }
        clear_recorder();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(text.lines().count(), 2, "span start + span end");
        assert!(text.contains("\"name\":\"filed\""));
        assert!(text.contains("\"trace\":"));
    }

    #[test]
    fn macros_skip_field_eval_when_disabled() {
        let _guard = serial();
        clear_recorder();
        let mut evaluated = false;
        let _span = crate::span!("drbac.test.macro", "side_effect" => {
            evaluated = true;
            1u64
        });
        crate::event!("drbac.test.macro.event", "side_effect" => {
            evaluated = true;
            2u64
        });
        assert!(!evaluated, "fields must not be evaluated while disabled");
    }
}
