//! Key pairs and public keys.

use std::fmt;

use drbac_bignum::{random_biguint_below, BigUint};
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::fingerprint::KeyFingerprint;
use crate::group::{GroupId, SchnorrGroup};
use crate::sha256::Sha256;
use crate::sign::Signature;

/// A Schnorr secret key: an exponent `x` in `[1, q)`.
///
/// Holds its group so it can sign without extra context. The `Debug` impl
/// redacts the exponent.
#[derive(Clone)]
pub struct SecretKey {
    group: SchnorrGroup,
    x: BigUint,
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SecretKey")
            .field("group", &self.group)
            .field("x", &"<redacted>")
            .finish()
    }
}

impl Drop for SecretKey {
    /// Best-effort scrubbing of the exponent on drop (clones and moves
    /// may still leave copies; see [`drbac_bignum::BigUint::scrub`]).
    fn drop(&mut self) {
        self.x.scrub();
    }
}

/// A Schnorr public key: `y = g^x mod p` in a named group.
///
/// # Example
///
/// ```
/// use drbac_crypto::{KeyPair, SchnorrGroup};
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(3);
/// let kp = KeyPair::generate(SchnorrGroup::test_256(), &mut rng);
/// let pk = kp.public_key();
/// assert!(pk.group().is_subgroup_element(pk.y()));
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "PublicKeyRepr", into = "PublicKeyRepr")]
pub struct PublicKey {
    group: SchnorrGroup,
    y: BigUint,
}

/// Serde-friendly representation of a [`PublicKey`].
#[derive(Serialize, Deserialize)]
struct PublicKeyRepr {
    group: GroupId,
    /// `(p, q, g)` hex, present only for custom groups.
    custom_params: Option<(String, String, String)>,
    y: String,
}

impl From<PublicKey> for PublicKeyRepr {
    fn from(pk: PublicKey) -> Self {
        let custom_params = match pk.group.id() {
            GroupId::Custom => Some((
                pk.group.p().to_hex(),
                pk.group.q().to_hex(),
                pk.group.g().to_hex(),
            )),
            _ => None,
        };
        PublicKeyRepr {
            group: pk.group.id(),
            custom_params,
            y: pk.y.to_hex(),
        }
    }
}

impl From<PublicKeyRepr> for PublicKey {
    fn from(repr: PublicKeyRepr) -> Self {
        let group = match repr.group {
            GroupId::Test256 => SchnorrGroup::test_256(),
            GroupId::Modp2048 => SchnorrGroup::modp_2048(),
            GroupId::Custom => {
                let (p, q, g) = repr.custom_params.unwrap_or_default();
                SchnorrGroup::from_hex_parts(&p, &q, &g)
            }
        };
        PublicKey {
            group,
            y: BigUint::from_hex(&repr.y).unwrap_or_default(),
        }
    }
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({}, {})", self.group.id(), self.fingerprint())
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.fingerprint())
    }
}

impl PublicKey {
    /// Reassembles a public key from its parts (wire decoding). Check
    /// [`PublicKey::is_valid`] before trusting a key received this way.
    pub fn from_parts(group: SchnorrGroup, y: BigUint) -> Self {
        PublicKey { group, y }
    }

    /// The group this key lives in.
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The group element `y = g^x`.
    pub fn y(&self) -> &BigUint {
        &self.y
    }

    /// Canonical byte encoding: domain tag, group id, `p`, `g`, and `y`,
    /// all length-prefixed. Signatures and fingerprints bind to this.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"drbac-pk-v1");
        let tag = match self.group.id() {
            GroupId::Test256 => 1u8,
            GroupId::Modp2048 => 2,
            GroupId::Custom => 3,
        };
        out.push(tag);
        for part in [self.group.p(), self.group.g(), &self.y] {
            let bytes = part.to_bytes_be();
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&bytes);
        }
        out
    }

    /// SHA-256 fingerprint of [`Self::canonical_bytes`]; the entity
    /// identity in dRBAC.
    pub fn fingerprint(&self) -> KeyFingerprint {
        let mut h = Sha256::new();
        h.update(&self.canonical_bytes());
        KeyFingerprint(h.finalize())
    }

    /// Verifies a Schnorr signature over `msg`.
    ///
    /// Returns `false` for signatures from a different group, out-of-range
    /// scalars, or any verification failure — never panics.
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        sig.verify_with(&self.group, &self.y, self.fingerprint(), msg)
    }

    /// Structural validity: `y` is a proper subgroup element.
    ///
    /// The membership check costs a full `y^q mod p` exponentiation,
    /// and wire decoding runs it on every received key — while a busy
    /// reply stream repeats the same few issuer keys thousands of
    /// times. Membership is a pure function of the key material, so
    /// results are memoized in a bounded process-wide cache: the first
    /// sighting of a key pays the modpow, the rest cost one hash
    /// lookup. Invalid keys are never cached (re-checking them is the
    /// safe direction).
    pub fn is_valid(&self) -> bool {
        let mut h = Sha256::new();
        h.update(&self.canonical_bytes());
        // `q` is not part of the canonical encoding but membership
        // depends on it; bind it so two custom groups sharing (p, g)
        // with different subgroup orders cannot alias.
        h.update(&self.group.q().to_bytes_be());
        let digest = h.finalize();
        let cache = validated_keys();
        if let Ok(seen) = cache.lock() {
            if seen.contains(&digest) {
                return true;
            }
        }
        let ok = self.group.is_subgroup_element(&self.y);
        if ok {
            if let Ok(mut seen) = cache.lock() {
                if seen.len() >= VALIDATED_KEY_CAP {
                    // Wholesale reset over LRU bookkeeping: a working
                    // set beyond the cap just re-validates.
                    seen.clear();
                }
                seen.insert(digest);
            }
        }
        ok
    }
}

/// Upper bound on memoized [`PublicKey::is_valid`] results.
const VALIDATED_KEY_CAP: usize = 4096;

fn validated_keys() -> &'static std::sync::Mutex<std::collections::HashSet<[u8; 32]>> {
    static VALIDATED: std::sync::OnceLock<std::sync::Mutex<std::collections::HashSet<[u8; 32]>>> =
        std::sync::OnceLock::new();
    VALIDATED.get_or_init(|| std::sync::Mutex::new(std::collections::HashSet::new()))
}

impl SchnorrGroup {
    /// Reconstructs a custom group from hex parts (used by serde).
    /// Invalid input yields a degenerate group that fails all
    /// verifications rather than panicking.
    pub fn from_hex_parts(p: &str, q: &str, g: &str) -> SchnorrGroup {
        let p = BigUint::from_hex(p).unwrap_or_else(|_| BigUint::from(3u64));
        let p = if p.is_even() || p <= BigUint::from(2u64) {
            BigUint::from(3u64)
        } else {
            p
        };
        let q = BigUint::from_hex(q).unwrap_or_else(|_| BigUint::one());
        let g = BigUint::from_hex(g).unwrap_or_else(|_| BigUint::from(2u64));
        SchnorrGroup::custom_from_parts(p, q, g)
    }
}

/// A secret/public key pair for one entity.
#[derive(Debug, Clone)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Generates a fresh key pair in `group`.
    ///
    /// ```
    /// use drbac_crypto::{KeyPair, SchnorrGroup};
    /// # use rand::SeedableRng;
    /// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    /// let a = KeyPair::generate(SchnorrGroup::test_256(), &mut rng);
    /// let b = KeyPair::generate(SchnorrGroup::test_256(), &mut rng);
    /// assert_ne!(a.public_key().fingerprint(), b.public_key().fingerprint());
    /// ```
    pub fn generate<R: Rng + ?Sized>(group: SchnorrGroup, rng: &mut R) -> Self {
        let q_minus_1 = group.q() - &BigUint::one();
        let x = &random_biguint_below(rng, &q_minus_1) + &BigUint::one();
        Self::from_secret_exponent(group, x)
    }

    /// Builds a key pair from a known exponent `x` (reduced into `[1, q)`).
    /// Useful for reproducible fixtures.
    pub fn from_secret_exponent(group: SchnorrGroup, x: BigUint) -> Self {
        let x = x.rem_ref(group.q());
        let x = if x.is_zero() { BigUint::one() } else { x };
        let y = group.pow_g(&x);
        KeyPair {
            public: PublicKey {
                group: group.clone(),
                y,
            },
            secret: SecretKey { group, x },
        }
    }

    /// The public half.
    pub fn public_key(&self) -> &PublicKey {
        &self.public
    }

    /// The entity fingerprint of the public key.
    pub fn fingerprint(&self) -> KeyFingerprint {
        self.public.fingerprint()
    }

    /// Signs `msg` with a deterministic (hash-derived) nonce.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature::create(&self.secret.group, &self.secret.x, &self.public, msg)
    }

    /// Serializes the key pair (group and secret exponent) for keyring
    /// storage. **The output contains the unencrypted secret key**;
    /// protect the file accordingly.
    pub fn export_secret(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"drbac-sk-v1");
        let tag = match self.secret.group.id() {
            GroupId::Test256 => 1u8,
            GroupId::Modp2048 => 2,
            GroupId::Custom => 3,
        };
        out.push(tag);
        let mut put = |v: &BigUint| {
            let b = v.to_bytes_be();
            out.extend_from_slice(&(b.len() as u32).to_be_bytes());
            out.extend_from_slice(&b);
        };
        if self.secret.group.id() == GroupId::Custom {
            put(self.secret.group.p());
            put(self.secret.group.q());
            put(self.secret.group.g());
        }
        put(&self.secret.x);
        out
    }

    /// Restores a key pair from [`KeyPair::export_secret`] output.
    /// Returns `None` for malformed input.
    pub fn import_secret(bytes: &[u8]) -> Option<KeyPair> {
        let rest = bytes.strip_prefix(b"drbac-sk-v1")?;
        let (&tag, mut rest) = rest.split_first()?;
        let take = |rest: &mut &[u8]| -> Option<BigUint> {
            let (len, tail) = rest.split_at_checked(4)?;
            let len = u32::from_be_bytes(len.try_into().ok()?) as usize;
            let (value, tail) = tail.split_at_checked(len)?;
            *rest = tail;
            Some(BigUint::from_bytes_be(value))
        };
        let group = match tag {
            1 => SchnorrGroup::test_256(),
            2 => SchnorrGroup::modp_2048(),
            3 => {
                let p = take(&mut rest)?;
                let q = take(&mut rest)?;
                let g = take(&mut rest)?;
                if p.is_even() || p.is_zero() {
                    return None;
                }
                SchnorrGroup::custom_from_parts(p, q, g)
            }
            _ => return None,
        };
        let x = take(&mut rest)?;
        if !rest.is_empty() || x.is_zero() {
            return None;
        }
        Some(KeyPair::from_secret_exponent(group, x))
    }

    /// Diffie–Hellman shared secret with a peer key in the same group:
    /// `SHA-256(tag ‖ peer_y^x)`. Both sides derive the same value, which
    /// the switchboard uses to key its channel cipher.
    ///
    /// Returns `None` if the peer key is from a different group or is not
    /// a valid subgroup element.
    pub fn shared_secret(&self, peer: &PublicKey) -> Option<[u8; 32]> {
        if peer.group() != &self.secret.group || !peer.is_valid() {
            return None;
        }
        let s = self.secret.group.pow(peer.y(), &self.secret.x);
        let mut h = Sha256::new();
        h.update(b"drbac-dh-v1");
        h.update(&s.to_bytes_be());
        Some(h.finalize())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(seed: u64) -> KeyPair {
        KeyPair::generate(SchnorrGroup::test_256(), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn public_key_is_subgroup_element() {
        assert!(pair(1).public_key().is_valid());
    }

    #[test]
    fn fingerprint_is_stable_and_distinct() {
        let a = pair(1);
        let b = pair(2);
        assert_eq!(a.fingerprint(), a.public_key().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fixture_exponent_is_reproducible() {
        let g = SchnorrGroup::test_256();
        let a = KeyPair::from_secret_exponent(g.clone(), BigUint::from(42u64));
        let b = KeyPair::from_secret_exponent(g, BigUint::from(42u64));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn zero_exponent_is_normalized() {
        let g = SchnorrGroup::test_256();
        let kp = KeyPair::from_secret_exponent(g.clone(), BigUint::zero());
        assert_eq!(kp.public_key().y(), &g.pow_g(&BigUint::one()));
    }

    #[test]
    fn debug_redacts_secret() {
        let kp = pair(3);
        let dbg = format!("{:?}", kp);
        assert!(dbg.contains("<redacted>"));
    }

    #[test]
    fn dh_shared_secret_is_symmetric_and_group_bound() {
        let a = pair(21);
        let b = pair(22);
        let ab = a.shared_secret(b.public_key()).unwrap();
        let ba = b.shared_secret(a.public_key()).unwrap();
        assert_eq!(ab, ba, "both sides derive the same key");
        let c = pair(23);
        assert_ne!(
            ab,
            a.shared_secret(c.public_key()).unwrap(),
            "distinct per peer"
        );
        // Cross-group keys are refused.
        let modp = KeyPair::from_secret_exponent(SchnorrGroup::modp_2048(), BigUint::from(5u64));
        assert!(a.shared_secret(modp.public_key()).is_none());
    }

    #[test]
    fn secret_export_round_trips() {
        let kp = pair(9);
        let restored = KeyPair::import_secret(&kp.export_secret()).expect("round trip");
        assert_eq!(restored.fingerprint(), kp.fingerprint());
        // Signatures from the restored key verify against the original.
        let sig = restored.sign(b"hello");
        assert!(kp.public_key().verify(b"hello", &sig));

        // Malformed inputs fail cleanly.
        assert!(KeyPair::import_secret(b"garbage").is_none());
        let mut truncated = kp.export_secret();
        truncated.truncate(truncated.len() - 3);
        assert!(KeyPair::import_secret(&truncated).is_none());
        let mut trailing = kp.export_secret();
        trailing.push(0);
        assert!(KeyPair::import_secret(&trailing).is_none());
    }

    #[test]
    fn canonical_bytes_bind_group_and_key() {
        let a = pair(1);
        let modp = KeyPair::from_secret_exponent(SchnorrGroup::modp_2048(), BigUint::from(7u64));
        assert_ne!(
            a.public_key().canonical_bytes(),
            modp.public_key().canonical_bytes()
        );
    }
}
