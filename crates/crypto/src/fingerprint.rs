//! Key fingerprints: the compact, unforgeable identity of an entity.

use std::fmt;

use serde::{Deserialize, Serialize};

/// SHA-256 fingerprint of a public key's canonical encoding.
///
/// dRBAC names every namespace by the public key of its owning entity; the
/// fingerprint is the canonical 32-byte form of that name used in indexes,
/// wire messages, and display.
///
/// # Example
///
/// ```
/// use drbac_crypto::{KeyPair, SchnorrGroup};
/// # use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let kp = KeyPair::generate(SchnorrGroup::test_256(), &mut rng);
/// let fp = kp.public_key().fingerprint();
/// assert_eq!(fp.to_string().len(), 16); // 8-byte short hex form
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct KeyFingerprint(pub [u8; 32]);

impl KeyFingerprint {
    /// The raw 32 bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Full 64-character hex form.
    pub fn to_hex(&self) -> String {
        self.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Parses the full 64-character hex form.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(KeyFingerprint(out))
    }
}

impl fmt::Display for KeyFingerprint {
    /// Short 16-character (8-byte) hex prefix, enough to disambiguate in
    /// logs and traces.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0[..8] {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for KeyFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "KeyFingerprint({self})")
    }
}

impl AsRef<[u8]> for KeyFingerprint {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let fp = KeyFingerprint([0xabu8; 32]);
        let hex = fp.to_hex();
        assert_eq!(hex.len(), 64);
        assert_eq!(KeyFingerprint::from_hex(&hex), Some(fp));
        assert_eq!(KeyFingerprint::from_hex("zz"), None);
        assert_eq!(KeyFingerprint::from_hex(&"g".repeat(64)), None);
    }

    #[test]
    fn display_is_short_prefix() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0x12;
        bytes[7] = 0x34;
        bytes[8] = 0xff; // beyond the displayed prefix
        let fp = KeyFingerprint(bytes);
        assert_eq!(fp.to_string(), "1200000000000034");
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = KeyFingerprint([0u8; 32]);
        let b = KeyFingerprint([1u8; 32]);
        assert!(a < b);
    }
}
