#![warn(missing_docs)]

//! PKI substrate for dRBAC, implemented from scratch.
//!
//! The dRBAC paper (ICDCS 2002) identifies every entity — resource owners
//! and principals alike — with a PKI public key, and every delegation is a
//! certificate signed by its issuer. This crate provides exactly that
//! machinery with no external crypto dependencies:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256,
//! * [`SchnorrGroup`] — named safe-prime groups ([`SchnorrGroup::test_256`]
//!   for fast deterministic tests, [`SchnorrGroup::modp_2048`] for
//!   realistic-cost benchmarks),
//! * [`KeyPair`] / [`PublicKey`] / [`Signature`] — Schnorr signatures with
//!   deterministic (hash-derived) nonces,
//! * [`KeyFingerprint`] — the 32-byte identity dRBAC uses to name an
//!   entity's namespace.
//!
//! # Example
//!
//! ```
//! use drbac_crypto::{KeyPair, SchnorrGroup};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let group = SchnorrGroup::test_256();
//! let mut rng = StdRng::seed_from_u64(1);
//! let alice = KeyPair::generate(group, &mut rng);
//! let sig = alice.sign(b"delegation bytes");
//! assert!(alice.public_key().verify(b"delegation bytes", &sig));
//! assert!(!alice.public_key().verify(b"tampered bytes", &sig));
//! ```

mod fingerprint;
mod group;
mod hmac;
mod keys;
mod sha256;
mod sign;

pub use fingerprint::KeyFingerprint;
pub use group::{GroupId, SchnorrGroup};
pub use hmac::{hmac_sha256, verify_hmac_sha256};
pub use keys::{KeyPair, PublicKey, SecretKey};
pub use sha256::{sha256, Sha256};
pub use sign::Signature;
