//! Schnorr signatures with deterministic nonces.

use drbac_bignum::BigUint;
use serde::{Deserialize, Serialize};

use crate::fingerprint::KeyFingerprint;
use crate::group::{GroupId, SchnorrGroup};
use crate::keys::PublicKey;
use crate::sha256::Sha256;

/// A Schnorr signature `(e, s)` over a message, bound to a signer and
/// group.
///
/// * nonce: `k = H(tag_k ‖ x ‖ msg) mod q` (deterministic, so identical
///   inputs produce identical signatures — convenient for reproducible
///   fixtures and safe against nonce-reuse-across-messages),
/// * commitment: `r = g^k mod p`,
/// * challenge: `e = H(tag_e ‖ fingerprint ‖ r ‖ msg) mod q`,
/// * response: `s = k + x·e mod q`.
///
/// Verification recomputes `r' = g^s · y^(q−e) mod p` and checks the
/// challenge matches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    group: GroupId,
    e: BigUint,
    s: BigUint,
}

const NONCE_TAG: &[u8] = b"drbac-nonce-v1";
const CHALLENGE_TAG: &[u8] = b"drbac-challenge-v1";

fn hash_to_scalar(parts: &[&[u8]], q: &BigUint) -> BigUint {
    // Expand to 512 bits before reducing so the bias is negligible even for
    // the 256-bit test group.
    let mut h0 = Sha256::new();
    h0.update(&[0]);
    for p in parts {
        h0.update(&(p.len() as u64).to_be_bytes());
        h0.update(p);
    }
    let mut h1 = Sha256::new();
    h1.update(&[1]);
    for p in parts {
        h1.update(&(p.len() as u64).to_be_bytes());
        h1.update(p);
    }
    let mut wide = [0u8; 64];
    wide[..32].copy_from_slice(&h0.finalize());
    wide[32..].copy_from_slice(&h1.finalize());
    BigUint::from_bytes_be(&wide).rem_ref(q)
}

impl Signature {
    /// Creates a signature; called through [`crate::KeyPair::sign`].
    pub(crate) fn create(
        group: &SchnorrGroup,
        x: &BigUint,
        public: &PublicKey,
        msg: &[u8],
    ) -> Signature {
        let q = group.q();
        let x_bytes = x.to_bytes_be();
        let mut k = hash_to_scalar(&[NONCE_TAG, &x_bytes, msg], q);
        if k.is_zero() {
            k = BigUint::one();
        }
        let r = group.pow_g(&k);
        let fp = public.fingerprint();
        let e = hash_to_scalar(&[CHALLENGE_TAG, fp.as_bytes(), &r.to_bytes_be(), msg], q);
        let s = (&k + &(x * &e)).rem_ref(q);
        Signature {
            group: group.id(),
            e,
            s,
        }
    }

    /// Verifies against a public key's group, element, and fingerprint.
    pub(crate) fn verify_with(
        &self,
        group: &SchnorrGroup,
        y: &BigUint,
        fingerprint: KeyFingerprint,
        msg: &[u8],
    ) -> bool {
        if self.group != group.id() {
            return false;
        }
        let q = group.q();
        if &self.s >= q || &self.e >= q {
            return false;
        }
        if !group.is_subgroup_element(y) {
            return false;
        }
        // r' = g^s * y^(q - e) == g^s * y^(-e)   (y has order q)
        let neg_e = if self.e.is_zero() {
            BigUint::zero()
        } else {
            q - &self.e
        };
        let gs = group.pow_g(&self.s);
        let ye = group.pow(y, &neg_e);
        let r = group.mul(&gs, &ye);
        let expected = hash_to_scalar(
            &[CHALLENGE_TAG, fingerprint.as_bytes(), &r.to_bytes_be(), msg],
            q,
        );
        expected == self.e
    }

    /// The group this signature was produced in.
    pub fn group_id(&self) -> GroupId {
        self.group
    }

    /// The challenge scalar `e`.
    pub fn e(&self) -> &BigUint {
        &self.e
    }

    /// The response scalar `s`.
    pub fn s(&self) -> &BigUint {
        &self.s
    }

    /// Reassembles a signature from its parts (wire decoding). An
    /// ill-formed signature simply fails verification.
    pub fn from_parts(group: GroupId, e: BigUint, s: BigUint) -> Signature {
        Signature { group, e, s }
    }

    /// Approximate encoded size in bytes (for wire accounting).
    pub fn encoded_len(&self) -> usize {
        1 + self.e.to_bytes_be().len() + self.s.to_bytes_be().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KeyPair;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pair(seed: u64) -> KeyPair {
        KeyPair::generate(SchnorrGroup::test_256(), &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn sign_verify_round_trip() {
        let kp = pair(1);
        let msgs: [&[u8]; 4] = [b"", b"a", b"hello world", &[0u8; 1000]];
        for msg in msgs {
            let sig = kp.sign(msg);
            assert!(kp.public_key().verify(msg, &sig));
        }
    }

    #[test]
    fn tampered_message_fails() {
        let kp = pair(1);
        let sig = kp.sign(b"original");
        assert!(!kp.public_key().verify(b"tampered", &sig));
    }

    #[test]
    fn wrong_key_fails() {
        let a = pair(1);
        let b = pair(2);
        let sig = a.sign(b"msg");
        assert!(!b.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_scalars_fail() {
        let kp = pair(1);
        let sig = kp.sign(b"msg");
        let mut bad = sig.clone();
        bad.s = (&bad.s + &BigUint::one()).rem_ref(kp.public_key().group().q());
        assert!(!kp.public_key().verify(b"msg", &bad));
        let mut bad = sig.clone();
        bad.e = (&bad.e + &BigUint::one()).rem_ref(kp.public_key().group().q());
        assert!(!kp.public_key().verify(b"msg", &bad));
    }

    #[test]
    fn out_of_range_scalars_rejected() {
        let kp = pair(1);
        let mut sig = kp.sign(b"msg");
        sig.s = kp.public_key().group().q().clone();
        assert!(!kp.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn cross_group_signature_rejected() {
        let test = pair(1);
        let modp = KeyPair::from_secret_exponent(SchnorrGroup::modp_2048(), BigUint::from(9u64));
        let sig = test.sign(b"msg");
        assert!(!modp.public_key().verify(b"msg", &sig));
    }

    /// Known-answer test pinning the exact signature bytes: any change to
    /// the canonical encoding, the hash-to-scalar construction, or the
    /// nonce derivation breaks compatibility with stored credentials and
    /// must show up here.
    #[test]
    fn known_answer_signature() {
        let kp = KeyPair::from_secret_exponent(
            SchnorrGroup::test_256(),
            BigUint::from(0xabcdef123456u64),
        );
        assert_eq!(
            kp.fingerprint().to_hex(),
            "4a24851c55c5e0da9bc091df6bebc33f79eddbd5e45747abe12d3b1592ea1b6b"
        );
        let sig = kp.sign(b"known-answer test message");
        assert_eq!(
            sig.e().to_hex(),
            "351ed234974c000e7b5851a6540323d2e72e3dfe0f53b0ff2452323d6b8997f1"
        );
        assert_eq!(
            sig.s().to_hex(),
            "27a82f24d4292c73577ef182232a7b48cb80b8b2d8e998b6a94db7a993eb177a"
        );
        assert!(kp.public_key().verify(b"known-answer test message", &sig));
    }

    #[test]
    fn deterministic_signatures() {
        let kp = pair(1);
        assert_eq!(kp.sign(b"stable"), kp.sign(b"stable"));
        assert_ne!(kp.sign(b"one"), kp.sign(b"two"));
    }

    #[test]
    fn modp_2048_round_trip() {
        // One realistic-size signature to exercise the big group end-to-end.
        let kp =
            KeyPair::from_secret_exponent(SchnorrGroup::modp_2048(), BigUint::from(0xdeadbeefu64));
        let sig = kp.sign(b"big group message");
        assert!(kp.public_key().verify(b"big group message", &sig));
        assert!(!kp.public_key().verify(b"other", &sig));
    }

    #[test]
    fn serde_round_trip() {
        // Exercise the serde derives through a binary-ish round trip using
        // the `serde` test-friendly token stream via Debug equality after
        // a manual clone. (No serde_json in the approved dependency set.)
        let kp = pair(4);
        let sig = kp.sign(b"x");
        let cloned = sig.clone();
        assert_eq!(sig, cloned);
    }
}
