//! Named Schnorr groups: safe-prime multiplicative subgroups in which
//! keys live and signatures are computed.

use std::fmt;
use std::sync::Arc;

use drbac_bignum::{is_probable_prime, random_prime, BigUint, MontgomeryCtx};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier naming a [`SchnorrGroup`], carried inside signatures so a
/// verifier can reject cross-group confusion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupId {
    /// 256-bit safe-prime group. Fast, **not secure**; for tests and
    /// simulations only.
    Test256,
    /// RFC 3526 2048-bit MODP group (group 14), prime-order subgroup of the
    /// squares with generator 4. Realistic cryptographic cost.
    Modp2048,
    /// A caller-generated group (see [`SchnorrGroup::generate`]).
    Custom,
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupId::Test256 => f.write_str("test-256"),
            GroupId::Modp2048 => f.write_str("modp-2048"),
            GroupId::Custom => f.write_str("custom"),
        }
    }
}

/// A Schnorr group: a prime `p = 2q + 1`, the prime subgroup order `q`, and
/// a generator `g` of the order-`q` subgroup of squares mod `p`.
///
/// The struct is cheaply clonable (`Arc` internals, including a cached
/// Montgomery context for exponentiations mod `p`).
///
/// # Example
///
/// ```
/// use drbac_crypto::SchnorrGroup;
/// use drbac_bignum::BigUint;
///
/// let g = SchnorrGroup::test_256();
/// // g^q == 1: the generator really has order q.
/// assert!(g.pow_g(g.q()).is_one());
/// ```
#[derive(Clone)]
pub struct SchnorrGroup {
    inner: Arc<GroupInner>,
}

struct GroupInner {
    id: GroupId,
    p: BigUint,
    q: BigUint,
    g: BigUint,
    mont_p: MontgomeryCtx,
}

impl fmt::Debug for SchnorrGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchnorrGroup")
            .field("id", &self.inner.id)
            .field("bits", &self.inner.p.bits())
            .finish()
    }
}

impl PartialEq for SchnorrGroup {
    fn eq(&self, other: &Self) -> bool {
        self.inner.p == other.inner.p && self.inner.g == other.inner.g
    }
}

impl Eq for SchnorrGroup {}

/// 256-bit safe prime (seeded generation; see `tools` note in DESIGN.md).
const TEST256_P: &str = "b7e9f735f74bf461eb409d67747a627534f17ded4ba95a60790f978549c8c24f";
const TEST256_Q: &str = "5bf4fb9afba5fa30f5a04eb3ba3d313a9a78bef6a5d4ad303c87cbc2a4e46127";

/// RFC 3526 group 14 prime (2048-bit MODP).
const MODP2048_P: &str = concat!(
    "ffffffffffffffffc90fdaa22168c234c4c6628b80dc1cd129024e088a67cc74",
    "020bbea63b139b22514a08798e3404ddef9519b3cd3a431b302b0a6df25f1437",
    "4fe1356d6d51c245e485b576625e7ec6f44c42e9a637ed6b0bff5cb6f406b7ed",
    "ee386bfb5a899fa5ae9f24117c4b1fe649286651ece45b3dc2007cb8a163bf05",
    "98da48361c55d39a69163fa8fd24cf5f83655d23dca3ad961c62f356208552bb",
    "9ed529077096966d670c354e4abc9804f1746c08ca18217c32905e462e36ce3b",
    "e39e772c180e86039b2783a2ec07a28fb5c55df06f4c52c9de2bcbf695581718",
    "3995497cea956ae515d2261898fa051015728e5a8aacaa68ffffffffffffffff",
);

impl SchnorrGroup {
    /// The fast, insecure 256-bit test group.
    pub fn test_256() -> Self {
        // Built once: constructing a group computes a Montgomery context
        // for p, and decoders call this for every key they parse.
        static GROUP: std::sync::OnceLock<SchnorrGroup> = std::sync::OnceLock::new();
        GROUP
            .get_or_init(|| {
                let p = BigUint::from_hex(TEST256_P).expect("valid constant");
                let q = BigUint::from_hex(TEST256_Q).expect("valid constant");
                Self::from_parts(GroupId::Test256, p, q, BigUint::from(4u64))
            })
            .clone()
    }

    /// The RFC 3526 2048-bit MODP group (group 14), subgroup of squares.
    pub fn modp_2048() -> Self {
        static GROUP: std::sync::OnceLock<SchnorrGroup> = std::sync::OnceLock::new();
        GROUP
            .get_or_init(|| {
                let p = BigUint::from_hex(MODP2048_P).expect("valid constant");
                let q = (&p - &BigUint::one()).shr_bits(1);
                Self::from_parts(GroupId::Modp2048, p, q, BigUint::from(4u64))
            })
            .clone()
    }

    /// Generates a fresh safe-prime group with a `bits`-bit modulus.
    ///
    /// Intended for tests and experiments; generation cost grows steeply
    /// with `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits < 8`.
    pub fn generate<R: Rng + ?Sized>(bits: usize, rng: &mut R) -> Self {
        assert!(bits >= 8, "group modulus too small");
        loop {
            let q = random_prime(rng, bits - 1);
            let p = &(&q + &q) + &BigUint::one();
            if is_probable_prime(&p, 32, rng) {
                return Self::from_parts(GroupId::Custom, p, q, BigUint::from(4u64));
            }
        }
    }

    /// Builds a [`GroupId::Custom`] group from explicit parts without
    /// validation; used when deserializing foreign keys. Call
    /// [`Self::validate_parameters`] before trusting such a group.
    pub fn custom_from_parts(p: BigUint, q: BigUint, g: BigUint) -> Self {
        Self::from_parts(GroupId::Custom, p, q, g)
    }

    fn from_parts(id: GroupId, p: BigUint, q: BigUint, g: BigUint) -> Self {
        let mont_p = MontgomeryCtx::new(&p).expect("group modulus is an odd prime");
        SchnorrGroup {
            inner: Arc::new(GroupInner {
                id,
                p,
                q,
                g,
                mont_p,
            }),
        }
    }

    /// The group identifier.
    pub fn id(&self) -> GroupId {
        self.inner.id
    }

    /// The modulus `p`.
    pub fn p(&self) -> &BigUint {
        &self.inner.p
    }

    /// The subgroup order `q = (p - 1) / 2`.
    pub fn q(&self) -> &BigUint {
        &self.inner.q
    }

    /// The subgroup generator `g`.
    pub fn g(&self) -> &BigUint {
        &self.inner.g
    }

    /// `g^e mod p`.
    pub fn pow_g(&self, e: &BigUint) -> BigUint {
        self.inner.mont_p.modpow(&self.inner.g, e)
    }

    /// `base^e mod p`.
    pub fn pow(&self, base: &BigUint, e: &BigUint) -> BigUint {
        self.inner.mont_p.modpow(base, e)
    }

    /// `a * b mod p`.
    pub fn mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        self.inner.mont_p.mul(a, b)
    }

    /// Checks that `y` is a valid subgroup element: `1 < y < p` and
    /// `y^q == 1 mod p`. Public keys must satisfy this.
    pub fn is_subgroup_element(&self, y: &BigUint) -> bool {
        if y <= &BigUint::one() || y >= self.p() {
            return false;
        }
        self.pow(y, self.q()).is_one()
    }

    /// Validates the group parameters themselves: `p` and `q` prime,
    /// `p == 2q + 1`, and `g` generates the order-`q` subgroup. Expensive;
    /// intended for tests and for accepting foreign custom groups.
    pub fn validate_parameters<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        let p_ok = is_probable_prime(self.p(), 16, rng);
        let q_ok = is_probable_prime(self.q(), 16, rng);
        let safe = &(&self.inner.q + &self.inner.q) + &BigUint::one() == self.inner.p;
        let g_ok = !self.inner.g.is_one() && self.pow_g(self.q()).is_one();
        p_ok && q_ok && safe && g_ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn test_256_parameters_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(SchnorrGroup::test_256().validate_parameters(&mut rng));
    }

    #[test]
    fn modp_2048_basic_structure() {
        let g = SchnorrGroup::modp_2048();
        assert_eq!(g.p().bits(), 2048);
        // p = 2q + 1 by construction of q.
        assert_eq!(&(g.q() + g.q()) + &BigUint::one(), *g.p());
        // generator has order q (one 2048-bit exponentiation; primality of
        // the RFC constant is well established, not re-checked here).
        assert!(g.pow_g(g.q()).is_one());
    }

    #[test]
    fn generated_group_is_valid() {
        let mut rng = StdRng::seed_from_u64(99);
        let g = SchnorrGroup::generate(64, &mut rng);
        assert_eq!(g.id(), GroupId::Custom);
        assert!(g.validate_parameters(&mut rng));
    }

    #[test]
    fn subgroup_membership() {
        let g = SchnorrGroup::test_256();
        let elem = g.pow_g(&BigUint::from(12345u64));
        assert!(g.is_subgroup_element(&elem));
        assert!(!g.is_subgroup_element(&BigUint::one()));
        assert!(!g.is_subgroup_element(&BigUint::zero()));
        assert!(!g.is_subgroup_element(g.p()));
        // A non-square (generator 2 of the full group) is not in the
        // squares subgroup when its order is 2q.
        let two = BigUint::from(2u64);
        if !g.pow(&two, g.q()).is_one() {
            assert!(!g.is_subgroup_element(&two));
        }
    }

    #[test]
    fn groups_compare_by_parameters() {
        assert_eq!(SchnorrGroup::test_256(), SchnorrGroup::test_256());
        assert_ne!(SchnorrGroup::test_256(), SchnorrGroup::modp_2048());
    }
}
