//! HMAC-SHA-256 (RFC 2104), for channel message authentication.

use crate::sha256::Sha256;

const BLOCK: usize = 64;

/// HMAC-SHA-256 of `msg` under `key`.
///
/// # Example
///
/// ```
/// use drbac_crypto::hmac_sha256;
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(tag[0..4], [0xf7, 0xbc, 0x83, 0xf4]);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        let digest = {
            let mut h = Sha256::new();
            h.update(key);
            h.finalize()
        };
        key_block[..32].copy_from_slice(&digest);
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Constant-time-ish tag comparison (full-width accumulate; avoids the
/// obvious early-exit timing channel).
pub fn verify_hmac_sha256(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    if tag.len() != 32 {
        return false;
    }
    let expected = hmac_sha256(key, msg);
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test cases 1–4, 6, 7.
    #[test]
    fn rfc4231_vectors() {
        // Case 1
        assert_eq!(
            hex(&hmac_sha256(&[0x0b; 20], b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        // Case 2
        assert_eq!(
            hex(&hmac_sha256(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
        // Case 3
        assert_eq!(
            hex(&hmac_sha256(&[0xaa; 20], &[0xdd; 50])),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
        // Case 4
        let key: Vec<u8> = (1..=25).collect();
        assert_eq!(
            hex(&hmac_sha256(&key, &[0xcd; 50])),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
        // Case 6: key longer than block.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
        // Case 7: long key and long data.
        assert_eq!(
            hex(&hmac_sha256(
                &[0xaa; 131],
                b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm." as &[u8]
            )),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
        assert!(!verify_hmac_sha256(b"k", b"other", &tag));
        assert!(!verify_hmac_sha256(b"other", b"m", &tag));
        assert!(!verify_hmac_sha256(b"k", b"m", &tag[..31]));
    }
}
