//! Coalition-scale scenario generation and federation soak running.
//!
//! This crate turns a `(family, seed, scale)` triple into a coalition
//! world — entities, a reproducible event schedule (publishes,
//! declarations, revocations, queries), and a centralized oracle graph
//! defining ground truth — and then executes that same schedule over
//! two substrates:
//!
//! * a deterministic [`SimNet`](drbac_net::SimNet) federation,
//!   optionally under [`FaultPlan`](drbac_net::FaultPlan) chaos plus a
//!   partition/heal and crash/restart cycle, and
//! * a real multi-daemon TCP federation (one
//!   [`WalletDaemon`](drbac_net::WalletDaemon) per org wallet).
//!
//! Every run produces a [`SoakReport`] whose [`SoakReport::decision_digest`]
//! is a pure function of the decisions and proof bytes — equal digests
//! across substrates are the byte-identical-proof parity check; the
//! invariant counters (`hard_mismatches`, `unsound`,
//! `termination_failures`, `spurious_terminations`) must all be zero.
//!
//! | Module | Responsibility |
//! |--------|----------------|
//! | [`Family`] / [`Scale`] / [`ScenarioSpec`] | what to generate |
//! | [`Scenario`] / [`Event`] / [`QuerySpec`] | the generated world |
//! | [`Oracle`] | centralized ground truth |
//! | [`SimFederation`] / [`TcpFederation`] | soak substrates |
//! | [`SoakReport`] | per-run metrics and parity digests |

#![warn(missing_docs)]

mod generate;
mod oracle;
mod report;
mod runner;
mod spec;

pub use generate::{Event, QuerySpec, Scenario};
pub use oracle::Oracle;
pub use report::{fnv64, LatencySummary, QueryRecord, SoakReport};
pub use runner::{run_simnet, run_tcp, RunConfig, SimFederation, TcpFederation};
pub use spec::{Family, Scale, ScenarioSpec};
