//! The centralized oracle: a single [`DelegationGraph`] that receives
//! every schedule event and defines ground truth for each query.
//!
//! Generated worlds contain no expiring credentials, so an oracle
//! answer is a pure function of the delegation/revocation set — it does
//! not drift with the simulated clock, which is what lets the same
//! schedule be checked on substrates whose clocks advance differently.

use std::collections::BTreeSet;

use drbac_core::{DelegationId, Proof, Timestamp};
use drbac_graph::{DelegationGraph, SearchOptions};

use crate::generate::{Event, QuerySpec};

/// Ground truth for a scenario run: the union of every published
/// delegation and declaration, minus the revocations applied so far.
#[derive(Debug, Default)]
pub struct Oracle {
    graph: DelegationGraph,
}

impl Oracle {
    /// An empty oracle.
    pub fn new() -> Oracle {
        Oracle {
            graph: DelegationGraph::new(),
        }
    }

    /// Mirrors one schedule event into the oracle (queries are no-ops).
    pub fn apply(&mut self, ev: &Event) {
        match ev {
            Event::Publish { cert, .. } => {
                self.graph.insert(std::sync::Arc::clone(cert));
            }
            Event::Declare { decl, .. } => {
                self.graph.insert_declaration(decl.declaration());
            }
            Event::Revoke { id, .. } => {
                self.graph.revoke(*id);
            }
            Event::Query(_) => {}
        }
    }

    /// The ground-truth answer for `q` at the current point of the
    /// schedule. Time-independent (no credential in a generated world
    /// expires), so `Timestamp(0)` is as good as any.
    pub fn answer(&self, q: &QuerySpec) -> Option<Proof> {
        let mut opts = SearchOptions::at(Timestamp(0));
        for c in &q.constraints {
            opts = opts.with_constraint(c.clone());
        }
        self.graph.direct_query(&q.subject, &q.object, &opts).0
    }

    /// Ids revoked so far.
    pub fn revoked(&self) -> &BTreeSet<DelegationId> {
        self.graph.revoked()
    }

    /// The underlying union graph (e.g. for declaration lookups).
    pub fn graph(&self) -> &DelegationGraph {
        &self.graph
    }
}
