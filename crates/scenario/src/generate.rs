//! The generator: turns a [`ScenarioSpec`] into a deterministic world —
//! entities, a reproducible event schedule, and discovery metadata.

use std::sync::Arc;

use drbac_core::{
    AttrConstraint, AttrDeclaration, AttrOp, AttrRef, DelegationId, DiscoveryTag, LocalEntity,
    Node, SignedAttrDeclaration, SignedDelegation, SignedRevocation, SubjectFlag, Ticks, Timestamp,
};
use drbac_crypto::SchnorrGroup;
use drbac_net::Directory;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::report::fnv64_extend;
use crate::spec::{Family, ScenarioSpec};
use crate::Oracle;

/// Tag TTL on every generated discovery tag: effectively "never expires
/// inside a soak run", so long schedules do not degrade into
/// tag-expired searches (TTL behaviour has its own dedicated tests).
const TAG_TTL: Ticks = Ticks(1_000_000);

/// One step of a scenario schedule. The runner executes these in order
/// against a federation while mirroring them into the [`Oracle`].
#[derive(Debug, Clone)]
pub enum Event {
    /// Publish `cert` at the org wallet `home` (always the *subject's*
    /// home — the paper's storage discipline, and the §4.2.1 condition
    /// for forward-search completeness).
    Publish {
        /// Index of the org wallet storing the credential.
        home: usize,
        /// The signed delegation (self-certified: issuer owns the
        /// object namespace, so no support proofs are needed).
        cert: Arc<SignedDelegation>,
    },
    /// Publish a valued-attribute declaration at org wallet `home`.
    Declare {
        /// Index of the org wallet holding the declaration.
        home: usize,
        /// The signed ceiling declaration.
        decl: SignedAttrDeclaration,
    },
    /// Revoke delegation `id` at the wallet that stores it.
    Revoke {
        /// Index of the org wallet storing the credential.
        home: usize,
        /// Id of the delegation being revoked.
        id: DelegationId,
        /// The issuer-signed revocation certificate.
        revocation: SignedRevocation,
    },
    /// Run a discovery query and compare it against the oracle.
    Query(QuerySpec),
}

/// A single ground-truth-checked discovery query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// Query subject (a user entity or a role).
    pub subject: Node,
    /// Query object (always a role).
    pub object: Node,
    /// Attribute constraints, if any.
    pub constraints: Vec<AttrConstraint>,
    /// Whether the decision must match the oracle exactly.
    /// Unconstrained queries are strict; constrained ones are checked
    /// for soundness only, because distributed constrained search picks
    /// segments greedily and may miss a satisfying path.
    pub strict: bool,
}

/// A generated world: entities, the schedule, and derived metadata.
/// Everything is a pure function of the [`ScenarioSpec`].
#[derive(Debug)]
pub struct Scenario {
    /// The spec this world was generated from.
    pub spec: ScenarioSpec,
    /// Org entities; org `i` owns wallet [`Scenario::wallet_addr`]`(i)`.
    pub orgs: Vec<LocalEntity>,
    /// User entities, homed at org `u % orgs`.
    pub users: Vec<LocalEntity>,
    /// The reproducible event schedule.
    pub schedule: Vec<Event>,
    /// The valued attribute used by attribute-carrying families.
    pub attr: Option<AttrRef>,
}

impl Scenario {
    /// Number of org wallets in the federation.
    pub fn wallets(&self) -> usize {
        self.spec.scale.orgs
    }

    /// Logical wallet address of org `i`.
    pub fn wallet_addr(i: usize) -> String {
        format!("fed.org{i}")
    }

    /// Home org of user `u` (round-robin assignment).
    pub fn user_home(&self, u: usize) -> usize {
        u % self.spec.scale.orgs
    }

    /// The org wallet that stores credentials whose subject is `node`:
    /// a user's home org for entities, the namespace owner for roles.
    pub fn home_of(&self, node: &Node) -> usize {
        match node {
            Node::Entity(id) => {
                if let Some(u) = self.users.iter().position(|u| u.id() == *id) {
                    self.user_home(u)
                } else {
                    self.orgs.iter().position(|o| o.id() == *id).unwrap_or(0)
                }
            }
            other => self
                .orgs
                .iter()
                .position(|o| o.id() == other.namespace())
                .expect("role objects belong to scenario orgs"),
        }
    }

    /// The `S`-flagged discovery tag pointing at org wallet `i`.
    pub fn tag(i: usize) -> DiscoveryTag {
        DiscoveryTag::new(Self::wallet_addr(i).as_str())
            .with_ttl(TAG_TTL)
            .with_subject_flag(SubjectFlag::Search)
    }

    /// The discovery directory an agent starts from: each org entity's
    /// home plus each user's home.
    pub fn directory(&self) -> Directory {
        let mut dir = Directory::new();
        for (i, org) in self.orgs.iter().enumerate() {
            dir.register_entity(org.id(), Self::tag(i));
        }
        for (u, user) in self.users.iter().enumerate() {
            dir.register(Node::entity(user), Self::tag(self.user_home(u)));
        }
        dir
    }

    /// Event counts `(publishes, declarations, revocations, queries)`.
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for ev in &self.schedule {
            match ev {
                Event::Publish { .. } => c.0 += 1,
                Event::Declare { .. } => c.1 += 1,
                Event::Revoke { .. } => c.2 += 1,
                Event::Query(_) => c.3 += 1,
            }
        }
        c
    }

    /// FNV-1a digest of the schedule: event kinds, credential ids and
    /// wire bytes, query endpoints. Two generations of the same spec
    /// must produce equal fingerprints (see the determinism tests).
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325;
        for ev in &self.schedule {
            match ev {
                Event::Publish { home, cert } => {
                    h = fnv64_extend(h, &[0, *home as u8]);
                    h = fnv64_extend(h, &cert.id().0);
                }
                Event::Declare { home, decl } => {
                    h = fnv64_extend(h, &[1, *home as u8]);
                    h = fnv64_extend(h, &decl.to_bytes());
                }
                Event::Revoke { home, id, .. } => {
                    h = fnv64_extend(h, &[2, *home as u8]);
                    h = fnv64_extend(h, &id.0);
                }
                Event::Query(q) => {
                    h = fnv64_extend(h, &[3, u8::from(q.strict)]);
                    h = fnv64_extend(h, format!("{}=>{}{:?}", q.subject, q.object, q.constraints).as_bytes());
                }
            }
        }
        h
    }

    /// FNV-1a digest of the oracle's answers over the schedule: the
    /// ground-truth decision (and proof bytes) for every query, taken
    /// at its position in the schedule. Pins the oracle side of the
    /// determinism contract.
    pub fn oracle_fingerprint(&self) -> u64 {
        let mut oracle = Oracle::new();
        let mut h = 0xcbf2_9ce4_8422_2325;
        for ev in &self.schedule {
            oracle.apply(ev);
            if let Event::Query(q) = ev {
                match oracle.answer(q) {
                    Some(proof) => {
                        h = fnv64_extend(h, &[1]);
                        h = fnv64_extend(h, &proof.to_bytes());
                    }
                    None => h = fnv64_extend(h, &[0]),
                }
            }
        }
        h
    }
}

/// Generation state shared by the family builders.
struct Gen {
    spec: ScenarioSpec,
    orgs: Vec<LocalEntity>,
    users: Vec<LocalEntity>,
    schedule: Vec<Event>,
    rng: StdRng,
    serial: u64,
}

impl Gen {
    fn new(spec: &ScenarioSpec) -> Gen {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.family.salt());
        let group = SchnorrGroup::test_256();
        let orgs = (0..spec.scale.orgs)
            .map(|i| LocalEntity::generate(format!("Org{i}"), group.clone(), &mut rng))
            .collect();
        let users = (0..spec.scale.users)
            .map(|i| LocalEntity::generate(format!("U{i}"), group.clone(), &mut rng))
            .collect();
        Gen {
            spec: *spec,
            orgs,
            users,
            schedule: Vec::new(),
            rng,
            serial: 0,
        }
    }

    fn scenario_view(&self) -> Scenario {
        // A transient view for home_of; entities are cheap Arc clones.
        Scenario {
            spec: self.spec,
            orgs: self.orgs.clone(),
            users: self.users.clone(),
            schedule: Vec::new(),
            attr: None,
        }
    }

    fn home_of(&self, node: &Node) -> usize {
        self.scenario_view().home_of(node)
    }

    fn role(&self, org: usize, r: usize) -> Node {
        Node::role(self.orgs[org].role(&format!("r{r}")))
    }

    /// Signs `[subject -> object] owner(object)` with subject/object
    /// tags pointing at the nodes' home wallets.
    fn delegate(
        &mut self,
        subject: Node,
        object: Node,
        attr: Option<(AttrRef, f64)>,
    ) -> Arc<SignedDelegation> {
        let issuer = self
            .orgs
            .iter()
            .position(|o| o.id() == object.namespace())
            .expect("objects are org roles");
        let serial = self.serial;
        self.serial += 1;
        let mut b = self.orgs[issuer]
            .delegate(subject.clone(), object.clone())
            .serial(serial)
            .subject_tag(Scenario::tag(self.home_of(&subject)))
            .object_tag(Scenario::tag(self.home_of(&object)));
        if let Some((a, v)) = attr {
            b = b.with_attr(a, v).expect("attr clause on issuer namespace");
        }
        Arc::new(b.sign(&self.orgs[issuer]).expect("delegation signs"))
    }

    /// Emits a publish of `[subject -> object]` and returns the cert.
    fn publish(
        &mut self,
        subject: Node,
        object: Node,
        attr: Option<(AttrRef, f64)>,
    ) -> Option<Arc<SignedDelegation>> {
        if subject == object {
            return None;
        }
        let cert = self.delegate(subject.clone(), object, attr);
        self.schedule.push(Event::Publish {
            home: self.home_of(&subject),
            cert: Arc::clone(&cert),
        });
        Some(cert)
    }

    /// Emits a revocation of `cert`, signed by its issuing org.
    fn revoke(&mut self, cert: &Arc<SignedDelegation>) {
        let issuer = self
            .orgs
            .iter()
            .find(|o| o.id() == cert.delegation().issuer())
            .expect("issuers are scenario orgs");
        let revocation =
            SignedRevocation::revoke(cert, issuer, Timestamp(0)).expect("revocation signs");
        self.schedule.push(Event::Revoke {
            home: self.home_of(cert.delegation().subject()),
            id: cert.id(),
            revocation,
        });
    }

    fn query(&mut self, subject: Node, object: Node) {
        self.schedule.push(Event::Query(QuerySpec {
            subject,
            object,
            constraints: Vec::new(),
            strict: true,
        }));
    }

    fn query_constrained(&mut self, subject: Node, object: Node, c: AttrConstraint) {
        self.schedule.push(Event::Query(QuerySpec {
            subject,
            object,
            constraints: vec![c],
            strict: false,
        }));
    }

    fn finish(self, attr: Option<AttrRef>) -> Scenario {
        Scenario {
            spec: self.spec,
            orgs: self.orgs,
            users: self.users,
            schedule: self.schedule,
            attr,
        }
    }
}

/// Generates the world for `spec`. Pure: same spec, same world.
pub(crate) fn generate(spec: &ScenarioSpec) -> Scenario {
    let mut g = Gen::new(spec);
    match spec.family {
        Family::DeepLadder => deep_ladder(&mut g),
        Family::WideFanout => wide_fanout(&mut g),
        Family::CrossFederation => cross_federation(&mut g),
        Family::AttributeChain => return attribute_chain(g),
        Family::Churn => churn(&mut g),
        Family::RevocationStorm => revocation_storm(&mut g),
        Family::FlashCrowd => flash_crowd(&mut g),
    }
    g.finish(None)
}

/// Ladder depth for the delegation budget: at least 2 rungs, capped so
/// discovery stays inside its hop budget.
fn ladder_depth(g: &Gen) -> usize {
    (g.spec.scale.delegations / g.spec.scale.users.max(1)).clamp(2, 8)
}

/// Rung `d` of user `u`'s ladder: a role in org `(u + d) % orgs`.
fn ladder_rung(g: &Gen, u: usize, d: usize) -> Node {
    let orgs = g.spec.scale.orgs;
    g.role((u + d) % orgs, d % g.spec.scale.roles_per_org)
}

fn deep_ladder(g: &mut Gen) {
    let depth = ladder_depth(g);
    for u in 0..g.spec.scale.users {
        let mut prev = Node::entity(&g.users[u]);
        for d in 0..depth {
            let rung = ladder_rung(g, u, d);
            if g.publish(prev.clone(), rung.clone(), None).is_some() {
                prev = rung;
            }
        }
    }
    for q in 0..g.spec.scale.queries {
        let u = g.rng.gen_range(0..g.spec.scale.users);
        if q % 4 == 3 {
            // A rung the ladder never reaches directly — oracle decides
            // (usually a denial unless another user's ladder covers it).
            let org = g.rng.gen_range(0..g.spec.scale.orgs);
            let r = g.rng.gen_range(0..g.spec.scale.roles_per_org);
            let target = g.role(org, r);
            g.query(Node::entity(&g.users[u]), target);
        } else {
            let d = g.rng.gen_range(0..depth);
            let target = ladder_rung(g, u, d);
            g.query(Node::entity(&g.users[u]), target);
        }
    }
}

fn wide_fanout(g: &mut Gen) {
    let orgs = g.spec.scale.orgs;
    // r0 of each org is its hub; every user joins their home hub.
    for u in 0..g.spec.scale.users {
        let hub = g.role(u % orgs, 0);
        g.publish(Node::entity(&g.users[u]), hub, None);
    }
    let fanout = g.spec.scale.delegations.saturating_sub(g.spec.scale.users);
    for k in 0..fanout {
        let src = g.role(k % orgs, 0);
        let dst_org = g.rng.gen_range(0..orgs);
        let dst_r = 1 + g.rng.gen_range(0..g.spec.scale.roles_per_org.saturating_sub(1).max(1));
        let dst = g.role(dst_org, dst_r.min(g.spec.scale.roles_per_org - 1));
        g.publish(src, dst, None);
    }
    for _ in 0..g.spec.scale.queries {
        let u = g.rng.gen_range(0..g.spec.scale.users);
        let org = g.rng.gen_range(0..orgs);
        let r = g.rng.gen_range(0..g.spec.scale.roles_per_org);
        let target = g.role(org, r);
        g.query(Node::entity(&g.users[u]), target);
    }
}

fn cross_federation(g: &mut Gen) {
    let orgs = g.spec.scale.orgs;
    let half = (orgs / 2).max(1);
    let fed_a: Vec<usize> = (0..half).collect();
    let fed_b: Vec<usize> = (half..orgs).collect();
    // Every user joins the anchor (r0) of their home org.
    for u in 0..g.spec.scale.users {
        let anchor = g.role(u % orgs, 0);
        g.publish(Node::entity(&g.users[u]), anchor, None);
    }
    // Ring of anchors inside each federation: every anchor reaches
    // every other anchor of its own side.
    for fed in [&fed_a, &fed_b] {
        for (i, &o) in fed.iter().enumerate() {
            let next = fed[(i + 1) % fed.len()];
            if next != o {
                let (src, dst) = (g.role(o, 0), g.role(next, 0));
                g.publish(src, dst, None);
            }
        }
    }
    // Bridges: B-side anchors reach A-side anchors, never the reverse.
    let bridges = (orgs / 4).max(1);
    for _ in 0..bridges {
        let from = fed_b[g.rng.gen_range(0..fed_b.len())];
        let to = fed_a[g.rng.gen_range(0..fed_a.len())];
        let (src, dst) = (g.role(from, 0), g.role(to, 0));
        g.publish(src, dst, None);
    }
    // Spend the remaining budget on per-org leaf roles off the anchor.
    let spent = g.spec.scale.users + orgs + bridges;
    for k in 0..g.spec.scale.delegations.saturating_sub(spent) {
        let org = k % orgs;
        if g.spec.scale.roles_per_org > 1 {
            let leaf = g.role(org, 1 + k % (g.spec.scale.roles_per_org - 1));
            let anchor = g.role(org, 0);
            g.publish(anchor, leaf, None);
        }
    }
    for q in 0..g.spec.scale.queries {
        let u = g.rng.gen_range(0..g.spec.scale.users);
        // Alternate: cross-federation probes (both directions — only
        // B→A can succeed) and local probes.
        let org = match q % 3 {
            0 => fed_a[g.rng.gen_range(0..fed_a.len())],
            1 => fed_b[g.rng.gen_range(0..fed_b.len())],
            _ => g.rng.gen_range(0..orgs),
        };
        let r = g.rng.gen_range(0..g.spec.scale.roles_per_org);
        let target = g.role(org, r);
        g.query(Node::entity(&g.users[u]), target);
    }
}

fn attribute_chain(mut g: Gen) -> Scenario {
    let bw = g.orgs[0].attr("bw", AttrOp::Min);
    let decl = SignedAttrDeclaration::sign(
        AttrDeclaration::new(bw.clone(), 1000.0).expect("declaration builds"),
        &g.orgs[0],
    )
    .expect("declaration signs");
    g.schedule.push(Event::Declare { home: 0, decl });

    let depth = ladder_depth(&g);
    for u in 0..g.spec.scale.users {
        let mut prev = Node::entity(&g.users[u]);
        for d in 0..depth {
            let rung = ladder_rung(&g, u, d);
            // Attribute clauses only on the attr owner's own
            // delegations (org0's namespace) — foreign clauses would
            // need attr-admin supports, deliberately out of scope.
            let attr = if rung.namespace() == g.orgs[0].id() {
                let v = g.rng.gen_range(1.0..100.0);
                Some((bw.clone(), v))
            } else {
                None
            };
            if g.publish(prev.clone(), rung.clone(), attr).is_some() {
                prev = rung;
            }
        }
    }
    for q in 0..g.spec.scale.queries {
        let u = g.rng.gen_range(0..g.spec.scale.users);
        let d = g.rng.gen_range(0..depth);
        let target = ladder_rung(&g, u, d);
        let subject = Node::entity(&g.users[u]);
        if q % 2 == 0 {
            g.query(subject, target);
        } else {
            let threshold = [10.0, 50.0, 90.0][q % 3];
            g.query_constrained(
                subject,
                target,
                AttrConstraint::at_least(bw.clone(), threshold),
            );
        }
    }
    g.finish(Some(bw))
}

/// A random mesh edge: subject drawn from users + roles, object a role.
fn mesh_edge(g: &mut Gen) -> (Node, Node) {
    let n_users = g.spec.scale.users;
    let n_roles = g.spec.scale.orgs * g.spec.scale.roles_per_org;
    let s = g.rng.gen_range(0..n_users + n_roles);
    let subject = if s < n_users {
        Node::entity(&g.users[s])
    } else {
        let r = s - n_users;
        g.role(r / g.spec.scale.roles_per_org, r % g.spec.scale.roles_per_org)
    };
    let o = g.rng.gen_range(0..n_roles);
    let object = g.role(o / g.spec.scale.roles_per_org, o % g.spec.scale.roles_per_org);
    (subject, object)
}

fn random_query(g: &mut Gen) {
    let u = g.rng.gen_range(0..g.spec.scale.users);
    let org = g.rng.gen_range(0..g.spec.scale.orgs);
    let r = g.rng.gen_range(0..g.spec.scale.roles_per_org);
    let target = g.role(org, r);
    g.query(Node::entity(&g.users[u]), target);
}

fn churn(g: &mut Gen) {
    let users = g.spec.scale.users;
    let leavers = users / 3;
    let joiners = users / 3;
    let initial_users = users - joiners;
    // Initial mesh over the founding members.
    let mut by_subject: Vec<Vec<Arc<SignedDelegation>>> = vec![Vec::new(); users];
    let initial = g.spec.scale.delegations * 2 / 3;
    for _ in 0..initial {
        let (mut subject, object) = mesh_edge(g);
        // Founding members only; joiners arrive later.
        if let Node::Entity(id) = &subject {
            if let Some(u) = g.users.iter().position(|x| x.id() == *id) {
                let founder = u % initial_users.max(1);
                subject = Node::entity(&g.users[founder]);
            }
        }
        if let Some(cert) = g.publish(subject.clone(), object, None) {
            if let Node::Entity(id) = &subject {
                if let Some(u) = g.users.iter().position(|x| x.id() == *id) {
                    by_subject[u].push(cert);
                }
            }
        }
    }
    let q3 = g.spec.scale.queries / 3;
    for _ in 0..q3 {
        random_query(g);
    }
    // Leave wave: the first `leavers` members lose every credential.
    for member in by_subject.iter().take(leavers).cloned().collect::<Vec<_>>() {
        for cert in member {
            g.revoke(&cert);
        }
    }
    // Join wave: the withheld members enroll now.
    let join_budget = g.spec.scale.delegations - initial;
    for k in 0..join_budget {
        let u = initial_users + k % joiners.max(1);
        if u < users {
            let org = g.rng.gen_range(0..g.spec.scale.orgs);
            let r = g.rng.gen_range(0..g.spec.scale.roles_per_org);
            let (subject, object) = (Node::entity(&g.users[u]), g.role(org, r));
            g.publish(subject, object, None);
        }
    }
    // Post-churn probes: leavers (expect denials unless another path
    // survives), joiners, and stayers — the oracle arbitrates all.
    for q in 0..g.spec.scale.queries - q3 {
        let u = match q % 3 {
            0 if leavers > 0 => q % leavers,
            1 if joiners > 0 => initial_users + q % joiners,
            _ => g.rng.gen_range(0..users),
        };
        let org = g.rng.gen_range(0..g.spec.scale.orgs);
        let r = g.rng.gen_range(0..g.spec.scale.roles_per_org);
        let target = g.role(org, r);
        g.query(Node::entity(&g.users[u]), target);
    }
}

fn revocation_storm(g: &mut Gen) {
    let mut certs = Vec::new();
    for _ in 0..g.spec.scale.delegations {
        let (subject, object) = mesh_edge(g);
        if let Some(cert) = g.publish(subject, object, None) {
            certs.push(cert);
        }
    }
    // Pre-storm queries establish monitors the storm must terminate.
    for _ in 0..g.spec.scale.queries / 2 {
        random_query(g);
    }
    // The storm: ~40% of every delegation, in one burst.
    for cert in certs.clone() {
        if g.rng.gen_bool(0.4) {
            g.revoke(&cert);
        }
    }
    for _ in 0..g.spec.scale.queries - g.spec.scale.queries / 2 {
        random_query(g);
    }
}

fn flash_crowd(g: &mut Gen) {
    // A compact world: short ladders from a few hot users.
    let depth = 3.min(ladder_depth(g));
    let hot_users = g.spec.scale.users.min(3);
    for u in 0..g.spec.scale.users {
        let mut prev = Node::entity(&g.users[u]);
        for d in 0..depth {
            let rung = ladder_rung(g, u, d);
            if g.publish(prev.clone(), rung.clone(), None).is_some() {
                prev = rung;
            }
        }
    }
    // Hot pairs: each hot user against the top of their own ladder.
    let hot: Vec<(Node, Node)> = (0..hot_users)
        .map(|u| {
            (
                Node::entity(&g.users[u]),
                ladder_rung(g, u, depth - 1),
            )
        })
        .collect();
    for q in 0..g.spec.scale.queries {
        if q % 5 < 4 {
            // Bursts: 80% of traffic on the hot set, consecutively.
            let (s, o) = hot[(q / 5) % hot.len()].clone();
            g.query(s, o);
        } else {
            random_query(g);
        }
    }
}
