//! Soak run reports: per-query records, latency summaries, and the
//! deterministic digests used for cross-substrate parity checks.

/// FNV-1a offset basis (64-bit).
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Extends an FNV-1a 64-bit hash with `bytes`.
pub(crate) fn fnv64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_extend(FNV_OFFSET, bytes)
}

/// Order statistics over a set of samples (nanoseconds, ticks, or
/// wallet counts — the unit is the caller's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// 50th percentile.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencySummary {
    /// Summarizes `samples` (consumed: sorted in place).
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let pick = |p: f64| samples[((samples.len() - 1) as f64 * p) as usize];
        LatencySummary {
            count: samples.len(),
            p50: pick(0.50),
            p90: pick(0.90),
            p99: pick(0.99),
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// The observed outcome of one scheduled query.
#[derive(Debug, Clone, Copy)]
pub struct QueryRecord {
    /// Whether the decision must match the oracle exactly (see
    /// [`crate::QuerySpec::strict`]).
    pub strict: bool,
    /// Whether distributed discovery produced a proof.
    pub granted: bool,
    /// Whether the oracle holds a proof at this schedule position.
    pub oracle_granted: bool,
    /// Whether the discovery run was degraded (timeouts, expired tags,
    /// skipped wallets) — degraded misses are tolerated under chaos.
    pub degraded: bool,
    /// Wallets contacted during discovery.
    pub wallets_contacted: usize,
    /// Wall-clock latency of the discovery call, in nanoseconds.
    /// Excluded from all determinism digests.
    pub wall_ns: u64,
    /// FNV digest of the discovered proof's wire bytes, if granted.
    pub proof_digest: Option<u64>,
}

impl QueryRecord {
    /// A strict query whose decision diverged from the oracle.
    pub fn mismatch(&self) -> bool {
        self.strict && self.granted != self.oracle_granted
    }
}

/// Everything a soak run observed, per scenario × substrate.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Family name (see [`crate::Family::name`]).
    pub family: String,
    /// World seed.
    pub seed: u64,
    /// `"simnet"`, `"simnet+chaos"`, or `"tcp"`.
    pub substrate: String,
    /// Org wallets in the federation.
    pub wallets: usize,
    /// Delegations published.
    pub publishes: usize,
    /// Attribute declarations published.
    pub declarations: usize,
    /// Revocations issued.
    pub revocations: usize,
    /// Per-query outcomes, in schedule order.
    pub records: Vec<QueryRecord>,
    /// Grants that failed validation, endpoint, or constraint checks —
    /// must be 0 on every substrate, chaos included.
    pub unsound: usize,
    /// Proof monitors opened by granted queries.
    pub monitors_opened: usize,
    /// Monitors whose proof used a delegation that was later revoked —
    /// each of these sessions must terminate.
    pub monitors_expected_dead: usize,
    /// Expected-dead monitors that outlived the push path and were only
    /// terminated by the pull-based revalidation sweep (missed pushes —
    /// e.g. a crashed home lost its subscriber registry).
    pub monitors_repaired: usize,
    /// Expected-dead monitors still alive after push *and* the recovery
    /// sweep — must be 0.
    pub termination_failures: usize,
    /// Live monitors wrongly terminated (no revoked dependency) — must
    /// be 0.
    pub spurious_terminations: usize,
    /// Revocation propagation lag samples: per applied revocation, how
    /// long until the gateway observed it (ticks on SimNet, ns on TCP).
    pub revocation_lag: LatencySummary,
    /// Messages on the wire (SimNet substrates only; 0 over TCP).
    pub total_messages: u64,
    /// Push messages (SimNet substrates only).
    pub push_messages: u64,
    /// Request timeouts (SimNet substrates only).
    pub timeouts: u64,
    /// Publish/revoke deliveries that needed more than one attempt
    /// (reliable delivery under loss).
    pub retried_ops: u64,
}

impl SoakReport {
    /// Queries granted.
    pub fn grants(&self) -> usize {
        self.records.iter().filter(|r| r.granted).count()
    }

    /// Queries denied.
    pub fn denials(&self) -> usize {
        self.records.len() - self.grants()
    }

    /// Strict divergences from the oracle on *non-degraded* queries —
    /// the hard oracle-equivalence bar; must be 0 on every substrate.
    pub fn hard_mismatches(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.mismatch() && !r.degraded)
            .count()
    }

    /// Strict divergences on degraded queries (tolerated under chaos:
    /// a partitioned or lossy path legitimately hides credentials, and
    /// the outcome says so via the degraded flag).
    pub fn degraded_mismatches(&self) -> usize {
        self.records
            .iter()
            .filter(|r| r.mismatch() && r.degraded)
            .count()
    }

    /// Fraction of queries flagged degraded.
    pub fn degraded_rate(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let d = self.records.iter().filter(|r| r.degraded).count();
        d as f64 / self.records.len() as f64
    }

    /// Wall-clock discovery latency percentiles (ns).
    pub fn latency(&self) -> LatencySummary {
        LatencySummary::from_samples(self.records.iter().map(|r| r.wall_ns).collect())
    }

    /// Wallets-contacted percentiles.
    pub fn wallets_contacted(&self) -> LatencySummary {
        LatencySummary::from_samples(
            self.records
                .iter()
                .map(|r| r.wallets_contacted as u64)
                .collect(),
        )
    }

    /// Digest over the deterministic core of the run: per query, the
    /// strictness, decision, oracle decision, and proof bytes digest.
    /// Wall-clock timings are excluded, so two runs of the same
    /// schedule — even on different substrates — must produce equal
    /// digests when discovery behaves identically (the byte-identical
    /// proof parity check).
    pub fn decision_digest(&self) -> u64 {
        let mut h = FNV_OFFSET;
        for r in &self.records {
            h = fnv64_extend(
                h,
                &[
                    u8::from(r.strict),
                    u8::from(r.granted),
                    u8::from(r.oracle_granted),
                ],
            );
            h = fnv64_extend(h, &r.proof_digest.unwrap_or(0).to_le_bytes());
        }
        h
    }

    /// The per-query proof digests (None = denial), for fine-grained
    /// cross-substrate comparison in tests.
    pub fn proof_digests(&self) -> Vec<Option<u64>> {
        self.records.iter().map(|r| r.proof_digest).collect()
    }
}
