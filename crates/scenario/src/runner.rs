//! Soak runners: execute a scenario schedule over a federation while
//! mirroring every event into the centralized [`Oracle`], and report
//! per-query equivalence, soundness, session termination, and latency.
//!
//! Two substrates run the *same* executor:
//!
//! * [`SimFederation`] — one [`WalletHost`] per org on a deterministic
//!   [`SimNet`], optionally composed with [`FaultPlan`] chaos plus a
//!   partition/heal and crash/restart cycle at schedule checkpoints.
//! * [`TcpFederation`] — one real [`WalletDaemon`] socket per org, a
//!   routed [`TcpTransport`], and per-daemon [`SubscriberLink`]s so
//!   revocation pushes reach the gateway over the wire.
//!
//! Delivery discipline: publishes/declarations/revocations are retried
//! until acknowledged; events that cannot reach a (partitioned) home
//! are *deferred* — held out of both the federation and the oracle —
//! and flushed after heal, so ground truth never diverges from what the
//! network actually accepted.

use std::collections::{BTreeSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drbac_core::{
    DelegationId, ProofValidator, Ticks, Timestamp, ValidationContext, WalletAddr,
};
use drbac_net::proto::{Reply, Request};
use drbac_net::{
    DiscoveryAgent, FaultPlan, NetError, RetryPolicy, SimNet, SubscriberLink, TcpConfig,
    TcpTransport, WalletDaemon, WalletHost,
};
use drbac_wallet::{DelegationEvent, InvalidationReason, ProofMonitor, Wallet};
use drbac_core::SimClock;

use crate::generate::{Event, Scenario};
use crate::report::{fnv64, LatencySummary, QueryRecord, SoakReport};
use crate::Oracle;

/// How a SimNet soak run is perturbed.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Seeded request loss / latency jitter / timeout budget.
    pub faults: Option<FaultPlan>,
    /// Additionally run a partition→heal and a crash→restart cycle at
    /// 1/3, 1/2, and 2/3 of the schedule.
    pub chaos_cycle: bool,
    /// Override the proof-search worker count on every wallet.
    pub workers: Option<usize>,
}

impl RunConfig {
    /// A pristine network: every strict query must match the oracle
    /// with no degradation at all.
    pub fn fault_free() -> RunConfig {
        RunConfig::default()
    }

    /// The chaos posture: ≤8% seeded request loss, 1-tick jitter, plus
    /// the partition and crash cycle. Light enough that bounded retry
    /// absorbs individual losses; divergence is only tolerated on
    /// queries that self-report as degraded.
    pub fn chaos(seed: u64) -> RunConfig {
        RunConfig {
            faults: Some(
                FaultPlan::seeded(seed)
                    .with_request_loss(0.08)
                    .with_latency_jitter(Ticks(1)),
            ),
            chaos_cycle: true,
            workers: None,
        }
    }

    /// Sets the per-wallet proof-search worker count.
    pub fn with_workers(mut self, workers: usize) -> RunConfig {
        self.workers = Some(workers);
        self
    }
}

/// Rounds of bounded retry before a delivery is deferred.
const DELIVERY_ROUNDS: usize = 3;
/// Wall-clock budget for TCP push/termination settling.
const TCP_SETTLE: Duration = Duration::from_secs(3);

/// Polls `cond` until it holds or `timeout` lapses.
fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    cond()
}

/// The substrate seam the shared executor drives.
pub(crate) trait Substrate {
    /// One bounded-retry delivery attempt. `true` = acknowledged.
    fn try_deliver(&mut self, home: usize, req: &Request) -> bool;
    /// The long-lived gateway discovery agent.
    fn agent(&mut self) -> &mut DiscoveryAgent;
    /// Settles a just-acknowledged revocation: waits for its
    /// invalidation push to reach the gateway, returning the observed
    /// lag (ticks on SimNet, ns on TCP) and whether the push had to be
    /// recovered by pull-based revalidation.
    fn settle_revocation(&mut self, id: DelegationId) -> (Option<u64>, bool);
    /// Chaos checkpoint, called before each schedule index.
    fn checkpoint(&mut self, idx: usize, total: usize);
    /// Drains in-flight traffic (SimNet: run to idle).
    fn settle(&mut self);
    /// Blocks until `check` holds or a substrate-appropriate budget
    /// lapses (TCP pushes are asynchronous).
    fn await_terminations(&mut self, check: &mut dyn FnMut() -> bool);
    /// Pull-based recovery: revalidate the gateway's cache against the
    /// home wallets (the documented missed-push repair path).
    fn recovery_sweep(&mut self);
    /// `(total_messages, push_messages, timeouts)` if observable.
    fn net_stats(&self) -> (u64, u64, u64);
    /// Deliveries that needed more than one attempt so far.
    fn retried(&self) -> u64;
}

/// Builds the wire request for a non-query event.
fn request_of(ev: &Event) -> (usize, Request) {
    match ev {
        Event::Publish { home, cert } => (
            *home,
            Request::Publish {
                cert: Arc::clone(cert),
                supports: Vec::new(),
            },
        ),
        Event::Declare { home, decl } => (*home, Request::PublishDeclaration(decl.clone())),
        Event::Revoke {
            home, revocation, ..
        } => (*home, Request::Revoke(revocation.clone())),
        Event::Query(_) => unreachable!("queries are not deliveries"),
    }
}

/// The delivery-side state of an executing run: ground truth, the
/// deferred-event queue, and the revocation staleness accounting.
#[derive(Default)]
struct DeliveryState {
    oracle: Oracle,
    pending: VecDeque<Event>,
    lag_samples: Vec<u64>,
    push_repairs: usize,
}

/// One reliable delivery attempt: the oracle learns the event only if
/// the federation acknowledged it, and a delivered revocation settles
/// (push observed or repaired) before the schedule proceeds.
fn deliver<S: Substrate>(sub: &mut S, st: &mut DeliveryState, ev: &Event) -> bool {
    let (home, req) = request_of(ev);
    if !sub.try_deliver(home, &req) {
        return false;
    }
    st.oracle.apply(ev);
    if let Event::Revoke { id, .. } = ev {
        let (lag, repaired) = sub.settle_revocation(*id);
        if let Some(l) = lag {
            st.lag_samples.push(l);
        }
        if repaired {
            st.push_repairs += 1;
        }
    }
    true
}

/// Redelivers deferred events in order, stopping at the first that
/// still cannot reach its home.
fn flush<S: Substrate>(sub: &mut S, st: &mut DeliveryState) {
    while let Some(ev) = st.pending.front() {
        let ev = ev.clone();
        if deliver(sub, st, &ev) {
            st.pending.pop_front();
        } else {
            break;
        }
    }
}

/// Executes the schedule on `sub`, mirroring into the oracle.
pub(crate) fn execute<S: Substrate>(
    scenario: &Scenario,
    sub: &mut S,
    substrate: &str,
) -> SoakReport {
    let mut st = DeliveryState::default();
    let mut records: Vec<QueryRecord> = Vec::new();
    let mut monitors: Vec<(ProofMonitor, BTreeSet<DelegationId>)> = Vec::new();
    let mut unsound = 0usize;
    let total = scenario.schedule.len();

    for (idx, ev) in scenario.schedule.iter().enumerate() {
        sub.checkpoint(idx, total);
        flush(sub, &mut st);
        match ev {
            Event::Query(q) => {
                let t0 = Instant::now();
                let outcome = sub.agent().discover(&q.subject, &q.object, &q.constraints);
                let wall_ns = t0.elapsed().as_nanos() as u64;
                let oracle_granted = st.oracle.answer(q).is_some();
                let granted = outcome.found();
                let mut proof_digest = None;
                if let Some(monitor) = outcome.monitor {
                    let proof = monitor.proof().clone();
                    proof_digest = Some(fnv64(&proof.to_bytes()));
                    let sound = ProofValidator::new(ValidationContext::at(Timestamp(0)))
                        .validate(&proof)
                        .is_ok()
                        && proof.subject() == &q.subject
                        && proof.object() == &q.object
                        && (q.constraints.is_empty()
                            || proof
                                .accumulate()
                                .satisfies(&q.constraints, st.oracle.graph().declarations()));
                    if !sound {
                        unsound += 1;
                    }
                    monitors.push((monitor, proof.delegation_ids()));
                }
                records.push(QueryRecord {
                    strict: q.strict,
                    granted,
                    oracle_granted,
                    degraded: outcome.degraded,
                    wallets_contacted: outcome.wallets_contacted.len(),
                    wall_ns,
                    proof_digest,
                });
            }
            delivery => {
                if st.pending.is_empty() && deliver(sub, &mut st, delivery) {
                    continue;
                }
                // Keep global order: everything behind a stuck delivery
                // waits with it until the network heals.
                st.pending.push_back(delivery.clone());
            }
        }
    }

    // Fire any remaining chaos checkpoints (heal included), then the
    // deferred tail must drain.
    sub.checkpoint(total, total);
    for _ in 0..DELIVERY_ROUNDS {
        flush(sub, &mut st);
        if st.pending.is_empty() {
            break;
        }
        sub.settle();
    }
    assert!(
        st.pending.is_empty(),
        "deferred deliveries still undeliverable after heal"
    );
    sub.settle();

    // Session termination: every monitor whose proof depends on a
    // revoked delegation must be dead — by push, or failing that by
    // the pull-based recovery sweep.
    let revoked = st.oracle.revoked().clone();
    let expected_dead: Vec<&(ProofMonitor, BTreeSet<DelegationId>)> = monitors
        .iter()
        .filter(|(_, ids)| ids.iter().any(|id| revoked.contains(id)))
        .collect();
    sub.await_terminations(&mut || expected_dead.iter().all(|(m, _)| !m.is_valid()));
    let alive_before_sweep = expected_dead.iter().filter(|(m, _)| m.is_valid()).count();
    if alive_before_sweep > 0 {
        sub.recovery_sweep();
        sub.settle();
    }
    let termination_failures = expected_dead.iter().filter(|(m, _)| m.is_valid()).count();
    let monitors_repaired = alive_before_sweep - termination_failures;
    let spurious_terminations = monitors
        .iter()
        .filter(|(m, ids)| !m.is_valid() && !ids.iter().any(|id| revoked.contains(id)))
        .count();

    let (publishes, declarations, revocations, _) = scenario.counts();
    let (total_messages, push_messages, timeouts) = sub.net_stats();
    SoakReport {
        family: scenario.spec.family.name().to_string(),
        seed: scenario.spec.seed,
        substrate: substrate.to_string(),
        wallets: scenario.wallets(),
        publishes,
        declarations,
        revocations,
        records,
        unsound,
        monitors_opened: monitors.len(),
        monitors_expected_dead: expected_dead.len(),
        monitors_repaired: monitors_repaired + st.push_repairs,
        termination_failures,
        spurious_terminations,
        revocation_lag: LatencySummary::from_samples(st.lag_samples),
        total_messages,
        push_messages,
        timeouts,
        retried_ops: sub.retried(),
    }
}

/// A SimNet federation: one [`WalletHost`] per org plus the gateway
/// host whose wallet backs the long-lived discovery agent.
pub struct SimFederation {
    net: SimNet,
    clock: SimClock,
    hosts: Vec<WalletHost>,
    gateway: WalletHost,
    agent: DiscoveryAgent,
    chaos_cycle: bool,
    fired: [bool; 3],
    partition_target: usize,
    crash_target: usize,
    retried: u64,
}

impl SimFederation {
    /// Deploys `scenario`'s federation on a fresh [`SimNet`] under
    /// `cfg` (faults installed, workers applied), without running the
    /// schedule yet.
    pub fn deploy(scenario: &Scenario, cfg: &RunConfig) -> SimFederation {
        let clock = SimClock::new();
        let net = SimNet::new(clock.clone(), Ticks(1));
        let hosts: Vec<WalletHost> = (0..scenario.wallets())
            .map(|i| {
                let addr = Scenario::wallet_addr(i);
                let host = net.add_host(addr.as_str(), Wallet::new(addr.as_str(), clock.clone()));
                if let Some(w) = cfg.workers {
                    host.wallet().set_search_workers(w);
                }
                host
            })
            .collect();
        let gateway = net.add_host("fed.gateway", Wallet::new("fed.gateway", clock.clone()));
        if let Some(w) = cfg.workers {
            gateway.wallet().set_search_workers(w);
        }
        let agent = DiscoveryAgent::new(net.clone(), &gateway, scenario.directory());
        net.set_fault_plan(cfg.faults.clone());
        let wallets = scenario.wallets();
        let partition_target = (scenario.spec.seed as usize) % wallets;
        let mut crash_target = (scenario.spec.seed as usize + wallets / 2) % wallets;
        if crash_target == partition_target && wallets > 1 {
            crash_target = (crash_target + 1) % wallets;
        }
        SimFederation {
            net,
            clock,
            hosts,
            gateway,
            agent,
            chaos_cycle: cfg.chaos_cycle,
            fired: [false; 3],
            partition_target,
            crash_target,
            retried: 0,
        }
    }

    /// The underlying network (e.g. for storage-discipline audits).
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// Logical addresses of every org wallet.
    pub fn host_addrs(&self) -> Vec<WalletAddr> {
        (0..self.hosts.len())
            .map(|i| Scenario::wallet_addr(i).as_str().into())
            .collect()
    }

    /// Runs the schedule and reports.
    pub fn soak(&mut self, scenario: &Scenario) -> SoakReport {
        let substrate = if self.chaos_cycle || self.net.stats().timeouts > 0 {
            "simnet+chaos"
        } else {
            "simnet"
        };
        execute(scenario, self, substrate)
    }

    fn addr(i: usize) -> WalletAddr {
        Scenario::wallet_addr(i).as_str().into()
    }
}

impl Substrate for SimFederation {
    fn try_deliver(&mut self, home: usize, req: &Request) -> bool {
        for round in 0..DELIVERY_ROUNDS {
            let out = RetryPolicy::standard().run(&self.net, &Self::addr(home), req);
            if round > 0 || out.attempts > 1 {
                self.retried += u64::from(out.attempts.saturating_sub(1)).max(u64::from(round > 0));
            }
            match out.reply {
                Ok(reply) if !reply.is_error() => return true,
                // A partitioned / crashed host: give up this round and
                // let the executor defer the delivery.
                _ if self.net.is_partitioned(&Self::addr(home)) => return false,
                _ => continue,
            }
        }
        false
    }

    fn agent(&mut self) -> &mut DiscoveryAgent {
        &mut self.agent
    }

    fn settle_revocation(&mut self, id: DelegationId) -> (Option<u64>, bool) {
        let t0 = self.clock.now().0;
        self.net.run_until_idle();
        let lag = self.clock.now().0 - t0;
        // Missed push (e.g. the subscribe RPC was lost earlier): the
        // gateway still holds the credential unrevoked. Recover through
        // the documented pull path — revalidate the cache at the homes.
        let mut repaired = false;
        if self.gateway.wallet().get(id).is_some() && !self.gateway.wallet().is_revoked(id) {
            self.gateway.resubscribe_cached(&self.net);
            self.net.run_until_idle();
            repaired = true;
        }
        (Some(lag), repaired)
    }

    fn checkpoint(&mut self, idx: usize, total: usize) {
        if !self.chaos_cycle {
            return;
        }
        if !self.fired[0] && idx >= total / 3 {
            self.fired[0] = true;
            self.net.partition_host(&Self::addr(self.partition_target));
        }
        if !self.fired[1] && idx >= total / 2 {
            self.fired[1] = true;
            self.net.heal_partitions();
            self.net.run_until_idle();
        }
        if !self.fired[2] && idx >= total * 2 / 3 {
            self.fired[2] = true;
            if let Some(store) = self.net.crash_host(&Self::addr(self.crash_target)) {
                self.net
                    .restart_host(&Self::addr(self.crash_target), &store)
                    .expect("journaled state replays");
            }
        }
    }

    fn settle(&mut self) {
        self.net.heal_partitions();
        self.net.run_until_idle();
    }

    fn await_terminations(&mut self, _check: &mut dyn FnMut() -> bool) {
        // Synchronous substrate: settle() already drained every push.
    }

    fn recovery_sweep(&mut self) {
        self.gateway.resubscribe_cached(&self.net);
        self.net.run_until_idle();
    }

    fn net_stats(&self) -> (u64, u64, u64) {
        let s = self.net.stats();
        (s.total_messages, s.push_messages, s.timeouts)
    }

    fn retried(&self) -> u64 {
        self.retried
    }
}

/// A real multi-daemon TCP federation: one [`WalletDaemon`] per org on
/// a loopback socket, a routed [`TcpTransport`], and one
/// [`SubscriberLink`] per daemon carrying revocation pushes back to the
/// gateway wallet.
pub struct TcpFederation {
    daemons: Vec<WalletDaemon>,
    transport: Arc<TcpTransport>,
    gateway: Wallet,
    links: Vec<SubscriberLink>,
    agent: DiscoveryAgent,
    retried: u64,
}

impl TcpFederation {
    /// Binds one daemon per org wallet on `127.0.0.1:0`, routes the
    /// transport, and opens the per-daemon push links.
    pub fn deploy(scenario: &Scenario, workers: Option<usize>) -> Result<TcpFederation, NetError> {
        let clock = SimClock::new();
        let transport = Arc::new(TcpTransport::new(TcpConfig::fast()));
        let mut daemons = Vec::with_capacity(scenario.wallets());
        for i in 0..scenario.wallets() {
            let addr = Scenario::wallet_addr(i);
            let wallet = Wallet::new(addr.as_str(), clock.clone());
            if let Some(w) = workers {
                wallet.set_search_workers(w);
            }
            let daemon = WalletDaemon::bind("127.0.0.1:0", wallet, TcpConfig::fast())
                .map_err(|e| NetError::Protocol(format!("bind daemon {i}: {e}")))?;
            transport.add_route(addr.as_str(), daemon.local_addr());
            daemons.push(daemon);
        }
        let gateway = Wallet::new("fed.gateway", clock.clone());
        if let Some(w) = workers {
            gateway.set_search_workers(w);
        }
        let links = (0..daemons.len())
            .map(|i| {
                SubscriberLink::open(
                    Scenario::wallet_addr(i).as_str(),
                    gateway.clone(),
                    Arc::clone(&transport),
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        let agent = DiscoveryAgent::new(
            Arc::clone(&transport),
            gateway.clone(),
            scenario.directory(),
        );
        Ok(TcpFederation {
            daemons,
            transport,
            gateway,
            links,
            agent,
            retried: 0,
        })
    }

    /// Number of live daemons.
    pub fn daemons(&self) -> usize {
        self.daemons.len()
    }

    /// Runs the schedule and reports.
    pub fn soak(&mut self, scenario: &Scenario) -> SoakReport {
        execute(scenario, self, "tcp")
    }

    /// Closes every push link and daemon. Also runs on drop.
    pub fn shutdown(&mut self) {
        for link in &self.links {
            link.close();
        }
        for daemon in &self.daemons {
            daemon.shutdown();
        }
        self.transport.drain_pool();
    }
}

impl Drop for TcpFederation {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Substrate for TcpFederation {
    fn try_deliver(&mut self, home: usize, req: &Request) -> bool {
        let out = RetryPolicy::standard().run(
            self.transport.as_ref(),
            &Scenario::wallet_addr(home).as_str().into(),
            req,
        );
        self.retried += u64::from(out.attempts.saturating_sub(1));
        matches!(out.reply, Ok(ref r) if !matches!(r, Reply::Error(_)))
    }

    fn agent(&mut self) -> &mut DiscoveryAgent {
        &mut self.agent
    }

    fn settle_revocation(&mut self, id: DelegationId) -> (Option<u64>, bool) {
        // Only wait when the gateway actually caches the credential —
        // otherwise there is nothing stale to serve and no push due.
        if self.gateway.get(id).is_none() || self.gateway.is_revoked(id) {
            return (None, false);
        }
        let t0 = Instant::now();
        let pushed = wait_until(TCP_SETTLE, || self.gateway.is_revoked(id));
        let lag = t0.elapsed().as_nanos() as u64;
        if pushed {
            return (Some(lag), false);
        }
        // Push never arrived (link died mid-flight): apply the
        // invalidation locally so the run cannot serve stale grants,
        // and report it as a repair.
        self.gateway.push_event(DelegationEvent {
            delegation: id,
            reason: InvalidationReason::Revoked,
        });
        (Some(lag), true)
    }

    fn checkpoint(&mut self, _idx: usize, _total: usize) {}

    fn settle(&mut self) {}

    fn await_terminations(&mut self, check: &mut dyn FnMut() -> bool) {
        wait_until(TCP_SETTLE, check);
    }

    fn recovery_sweep(&mut self) {
        // TCP pushes ride reliable links; missed pushes were already
        // repaired inline by settle_revocation.
    }

    fn net_stats(&self) -> (u64, u64, u64) {
        (0, 0, 0)
    }

    fn retried(&self) -> u64 {
        self.retried
    }
}

/// Deploys and soaks `scenario` on SimNet under `cfg`.
pub fn run_simnet(scenario: &Scenario, cfg: &RunConfig) -> SoakReport {
    SimFederation::deploy(scenario, cfg).soak(scenario)
}

/// Deploys and soaks `scenario` on a real TCP daemon federation.
pub fn run_tcp(scenario: &Scenario, workers: Option<usize>) -> Result<SoakReport, NetError> {
    let mut fed = TcpFederation::deploy(scenario, workers)?;
    let report = fed.soak(scenario);
    fed.shutdown();
    Ok(report)
}
