//! Scenario specifications: topology families and size parameters.

use std::fmt;

/// A coalition topology family — one structural archetype of how
/// delegations, entities, and queries are arranged across a federation.
///
/// The paper's evaluation exercises a single 5-delegation story; each
/// family here generalizes one stress axis of that story so the soak
/// suite can exercise discovery, revocation, and monitoring across
/// qualitatively different shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Family {
    /// Long assignment ladders: each user's credential chains through
    /// many role rungs, each rung homed at a different org wallet, so
    /// discovery must walk the full depth across the federation.
    DeepLadder,
    /// Wide fan-out meshes: users funnel into per-org hub roles which
    /// fan out to many leaf roles — shallow proofs, high branching.
    WideFanout,
    /// Two federations joined by a handful of bridge delegations;
    /// cross-federation queries succeed only through a bridge, and
    /// queries in the unbridged direction must be denied.
    CrossFederation,
    /// Attribute-heavy chains: rungs in the attribute owner's namespace
    /// carry valued-attribute clauses, and a share of the queries carry
    /// `at_least` constraints (checked for soundness, not completeness
    /// — distributed constrained search is deliberately greedy).
    AttributeChain,
    /// Entity churn: a random mesh followed by waves of members leaving
    /// (all their credentials revoked) and new members joining
    /// (credentials published mid-schedule), with queries interleaved.
    Churn,
    /// Revocation storm: a mesh, a round of monitored queries, then a
    /// burst revoking a large fraction of all delegations, then
    /// post-storm queries that must observe the denials.
    RevocationStorm,
    /// Flash-crowd query bursts: a small world hammered with repeated
    /// queries concentrated on a few hot (subject, object) pairs.
    FlashCrowd,
}

impl Family {
    /// Every family, in canonical order.
    pub const ALL: [Family; 7] = [
        Family::DeepLadder,
        Family::WideFanout,
        Family::CrossFederation,
        Family::AttributeChain,
        Family::Churn,
        Family::RevocationStorm,
        Family::FlashCrowd,
    ];

    /// Stable kebab-case name used in reports and bench artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Family::DeepLadder => "deep-ladder",
            Family::WideFanout => "wide-fanout",
            Family::CrossFederation => "cross-federation",
            Family::AttributeChain => "attribute-chain",
            Family::Churn => "churn",
            Family::RevocationStorm => "revocation-storm",
            Family::FlashCrowd => "flash-crowd",
        }
    }

    /// A family-specific salt mixed into the world seed so two families
    /// generated from the same seed do not share key material.
    pub(crate) fn salt(self) -> u64 {
        // Arbitrary fixed odd constants; part of the reproducibility
        // contract (changing them changes every generated world).
        match self {
            Family::DeepLadder => 0x9e37_79b9_7f4a_7c15,
            Family::WideFanout => 0xbf58_476d_1ce4_e5b9,
            Family::CrossFederation => 0x94d0_49bb_1331_11eb,
            Family::AttributeChain => 0xd6e8_feb8_6659_fd93,
            Family::Churn => 0xa076_1d64_78bd_642f,
            Family::RevocationStorm => 0xe703_7ed1_a0b4_28db,
            Family::FlashCrowd => 0x8ebc_6af0_9c88_c6e3,
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Size parameters for a generated world. Every count is a target the
/// family generator may round to its structure (a ladder spends its
/// delegation budget on rungs, a mesh on random edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Number of organizations — one home wallet (and, over TCP, one
    /// daemon) per org.
    pub orgs: usize,
    /// Number of user entities, homed round-robin across the orgs.
    pub users: usize,
    /// Roles per org namespace (`r0..r{n-1}`).
    pub roles_per_org: usize,
    /// Target delegation count.
    pub delegations: usize,
    /// Target query count.
    pub queries: usize,
}

impl Scale {
    /// Tiny worlds for the check.sh budget: a few orgs, a couple dozen
    /// delegations.
    pub fn smoke() -> Self {
        Scale {
            orgs: 4,
            users: 6,
            roles_per_org: 3,
            delegations: 28,
            queries: 18,
        }
    }

    /// The default soak size: large enough that discovery crosses many
    /// wallets, small enough for a test matrix.
    pub fn standard() -> Self {
        Scale {
            orgs: 8,
            users: 14,
            roles_per_org: 4,
            delegations: 110,
            queries: 60,
        }
    }

    /// A federation sized to `wallets` org wallets — used for the
    /// multi-daemon TCP acceptance runs (≥ 100 wallets).
    pub fn federation(wallets: usize) -> Self {
        let orgs = wallets.max(2);
        Scale {
            orgs,
            users: orgs,
            roles_per_org: 2,
            delegations: orgs * 3,
            queries: 48,
        }
    }
}

/// A fully-specified scenario: family × seed × scale. Generation is a
/// pure function of this value — see [`ScenarioSpec::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// The topology family to generate.
    pub family: Family,
    /// World seed: keys, edge placement, query targets all derive from
    /// it (mixed with the family salt).
    pub seed: u64,
    /// Size parameters.
    pub scale: Scale,
}

impl ScenarioSpec {
    /// A spec at [`Scale::standard`].
    pub fn new(family: Family, seed: u64) -> Self {
        ScenarioSpec {
            family,
            seed,
            scale: Scale::standard(),
        }
    }

    /// Replaces the scale.
    pub fn with_scale(mut self, scale: Scale) -> Self {
        self.scale = scale;
        self
    }

    /// Generates the world: entities, the event schedule, and (via
    /// [`crate::Oracle`]) the ground truth. Deterministic: equal specs
    /// yield byte-identical schedules.
    pub fn generate(&self) -> crate::Scenario {
        crate::generate::generate(self)
    }
}
