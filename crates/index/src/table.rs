//! The ordered-table seam: a byte-keyed, byte-valued, totally ordered
//! table with atomic batches and range scans.
//!
//! Everything above this trait (the delegation index, the wallet's
//! query planner) is written against [`TableBackend`], so the same
//! index logic runs over the in-memory [`MemTable`] (deterministic
//! simulation, oracle property tests) and over the file-backed
//! [`FileTable`](crate::FileTable) (the CLI's on-disk index).

use std::collections::BTreeMap;
use std::ops::Bound;

use parking_lot::Mutex;

use drbac_store::StoreError;

/// One mutation in an atomic [`TableBackend::apply`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOp {
    /// Insert or overwrite `key`.
    Put {
        /// The full table key.
        key: Vec<u8>,
        /// The value stored under it (may be empty — index entries
        /// carry their payload in the key).
        value: Vec<u8>,
    },
    /// Remove `key` if present.
    Delete {
        /// The full table key.
        key: Vec<u8>,
    },
}

impl TableOp {
    /// The key this op touches.
    pub fn key(&self) -> &[u8] {
        match self {
            TableOp::Put { key, .. } | TableOp::Delete { key } => key,
        }
    }
}

/// Cheap size/shape numbers for `drbac store index status`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TableStats {
    /// Entries in the immutable sorted base (0 for purely in-memory
    /// backends, which report everything under `delta_ops`).
    pub base_entries: u64,
    /// Bytes of the sorted base file.
    pub base_bytes: u64,
    /// Un-compacted delta operations (puts and deletes) on top of the
    /// base.
    pub delta_ops: u64,
    /// Bytes of the delta log.
    pub delta_bytes: u64,
}

/// An ordered byte-key/byte-value table.
///
/// Keys are compared lexicographically as byte strings. Batches are
/// atomic: after a crash, either every op of an applied batch is
/// visible or none is (the file backend frames each batch as one
/// CRC-checked record).
pub trait TableBackend: Send + Sync {
    /// Looks up one key.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure or framing corruption.
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError>;

    /// Applies a batch of mutations atomically.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure.
    fn apply(&self, batch: &[TableOp]) -> Result<(), StoreError>;

    /// Streams entries with `start <= key < end` (no upper bound when
    /// `end` is `None`) in key order; the callback returns `false` to
    /// stop early.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure or framing corruption.
    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<(), StoreError>;

    /// Exact number of live entries. May cost a full merged scan on
    /// file backends; meant for verification, not hot paths (use
    /// [`TableBackend::stats`] for cheap numbers).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure.
    fn entries(&self) -> Result<u64, StoreError> {
        let mut n = 0u64;
        self.scan(&[], None, &mut |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    /// Cheap size/shape numbers from bookkeeping (no full scan).
    fn stats(&self) -> TableStats;

    /// Makes applied batches durable (fsync of the delta log).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure.
    fn flush(&self) -> Result<(), StoreError>;

    /// Merges accumulated deltas into the sorted base so the next open
    /// replays (almost) nothing. A no-op for in-memory backends.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure.
    fn compact(&self) -> Result<(), StoreError>;

    /// Replaces the whole table with `entries`, which must arrive in
    /// strictly increasing key order (bulk load for rebuilds).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure, or [`StoreError::Corrupt`]
    /// if the input is out of order.
    fn reset_with(
        &self,
        entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<(), StoreError>;

    /// Streams every entry whose key starts with `prefix`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure or framing corruption.
    fn scan_prefix(
        &self,
        prefix: &[u8],
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<(), StoreError> {
        let end = prefix_end(prefix);
        self.scan(prefix, end.as_deref(), f)
    }
}

/// The exclusive upper bound of the key range sharing `prefix`: the
/// prefix with its last non-0xFF byte incremented and the tail dropped.
/// `None` means "no upper bound" (the prefix is empty or all 0xFF).
pub fn prefix_end(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut end = prefix.to_vec();
    while let Some(last) = end.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(end);
        }
        end.pop();
    }
    None
}

/// The in-memory [`TableBackend`]: a `BTreeMap` behind a lock. Used by
/// simulations and the oracle tests; also the fallback the wallet's
/// planner runs against when no file index is attached.
#[derive(Default)]
pub struct MemTable {
    map: Mutex<BTreeMap<Vec<u8>, Vec<u8>>>,
}

impl MemTable {
    /// An empty in-memory table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TableBackend for MemTable {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.map.lock().get(key).cloned())
    }

    fn apply(&self, batch: &[TableOp]) -> Result<(), StoreError> {
        let mut map = self.map.lock();
        for op in batch {
            match op {
                TableOp::Put { key, value } => {
                    map.insert(key.clone(), value.clone());
                }
                TableOp::Delete { key } => {
                    map.remove(key);
                }
            }
        }
        Ok(())
    }

    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<(), StoreError> {
        let map = self.map.lock();
        let upper = end.map_or(Bound::Unbounded, |e| Bound::Excluded(e.to_vec()));
        for (k, v) in map.range((Bound::Included(start.to_vec()), upper)) {
            if !f(k, v) {
                break;
            }
        }
        Ok(())
    }

    fn entries(&self) -> Result<u64, StoreError> {
        Ok(self.map.lock().len() as u64)
    }

    fn stats(&self) -> TableStats {
        TableStats {
            delta_ops: self.map.lock().len() as u64,
            ..TableStats::default()
        }
    }

    fn flush(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn compact(&self) -> Result<(), StoreError> {
        Ok(())
    }

    fn reset_with(
        &self,
        entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<(), StoreError> {
        let mut map = self.map.lock();
        map.clear();
        let mut prev: Option<Vec<u8>> = None;
        for (k, v) in entries {
            if prev.as_ref().is_some_and(|p| *p >= k) {
                return Err(StoreError::Corrupt(
                    "bulk load keys must be strictly increasing".into(),
                ));
            }
            prev = Some(k.clone());
            map.insert(k, v);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn put(key: &[u8], value: &[u8]) -> TableOp {
        TableOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    #[test]
    fn prefix_end_increments_with_carry() {
        assert_eq!(prefix_end(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_end(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_end(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_end(b""), None);
    }

    #[test]
    fn mem_table_scans_in_order_and_respects_bounds() {
        let t = MemTable::new();
        t.apply(&[put(b"b/1", b"x"), put(b"a/1", b"y"), put(b"b/2", b"z")])
            .unwrap();
        let mut seen = Vec::new();
        t.scan_prefix(b"b/", &mut |k, _| {
            seen.push(k.to_vec());
            true
        })
        .unwrap();
        assert_eq!(seen, vec![b"b/1".to_vec(), b"b/2".to_vec()]);
        assert_eq!(t.entries().unwrap(), 3);
        t.apply(&[TableOp::Delete { key: b"b/1".to_vec() }]).unwrap();
        assert_eq!(t.get(b"b/1").unwrap(), None);
        assert_eq!(t.entries().unwrap(), 2);
    }

    #[test]
    fn bulk_load_rejects_unsorted_input() {
        let t = MemTable::new();
        let mut bad = vec![(b"b".to_vec(), vec![]), (b"a".to_vec(), vec![])].into_iter();
        assert!(t.reset_with(&mut bad).is_err());
    }
}
