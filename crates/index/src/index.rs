//! The delegation index: secondary indexes over the wallet's journal,
//! maintained one atomic table batch per [`StoreEvent`].
//!
//! The index is a *projection* of the write-ahead log. `m/watermark`
//! records the last journal sequence number applied; a wallet boots by
//! opening the index, seeding the cheap-but-global state (declarations,
//! support proofs, revocation marks, absorbed-cert coherence), and
//! replaying only the log records past the watermark. Credentials
//! themselves hydrate lazily from `c/` rows as queries touch their
//! graph neighborhoods — decoded *without* re-verifying signatures,
//! because every indexed credential was admission-verified before it
//! was journaled (the same trust argument the snapshot restore path
//! already leans on is deliberately *not* made here: snapshots re-verify
//! because images travel between wallets; the index never leaves the
//! wallet that wrote it).

use std::collections::BTreeMap;
use std::sync::Arc;

use drbac_core::{
    DelegationId, EntityId, Node, Proof, SignedAttrDeclaration, SignedDelegation, Timestamp,
    WalletAddr,
};
use drbac_store::{StoreError, StoreEvent};
use parking_lot::Mutex;

use crate::keys::{self, CertRow};
use crate::table::{TableBackend, TableOp, TableStats};

/// Current on-table format version, stored under `m/format`.
const FORMAT_VERSION: u64 = 1;

/// A delegation mark under `r/`: the id was revoked or expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mark {
    /// The delegation was revoked (credential retained, edges skipped).
    Revoked,
    /// The delegation expired and was dropped.
    Expired,
}

/// Consistency verdict from [`DelegationIndex::verify_against`],
/// re-exported into the store's `VerifyReport` by the CLI.
pub use drbac_store::IndexCheck;

#[derive(Debug, Default, Clone, Copy)]
struct MetaCache {
    watermark: Option<u64>,
    decl_next: u64,
    support_next: u64,
}

/// Secondary indexes over a wallet journal, behind any
/// [`TableBackend`].
pub struct DelegationIndex {
    table: Box<dyn TableBackend>,
    meta: Mutex<MetaCache>,
}

impl DelegationIndex {
    /// Opens the index stored in `table`, reading its metadata row. A
    /// fresh (empty) table is a valid empty index with no watermark.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure, or [`StoreError::Corrupt`]
    /// for an unknown format version.
    pub fn open(table: Box<dyn TableBackend>) -> Result<DelegationIndex, StoreError> {
        let format = read_u64(&*table, &keys::meta_key("format"))?;
        match format {
            None => {
                // Fresh table: stamp the version eagerly so a crash
                // between first apply and first flush still leaves a
                // self-describing file.
                table.apply(&[put_u64(keys::meta_key("format"), FORMAT_VERSION)])?;
            }
            Some(FORMAT_VERSION) => {}
            Some(v) => {
                return Err(StoreError::Corrupt(format!(
                    "unsupported index format version {v}"
                )))
            }
        }
        let meta = MetaCache {
            watermark: read_u64(&*table, &keys::meta_key("watermark"))?,
            decl_next: read_u64(&*table, &keys::meta_key("decl_next"))?.unwrap_or(0),
            support_next: read_u64(&*table, &keys::meta_key("support_next"))?.unwrap_or(0),
        };
        Ok(DelegationIndex {
            table,
            meta: Mutex::new(meta),
        })
    }

    /// The last journal sequence number applied, if any event ever was.
    pub fn watermark(&self) -> Option<u64> {
        self.meta.lock().watermark
    }

    /// Applies one journaled event at sequence `seq` as a single atomic
    /// batch (one CRC-framed record on the file backend). Re-applying an
    /// already-applied event is harmless — every op is an idempotent
    /// put or delete — which is what makes log-tail catch-up after a
    /// crash between WAL append and index apply safe.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend I/O failure; the caller (the wallet)
    /// degrades to graph-walk on any error here.
    pub fn apply(&self, seq: u64, event: &StoreEvent) -> Result<(), StoreError> {
        drbac_obs::static_counter!("drbac.index.apply.count").inc();
        let mut meta = self.meta.lock();
        let mut staged = *meta;
        let mut batch = Vec::new();
        match event {
            StoreEvent::Publish(cert) => self.stage_cert(&mut batch, seq, cert),
            StoreEvent::Declare(decl) => {
                batch.push(TableOp::Put {
                    key: keys::counter_key(keys::P_DECL, staged.decl_next),
                    value: decl.to_bytes(),
                });
                staged.decl_next += 1;
                batch.push(put_u64(keys::meta_key("decl_next"), staged.decl_next));
            }
            StoreEvent::Support(proof) => {
                self.stage_support(&mut batch, &mut staged, seq, proof);
            }
            StoreEvent::Absorb { proof, source } => {
                for cert in proof.all_certs() {
                    self.stage_cert(&mut batch, seq, &cert);
                    batch.push(TableOp::Put {
                        key: keys::absorbed_key(cert.id()),
                        value: source.as_str().as_bytes().to_vec(),
                    });
                }
                // Nested supports re-register on boot exactly like the
                // live absorb path's recursive registration.
                self.stage_nested_supports(&mut batch, &mut staged, seq, proof);
            }
            StoreEvent::Revoke(revocation) => {
                batch.push(TableOp::Put {
                    key: keys::mark_key(revocation.delegation_id()),
                    value: vec![keys::MARK_REVOKED],
                });
            }
            StoreEvent::RevokeMark(id) => {
                batch.push(TableOp::Put {
                    key: keys::mark_key(*id),
                    value: vec![keys::MARK_REVOKED],
                });
            }
            StoreEvent::Expire(id) => {
                self.stage_expire(&mut batch, *id)?;
            }
        }
        batch.push(put_u64(keys::meta_key("watermark"), seq));
        staged.watermark = Some(seq);
        self.table.apply(&batch)?;
        *meta = staged;
        Ok(())
    }

    /// Stages every key for one credential.
    fn stage_cert(&self, batch: &mut Vec<TableOp>, seq: u64, cert: &SignedDelegation) {
        let id = cert.id();
        let row = CertRow::of(seq, cert);
        batch.push(TableOp::Put {
            key: keys::cert_key(id),
            value: cert.to_bytes(),
        });
        batch.push(TableOp::Put {
            key: keys::subject_key(&row.subject_enc, id),
            value: Vec::new(),
        });
        batch.push(TableOp::Put {
            key: keys::object_key(&row.object_enc, id),
            value: Vec::new(),
        });
        batch.push(TableOp::Put {
            key: keys::issuer_key(row.issuer, id),
            value: Vec::new(),
        });
        if let Some(at) = row.expiry {
            batch.push(TableOp::Put {
                key: keys::expiry_key(at, id),
                value: Vec::new(),
            });
        }
        for home in &row.tag_homes {
            batch.push(TableOp::Put {
                key: keys::tag_key(home, id),
                value: Vec::new(),
            });
        }
        if row.needs_support {
            batch.push(TableOp::Put {
                key: keys::third_party_key(id),
                value: Vec::new(),
            });
        }
        batch.push(TableOp::Put {
            key: keys::row_key(id),
            value: row.to_bytes(),
        });
    }

    /// Stages one support proof and (recursively, matching the graph's
    /// registration) the proof's own credentials.
    fn stage_support(
        &self,
        batch: &mut Vec<TableOp>,
        staged: &mut MetaCache,
        seq: u64,
        proof: &Proof,
    ) {
        batch.push(TableOp::Put {
            key: keys::counter_key(keys::P_SUPPORT, staged.support_next),
            value: proof.to_bytes(),
        });
        staged.support_next += 1;
        batch.push(put_u64(
            keys::meta_key("support_next"),
            staged.support_next,
        ));
        for cert in proof.all_certs() {
            self.stage_cert(batch, seq, &cert);
        }
    }

    /// Stages every support proof found *inside* `proof`'s steps,
    /// recursively — the absorb path's registration shape (the absorbed
    /// proof itself is not a provided support).
    fn stage_nested_supports(
        &self,
        batch: &mut Vec<TableOp>,
        staged: &mut MetaCache,
        seq: u64,
        proof: &Proof,
    ) {
        for step in proof.steps() {
            for support in step.supports() {
                self.stage_support(batch, staged, seq, support);
                self.stage_nested_supports(batch, staged, seq, support);
            }
        }
    }

    /// Stages removal of every key for an expired credential, using its
    /// `d/` row so the credential itself never needs decoding. A missing
    /// row (expiry raced a revocation purge, or the event is being
    /// re-applied) stages only the tombstone.
    fn stage_expire(&self, batch: &mut Vec<TableOp>, id: DelegationId) -> Result<(), StoreError> {
        if let Some(bytes) = self.table.get(&keys::row_key(id))? {
            let row = CertRow::from_bytes(&bytes)
                .map_err(|e| StoreError::Corrupt(format!("index row for {id:?}: {e}")))?;
            batch.push(TableOp::Delete {
                key: keys::subject_key(&row.subject_enc, id),
            });
            batch.push(TableOp::Delete {
                key: keys::object_key(&row.object_enc, id),
            });
            batch.push(TableOp::Delete {
                key: keys::issuer_key(row.issuer, id),
            });
            if let Some(at) = row.expiry {
                batch.push(TableOp::Delete {
                    key: keys::expiry_key(at, id),
                });
            }
            for home in &row.tag_homes {
                batch.push(TableOp::Delete {
                    key: keys::tag_key(home, id),
                });
            }
            batch.push(TableOp::Delete {
                key: keys::third_party_key(id),
            });
            batch.push(TableOp::Delete {
                key: keys::cert_key(id),
            });
            batch.push(TableOp::Delete {
                key: keys::row_key(id),
            });
            batch.push(TableOp::Delete {
                key: keys::absorbed_key(id),
            });
        }
        batch.push(TableOp::Put {
            key: keys::mark_key(id),
            value: vec![keys::MARK_EXPIRED],
        });
        Ok(())
    }

    // ------------------------------------------------------------------
    // Queries (the planner's building blocks)
    // ------------------------------------------------------------------

    /// Ids of delegations whose subject is `node`, in id order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn ids_by_subject(&self, node: &Node) -> Result<Vec<DelegationId>, StoreError> {
        self.collect_ids(&keys::subject_prefix(&keys::node_key(node)))
    }

    /// Ids of delegations whose object is `node`, in id order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn ids_by_object(&self, node: &Node) -> Result<Vec<DelegationId>, StoreError> {
        self.collect_ids(&keys::object_prefix(&keys::node_key(node)))
    }

    /// Ids of delegations issued by `issuer`, in id order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn ids_by_issuer(&self, issuer: EntityId) -> Result<Vec<DelegationId>, StoreError> {
        self.collect_ids(&keys::issuer_prefix(issuer))
    }

    /// Ids of delegations carrying a discovery tag homed at `home`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn ids_by_tag(&self, home: &str) -> Result<Vec<DelegationId>, StoreError> {
        self.collect_ids(&keys::tag_prefix(home))
    }

    /// The audit set: ids of delegations that need issuer support.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn third_party_ids(&self) -> Result<Vec<DelegationId>, StoreError> {
        self.collect_ids(&[keys::P_THIRD_PARTY])
    }

    /// Ids whose expiry instant `at` satisfies `now > at` — exactly the
    /// wallet's expiry rule — via one ordered range scan that visits
    /// O(expired) entries. The scan count is returned alongside for the
    /// sweep's work counter.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn expired_ids(&self, now: Timestamp) -> Result<(Vec<DelegationId>, u64), StoreError> {
        let start = [keys::P_EXPIRY];
        let end = keys::expiry_key(now, DelegationId([0u8; 32]));
        let mut out = Vec::new();
        let mut scanned = 0u64;
        self.table.scan(&start, Some(&end), &mut |k, _| {
            scanned += 1;
            if let Some(id) = keys::id_suffix(k) {
                out.push(id);
            }
            true
        })?;
        Ok((out, scanned))
    }

    /// Every revocation/expiry mark.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn marks(&self) -> Result<Vec<(DelegationId, Mark)>, StoreError> {
        let mut out = Vec::new();
        self.table.scan_prefix(&[keys::P_MARK], &mut |k, v| {
            if let Some(id) = keys::id_suffix(k) {
                match v.first() {
                    Some(&keys::MARK_REVOKED) => out.push((id, Mark::Revoked)),
                    Some(&keys::MARK_EXPIRED) => out.push((id, Mark::Expired)),
                    _ => {}
                }
            }
            true
        })?;
        Ok(out)
    }

    /// The stored credential bytes for `id`, decoded *without*
    /// re-verifying the signature (see the module docs for why that is
    /// sound). `None` when the id is not indexed.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure or undecodable stored bytes.
    pub fn cert(&self, id: DelegationId) -> Result<Option<Arc<SignedDelegation>>, StoreError> {
        match self.table.get(&keys::cert_key(id))? {
            None => Ok(None),
            Some(bytes) => SignedDelegation::from_bytes(&bytes)
                .map(|c| Some(Arc::new(c)))
                .map_err(|e| StoreError::Corrupt(format!("indexed cert {id:?}: {e}"))),
        }
    }

    /// Streams every indexed credential (decoded, not re-verified) in
    /// id order. The full-hydration path for whole-wallet views over a
    /// lazily booted wallet.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure or undecodable stored bytes.
    pub fn for_each_cert(
        &self,
        f: &mut dyn FnMut(Arc<SignedDelegation>),
    ) -> Result<(), StoreError> {
        let mut err = None;
        self.table.scan_prefix(&[keys::P_CERT], &mut |_, v| {
            match SignedDelegation::from_bytes(v) {
                Ok(cert) => {
                    f(Arc::new(cert));
                    true
                }
                Err(e) => {
                    err = Some(StoreError::Corrupt(format!("indexed cert: {e}")));
                    false
                }
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// The `d/` metadata row for `id`.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure or undecodable stored bytes.
    pub fn row(&self, id: DelegationId) -> Result<Option<CertRow>, StoreError> {
        match self.table.get(&keys::row_key(id))? {
            None => Ok(None),
            Some(bytes) => CertRow::from_bytes(&bytes)
                .map(Some)
                .map_err(|e| StoreError::Corrupt(format!("index row for {id:?}: {e}"))),
        }
    }

    /// Every indexed signed declaration, in admission order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure or undecodable stored bytes.
    pub fn declarations(&self) -> Result<Vec<SignedAttrDeclaration>, StoreError> {
        let mut out = Vec::new();
        let mut err = None;
        self.table.scan_prefix(&[keys::P_DECL], &mut |_, v| {
            match SignedAttrDeclaration::from_bytes(v) {
                Ok(d) => {
                    out.push(d);
                    true
                }
                Err(e) => {
                    err = Some(StoreError::Corrupt(format!("indexed declaration: {e}")));
                    false
                }
            }
        })?;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Every indexed support proof, in admission order.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure or undecodable stored bytes.
    pub fn supports(&self) -> Result<Vec<Proof>, StoreError> {
        let mut out = Vec::new();
        let mut err = None;
        self.table
            .scan_prefix(&[keys::P_SUPPORT], &mut |_, v| match Proof::from_bytes(v) {
                Ok(p) => {
                    out.push(p);
                    true
                }
                Err(e) => {
                    err = Some(StoreError::Corrupt(format!("indexed support: {e}")));
                    false
                }
            })?;
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Coherence seeds: each absorbed credential with the wallet it was
    /// fetched from.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn absorbed(&self) -> Result<Vec<(DelegationId, WalletAddr)>, StoreError> {
        let mut out = Vec::new();
        self.table.scan_prefix(&[keys::P_ABSORBED], &mut |k, v| {
            if let (Some(id), Ok(addr)) = (keys::id_suffix(k), std::str::from_utf8(v)) {
                out.push((id, WalletAddr::new(addr)));
            }
            true
        })?;
        Ok(out)
    }

    /// Number of indexed live credentials (`d/` rows).
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn cert_count(&self) -> Result<u64, StoreError> {
        let mut n = 0u64;
        self.table.scan_prefix(&[keys::P_ROW], &mut |_, _| {
            n += 1;
            true
        })?;
        Ok(n)
    }

    fn collect_ids(&self, prefix: &[u8]) -> Result<Vec<DelegationId>, StoreError> {
        let mut out = Vec::new();
        self.table.scan_prefix(prefix, &mut |k, _| {
            if let Some(id) = keys::id_suffix(k) {
                out.push(id);
            }
            true
        })?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Maintenance
    // ------------------------------------------------------------------

    /// Backend size/shape numbers.
    pub fn stats(&self) -> TableStats {
        self.table.stats()
    }

    /// Makes applied batches durable.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn flush(&self) -> Result<(), StoreError> {
        self.table.flush()
    }

    /// Folds the delta log into the sorted base.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn compact(&self) -> Result<(), StoreError> {
        self.table.compact()
    }

    /// Rebuilds the whole index from a fully recovered wallet's durable
    /// contents, bulk-loading the backend in one sorted pass and setting
    /// the watermark to `watermark` (the store's last appended
    /// sequence). This is the migration path from a plain WAL store —
    /// and the repair path for a corrupt index.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure.
    pub fn rebuild(&self, contents: &RebuildSource<'_>, watermark: u64) -> Result<(), StoreError> {
        let mut entries: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let mut stage = |batch: Vec<TableOp>| {
            for op in batch {
                match op {
                    TableOp::Put { key, value } => {
                        entries.insert(key, value);
                    }
                    TableOp::Delete { key } => {
                        entries.remove(&key);
                    }
                }
            }
        };
        // Sequence numbers inside d/ rows are not recoverable from a
        // live wallet; the watermark stands in for all of them.
        for cert in contents.certs {
            let mut batch = Vec::new();
            self.stage_cert(&mut batch, watermark, cert);
            stage(batch);
        }
        let mut meta = MetaCache {
            watermark: Some(watermark),
            ..MetaCache::default()
        };
        for decl in contents.declarations {
            stage(vec![TableOp::Put {
                key: keys::counter_key(keys::P_DECL, meta.decl_next),
                value: decl.to_bytes(),
            }]);
            meta.decl_next += 1;
        }
        for proof in contents.supports {
            stage(vec![TableOp::Put {
                key: keys::counter_key(keys::P_SUPPORT, meta.support_next),
                value: proof.to_bytes(),
            }]);
            meta.support_next += 1;
        }
        for id in contents.revoked {
            stage(vec![TableOp::Put {
                key: keys::mark_key(*id),
                value: vec![keys::MARK_REVOKED],
            }]);
        }
        for (id, source) in contents.absorbed {
            stage(vec![TableOp::Put {
                key: keys::absorbed_key(*id),
                value: source.as_str().as_bytes().to_vec(),
            }]);
        }
        stage(vec![
            put_u64(keys::meta_key("format"), FORMAT_VERSION),
            put_u64(keys::meta_key("watermark"), watermark),
            put_u64(keys::meta_key("decl_next"), meta.decl_next),
            put_u64(keys::meta_key("support_next"), meta.support_next),
        ]);
        drbac_obs::static_counter!("drbac.index.rebuild.count").inc();
        let mut lock = self.meta.lock();
        self.table.reset_with(&mut entries.into_iter())?;
        *lock = meta;
        Ok(())
    }

    /// Cross-checks this index against the recovered journal: every id
    /// the event stream says should be live must be indexed, and every
    /// indexed id must be derivable from the stream. `snapshot` is the
    /// store's snapshot image (the wallet export format), whose
    /// credentials seed the expected set before `events` replay over it.
    ///
    /// # Errors
    ///
    /// [`StoreError`] on backend failure (disagreement is reported in
    /// the [`IndexCheck`], not as an error).
    pub fn verify_against(
        &self,
        snapshot: Option<&[u8]>,
        events: &[(u64, StoreEvent)],
    ) -> Result<IndexCheck, StoreError> {
        let mut check = IndexCheck {
            watermark: self.watermark(),
            ..IndexCheck::default()
        };
        let mut expected: std::collections::BTreeSet<DelegationId> =
            std::collections::BTreeSet::new();
        if let Some(image) = snapshot {
            match snapshot_cert_ids(image) {
                Ok(ids) => expected.extend(ids),
                Err(e) => {
                    check.corruption = Some(format!("snapshot image: {e}"));
                }
            }
        }
        let mut last_seq = None;
        for (seq, event) in events {
            last_seq = Some(*seq);
            match event {
                StoreEvent::Publish(cert) => {
                    expected.insert(cert.id());
                }
                StoreEvent::Support(proof) => {
                    expected.extend(proof.all_certs().iter().map(|c| c.id()));
                }
                StoreEvent::Absorb { proof, .. } => {
                    expected.extend(proof.all_certs().iter().map(|c| c.id()));
                }
                StoreEvent::Expire(id) => {
                    expected.remove(id);
                }
                StoreEvent::Declare(_) | StoreEvent::Revoke(_) | StoreEvent::RevokeMark(_) => {}
            }
        }
        let mut indexed: std::collections::BTreeSet<DelegationId> =
            std::collections::BTreeSet::new();
        self.table.scan_prefix(&[keys::P_ROW], &mut |k, _| {
            if let Some(id) = keys::id_suffix(k) {
                indexed.insert(id);
            }
            true
        })?;
        check.entries = indexed.len() as u64;
        check.missing = expected.difference(&indexed).count() as u64;
        check.orphaned = indexed.difference(&expected).count() as u64;
        if check.corruption.is_none() {
            if let (Some(w), Some(last)) = (check.watermark, last_seq) {
                if w > last {
                    check.corruption =
                        Some(format!("watermark {w} ahead of journal tail {last}"));
                }
            }
        }
        Ok(check)
    }
}

/// The durable contents of a recovered wallet, borrowed for
/// [`DelegationIndex::rebuild`].
pub struct RebuildSource<'a> {
    /// Every live credential (support certs included).
    pub certs: &'a [Arc<SignedDelegation>],
    /// Every registered support proof.
    pub supports: &'a [Proof],
    /// Every signed declaration.
    pub declarations: &'a [SignedAttrDeclaration],
    /// Every revocation mark.
    pub revoked: &'a [DelegationId],
    /// Absorbed-credential coherence seeds.
    pub absorbed: &'a [(DelegationId, WalletAddr)],
}

/// Shallow parse of the wallet snapshot image ("drbac-wallet-v1"):
/// just the credential ids, for index verification.
fn snapshot_cert_ids(image: &[u8]) -> Result<Vec<DelegationId>, drbac_core::DecodeError> {
    use drbac_core::{Decode, Reader};
    let mut r = Reader::tagged(image, b"drbac-wallet-v1")?;
    let n = r.u64()?;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(SignedDelegation::decode(&mut r)?.id());
    }
    let n = r.u64()?;
    for _ in 0..n {
        out.extend(Proof::decode(&mut r)?.all_certs().iter().map(|c| c.id()));
    }
    // Declarations and revocation marks follow but carry no cert ids.
    Ok(out)
}

fn put_u64(key: Vec<u8>, v: u64) -> TableOp {
    TableOp::Put {
        key,
        value: v.to_be_bytes().to_vec(),
    }
}

fn read_u64(table: &dyn TableBackend, key: &[u8]) -> Result<Option<u64>, StoreError> {
    match table.get(key)? {
        None => Ok(None),
        Some(v) => {
            let bytes: [u8; 8] = v
                .as_slice()
                .try_into()
                .map_err(|_| StoreError::Corrupt("index metadata not 8 bytes".into()))?;
            Ok(Some(u64::from_be_bytes(bytes)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::MemTable;
    use drbac_core::{LocalEntity, Node, Timestamp};
    use drbac_crypto::SchnorrGroup;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn entities() -> (LocalEntity, LocalEntity) {
        let mut rng = StdRng::seed_from_u64(17);
        let g = SchnorrGroup::test_256();
        (
            LocalEntity::generate("A", g.clone(), &mut rng),
            LocalEntity::generate("B", g, &mut rng),
        )
    }

    fn index() -> DelegationIndex {
        DelegationIndex::open(Box::new(MemTable::new())).unwrap()
    }

    #[test]
    fn publish_and_expire_round_trip_every_keyspace() {
        let (a, b) = entities();
        let idx = index();
        let cert = a
            .delegate(Node::entity(&b), Node::role(a.role("member")))
            .expires(Timestamp(100))
            .sign(&a)
            .unwrap();
        let cert = Arc::new(cert);
        let id = cert.id();
        idx.apply(1, &StoreEvent::Publish(Arc::clone(&cert))).unwrap();

        assert_eq!(idx.watermark(), Some(1));
        assert_eq!(idx.ids_by_subject(&Node::entity(&b)).unwrap(), vec![id]);
        assert_eq!(
            idx.ids_by_object(&Node::role(a.role("member"))).unwrap(),
            vec![id]
        );
        assert_eq!(idx.ids_by_issuer(a.id()).unwrap(), vec![id]);
        // Self-issued: not in the audit set.
        assert!(idx.third_party_ids().unwrap().is_empty());
        // Strict `now > at`: not expired at exactly t=100.
        assert!(idx.expired_ids(Timestamp(100)).unwrap().0.is_empty());
        let (expired, scanned) = idx.expired_ids(Timestamp(101)).unwrap();
        assert_eq!(expired, vec![id]);
        assert_eq!(scanned, 1);
        let got = idx.cert(id).unwrap().expect("cert bytes");
        assert_eq!(got.id(), id);

        idx.apply(2, &StoreEvent::Expire(id)).unwrap();
        assert!(idx.ids_by_subject(&Node::entity(&b)).unwrap().is_empty());
        assert!(idx.expired_ids(Timestamp(200)).unwrap().0.is_empty());
        assert!(idx.cert(id).unwrap().is_none());
        assert_eq!(idx.marks().unwrap(), vec![(id, Mark::Expired)]);
        assert_eq!(idx.watermark(), Some(2));
    }

    #[test]
    fn third_party_publications_join_the_audit_set() {
        let (a, b) = entities();
        let idx = index();
        let member = a.role("member");
        // b issues into a's namespace: needs support.
        let cert = b
            .delegate(Node::entity(&a), Node::role(member))
            .sign(&b)
            .unwrap();
        let id = cert.id();
        idx.apply(1, &StoreEvent::Publish(Arc::new(cert))).unwrap();
        assert_eq!(idx.third_party_ids().unwrap(), vec![id]);
        // Revocation keeps the credential indexed (searches skip it by
        // mark, same as the graph).
        idx.apply(2, &StoreEvent::RevokeMark(id)).unwrap();
        assert_eq!(idx.marks().unwrap(), vec![(id, Mark::Revoked)]);
        assert!(idx.cert(id).unwrap().is_some());
    }

    #[test]
    fn verify_against_flags_missing_and_orphaned_ids() {
        let (a, b) = entities();
        let idx = index();
        let cert1 = Arc::new(
            a.delegate(Node::entity(&b), Node::role(a.role("r1")))
                .sign(&a)
                .unwrap(),
        );
        let cert2 = Arc::new(
            a.delegate(Node::entity(&b), Node::role(a.role("r2")))
                .sign(&a)
                .unwrap(),
        );
        idx.apply(1, &StoreEvent::Publish(Arc::clone(&cert1)))
            .unwrap();
        let clean = idx
            .verify_against(None, &[(1, StoreEvent::Publish(Arc::clone(&cert1)))])
            .unwrap();
        assert!(clean.is_clean(), "{clean:?}");
        // Journal shows cert2 too: it is missing from the index.
        let check = idx
            .verify_against(
                None,
                &[
                    (1, StoreEvent::Publish(Arc::clone(&cert1))),
                    (2, StoreEvent::Publish(Arc::clone(&cert2))),
                ],
            )
            .unwrap();
        assert_eq!(check.missing, 1);
        assert_eq!(check.orphaned, 0);
        // Journal shows nothing: cert1 is orphaned.
        let check = idx.verify_against(None, &[]).unwrap();
        assert_eq!(check.orphaned, 1);
    }

    #[test]
    fn reopen_preserves_watermark_and_counters() {
        let (a, b) = entities();
        let table = Arc::new(MemTable::new());
        struct Shared(Arc<MemTable>);
        impl TableBackend for Shared {
            fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
                self.0.get(key)
            }
            fn apply(&self, batch: &[TableOp]) -> Result<(), StoreError> {
                self.0.apply(batch)
            }
            fn scan(
                &self,
                start: &[u8],
                end: Option<&[u8]>,
                f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
            ) -> Result<(), StoreError> {
                self.0.scan(start, end, f)
            }
            fn stats(&self) -> TableStats {
                self.0.stats()
            }
            fn flush(&self) -> Result<(), StoreError> {
                self.0.flush()
            }
            fn compact(&self) -> Result<(), StoreError> {
                self.0.compact()
            }
            fn reset_with(
                &self,
                entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
            ) -> Result<(), StoreError> {
                self.0.reset_with(entries)
            }
        }
        let idx = DelegationIndex::open(Box::new(Shared(Arc::clone(&table)))).unwrap();
        let cert = Arc::new(
            a.delegate(Node::entity(&b), Node::role(a.role("r")))
                .sign(&a)
                .unwrap(),
        );
        idx.apply(7, &StoreEvent::Publish(cert)).unwrap();
        drop(idx);
        let reopened = DelegationIndex::open(Box::new(Shared(table))).unwrap();
        assert_eq!(reopened.watermark(), Some(7));
        assert_eq!(reopened.cert_count().unwrap(), 1);
    }
}
