//! The file-backed ordered table: an immutable three-level sorted run
//! plus a CRC-framed delta log, both over the store's [`Medium`] seam.
//!
//! ## Base file (`index.tab`)
//!
//! A bulk-written, immutable sorted run laid out like a three-level
//! B-tree so *open* reads only the trailer and the top-level fence
//! array — a few hundred kilobytes for a million delegations — and a
//! point lookup costs at most two more block reads:
//!
//! ```text
//! base    := blocks… | L1 groups… | L2 | trailer
//! block   := entry…                      (≈4 KiB of entries)
//! entry   := klen:u32be | vlen:u32be | key | value
//! L1      := fence…                      (one fence per block)
//! fence   := klen:u32be | first_key | off:u64be | len:u32be | crc:u32be
//! L2      := fence…                      (one fence per L1 group)
//! trailer := entries:u64be | blocks:u64be | l2_off:u64be
//!          | l2_len:u32be | l2_crc:u32be | magic:8 ("drbacIT1")
//! ```
//!
//! Every fence carries the CRC32 of the region it points at (the same
//! CRC the WAL frames use), so bit rot anywhere is detected before the
//! bytes are trusted. An empty file is an empty table.
//!
//! ## Delta log (`index.log`)
//!
//! Mutations land in an in-memory overlay and are journaled as one
//! CRC-framed record per [`TableBackend::apply`] batch — torn tails
//! lose whole batches, never half of one:
//!
//! ```text
//! log     := magic:8 ("drbacIL1") | record…
//! record  := len:u32be | crc:u32be | ops       (crc = crc32(ops))
//! ops     := (op:u8 | klen:u32be | key [| vlen:u32be | value])…
//! ```
//!
//! [`TableBackend::compact`] merges the overlay into a fresh base
//! (atomic [`Medium::replace`]) and resets the log, keeping reopen
//! replay bounded.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::ops::Bound;
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use drbac_store::{crc32, FileMedium, Medium, StoreError};

use crate::table::{TableBackend, TableOp, TableStats};

/// Decoded `(key, value)` entries of one base-file block.
type Entries = Vec<(Vec<u8>, Vec<u8>)>;
/// Decoded delta-log ops: `(key, Some(value))` puts, `(key, None)` deletes.
type DeltaOps = Vec<(Vec<u8>, Option<Vec<u8>>)>;

/// Leading magic of the delta log.
pub const INDEX_LOG_MAGIC: [u8; 8] = *b"drbacIL1";

/// Trailing magic of the base file.
pub const INDEX_TAB_MAGIC: [u8; 8] = *b"drbacIT1";

const TRAILER: usize = 8 + 8 + 8 + 4 + 4 + 8;
const FRAME_HEADER: usize = 8;
/// Entries are packed into blocks of roughly this many bytes.
const TARGET_BLOCK_BYTES: usize = 4096;
/// L1 fences are grouped this many blocks per L2 entry.
const GROUP_BLOCKS: usize = 64;
/// A single record/block length above this is corruption, not an
/// allocation request.
const MAX_REGION: usize = 1 << 26;
/// Auto-compaction thresholds: merge the overlay into the base once it
/// holds this many ops or its log grows past this many bytes.
const DELTA_MAX_OPS: usize = 1 << 16;
const DELTA_MAX_BYTES: u64 = 32 << 20;
/// Decoded blocks kept hot (FIFO eviction); at the default block size
/// this bounds the cache near 4 MiB plus key overhead.
const BLOCK_CACHE: usize = 1024;

const OP_PUT: u8 = 1;
const OP_DEL: u8 = 2;

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

fn be32(b: &[u8]) -> u32 {
    u32::from_be_bytes(b.try_into().expect("4 bytes"))
}

fn be64(b: &[u8]) -> u64 {
    u64::from_be_bytes(b.try_into().expect("8 bytes"))
}

/// One fence: the first key of a region plus its location and CRC.
#[derive(Debug, Clone)]
struct Fence {
    first_key: Vec<u8>,
    off: u64,
    len: u32,
    crc: u32,
}

fn parse_fences(bytes: &[u8]) -> Result<Vec<Fence>, StoreError> {
    let mut fences = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < 4 {
            return Err(corrupt("torn fence header"));
        }
        let klen = be32(&bytes[at..at + 4]) as usize;
        at += 4;
        if klen > MAX_REGION || bytes.len() - at < klen + 16 {
            return Err(corrupt("torn fence"));
        }
        let first_key = bytes[at..at + klen].to_vec();
        at += klen;
        let off = be64(&bytes[at..at + 8]);
        let len = be32(&bytes[at + 8..at + 12]);
        let crc = be32(&bytes[at + 12..at + 16]);
        at += 16;
        fences.push(Fence {
            first_key,
            off,
            len,
            crc,
        });
    }
    Ok(fences)
}

fn push_fence(out: &mut Vec<u8>, f: &Fence) {
    out.extend_from_slice(&(f.first_key.len() as u32).to_be_bytes());
    out.extend_from_slice(&f.first_key);
    out.extend_from_slice(&f.off.to_be_bytes());
    out.extend_from_slice(&f.len.to_be_bytes());
    out.extend_from_slice(&f.crc.to_be_bytes());
}

fn parse_block(bytes: &[u8]) -> Result<Entries, StoreError> {
    let mut entries = Vec::new();
    let mut at = 0usize;
    while at < bytes.len() {
        if bytes.len() - at < 8 {
            return Err(corrupt("torn block entry header"));
        }
        let klen = be32(&bytes[at..at + 4]) as usize;
        let vlen = be32(&bytes[at + 4..at + 8]) as usize;
        at += 8;
        if klen > MAX_REGION || vlen > MAX_REGION || bytes.len() - at < klen + vlen {
            return Err(corrupt("torn block entry"));
        }
        let key = bytes[at..at + klen].to_vec();
        let value = bytes[at + klen..at + klen + vlen].to_vec();
        at += klen + vlen;
        entries.push((key, value));
    }
    Ok(entries)
}

/// Parsed trailer + L2 of a non-empty base file.
struct BaseMeta {
    entries: u64,
    bytes: u64,
    l2: Vec<Fence>,
}

struct BaseState {
    medium: Box<dyn Medium>,
    meta: Option<BaseMeta>,
    /// L1 fence groups by group index.
    group_cache: HashMap<usize, Arc<Vec<Fence>>>,
    /// Decoded blocks by file offset, FIFO-evicted.
    block_cache: HashMap<u64, Arc<Entries>>,
    block_order: VecDeque<u64>,
}

impl BaseState {
    fn open(medium: Box<dyn Medium>) -> Result<Self, StoreError> {
        let mut state = BaseState {
            medium,
            meta: None,
            group_cache: HashMap::new(),
            block_cache: HashMap::new(),
            block_order: VecDeque::new(),
        };
        state.reload()?;
        Ok(state)
    }

    /// (Re)parses the trailer and L2 without touching data blocks.
    fn reload(&mut self) -> Result<(), StoreError> {
        self.meta = None;
        self.group_cache.clear();
        self.block_cache.clear();
        self.block_order.clear();
        let total = self.medium.len()?;
        if total == 0 {
            return Ok(());
        }
        if total < TRAILER as u64 {
            return Err(corrupt("base file shorter than its trailer"));
        }
        let trailer = self.medium.read_at(total - TRAILER as u64, TRAILER)?;
        if trailer.len() != TRAILER || trailer[32..40] != INDEX_TAB_MAGIC {
            return Err(corrupt("base file trailer magic mismatch"));
        }
        let entries = be64(&trailer[0..8]);
        let blocks = be64(&trailer[8..16]);
        let l2_off = be64(&trailer[16..24]);
        let l2_len = be32(&trailer[24..28]) as usize;
        let l2_crc = be32(&trailer[28..32]);
        if l2_len > MAX_REGION || l2_off.saturating_add(l2_len as u64) > total {
            return Err(corrupt("base file L2 region out of bounds"));
        }
        let l2_bytes = self.medium.read_at(l2_off, l2_len)?;
        if l2_bytes.len() != l2_len || crc32(&l2_bytes) != l2_crc {
            return Err(corrupt("base file L2 fence array failed its crc"));
        }
        let l2 = parse_fences(&l2_bytes)?;
        let expected_groups = (blocks as usize).div_ceil(GROUP_BLOCKS);
        if l2.len() != expected_groups {
            return Err(corrupt("base file L2 fence count mismatch"));
        }
        self.meta = Some(BaseMeta {
            entries,
            bytes: total,
            l2,
        });
        Ok(())
    }

    fn group(&mut self, idx: usize) -> Result<Arc<Vec<Fence>>, StoreError> {
        if let Some(g) = self.group_cache.get(&idx) {
            return Ok(g.clone());
        }
        let meta = self.meta.as_ref().expect("group() on empty base");
        let fence = &meta.l2[idx];
        let bytes = self.medium.read_at(fence.off, fence.len as usize)?;
        if bytes.len() != fence.len as usize || crc32(&bytes) != fence.crc {
            return Err(corrupt(format!("L1 fence group {idx} failed its crc")));
        }
        let group = Arc::new(parse_fences(&bytes)?);
        self.group_cache.insert(idx, group.clone());
        Ok(group)
    }

    fn block(&mut self, fence: &Fence) -> Result<Arc<Entries>, StoreError> {
        if let Some(b) = self.block_cache.get(&fence.off) {
            return Ok(b.clone());
        }
        let bytes = self.medium.read_at(fence.off, fence.len as usize)?;
        if bytes.len() != fence.len as usize || crc32(&bytes) != fence.crc {
            return Err(corrupt(format!(
                "data block at byte {} failed its crc",
                fence.off
            )));
        }
        let block = Arc::new(parse_block(&bytes)?);
        if self.block_order.len() >= BLOCK_CACHE {
            if let Some(evict) = self.block_order.pop_front() {
                self.block_cache.remove(&evict);
            }
        }
        self.block_cache.insert(fence.off, block.clone());
        self.block_order.push_back(fence.off);
        Ok(block)
    }

    /// Index of the last fence with `first_key <= key` (0 when the key
    /// precedes every fence).
    fn fence_at(fences: &[Fence], key: &[u8]) -> usize {
        fences
            .partition_point(|f| f.first_key.as_slice() <= key)
            .saturating_sub(1)
    }

    fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let Some(meta) = self.meta.as_ref() else {
            return Ok(None);
        };
        if meta.l2.is_empty() {
            return Ok(None);
        }
        let gi = Self::fence_at(&meta.l2, key);
        let group = self.group(gi)?;
        let bi = Self::fence_at(&group, key);
        let block = self.block(&group[bi])?;
        Ok(block
            .binary_search_by(|(k, _)| k.as_slice().cmp(key))
            .ok()
            .map(|i| block[i].1.clone()))
    }

    /// Streams base entries with `start <= key < end` in order.
    fn scan(
        &mut self,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<bool, StoreError> {
        let Some(meta) = self.meta.as_ref() else {
            return Ok(true);
        };
        if meta.l2.is_empty() {
            return Ok(true);
        }
        let groups = meta.l2.len();
        let mut gi = Self::fence_at(&meta.l2, start);
        let mut bi = {
            let group = self.group(gi)?;
            Self::fence_at(&group, start)
        };
        loop {
            let group = self.group(gi)?;
            while bi < group.len() {
                let fence = &group[bi];
                if end.is_some_and(|e| fence.first_key.as_slice() >= e) {
                    return Ok(true);
                }
                let block = self.block(fence)?;
                let from = block.partition_point(|(k, _)| k.as_slice() < start);
                for (k, v) in &block[from..] {
                    if end.is_some_and(|e| k.as_slice() >= e) {
                        return Ok(true);
                    }
                    if !f(k, v) {
                        return Ok(false);
                    }
                }
                bi += 1;
            }
            gi += 1;
            bi = 0;
            if gi >= groups {
                return Ok(true);
            }
        }
    }
}

/// Serializes a sorted entry stream into the base file layout.
/// Returns an error if keys are not strictly increasing.
fn build_base(
    entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
) -> Result<Vec<u8>, StoreError> {
    let mut out: Vec<u8> = Vec::new();
    let mut l1: Vec<Fence> = Vec::new();
    let mut block = Vec::new();
    let mut block_first: Option<Vec<u8>> = None;
    let mut prev: Option<Vec<u8>> = None;
    let mut count = 0u64;

    let flush_block = |out: &mut Vec<u8>, block: &mut Vec<u8>, first: &mut Option<Vec<u8>>, l1: &mut Vec<Fence>| {
        if block.is_empty() {
            return;
        }
        l1.push(Fence {
            first_key: first.take().expect("non-empty block has a first key"),
            off: out.len() as u64,
            len: block.len() as u32,
            crc: crc32(block),
        });
        out.extend_from_slice(block);
        block.clear();
    };

    for (k, v) in entries {
        if prev.as_ref().is_some_and(|p| *p >= k) {
            return Err(corrupt("bulk load keys must be strictly increasing"));
        }
        prev = Some(k.clone());
        if block_first.is_none() {
            block_first = Some(k.clone());
        }
        block.extend_from_slice(&(k.len() as u32).to_be_bytes());
        block.extend_from_slice(&(v.len() as u32).to_be_bytes());
        block.extend_from_slice(&k);
        block.extend_from_slice(&v);
        count += 1;
        if block.len() >= TARGET_BLOCK_BYTES {
            flush_block(&mut out, &mut block, &mut block_first, &mut l1);
        }
    }
    flush_block(&mut out, &mut block, &mut block_first, &mut l1);

    if count == 0 {
        // An empty table is an empty file.
        return Ok(Vec::new());
    }

    let blocks = l1.len() as u64;
    let mut l2: Vec<Fence> = Vec::new();
    for chunk in l1.chunks(GROUP_BLOCKS) {
        let mut group_bytes = Vec::new();
        for fence in chunk {
            push_fence(&mut group_bytes, fence);
        }
        l2.push(Fence {
            first_key: chunk[0].first_key.clone(),
            off: out.len() as u64,
            len: group_bytes.len() as u32,
            crc: crc32(&group_bytes),
        });
        out.extend_from_slice(&group_bytes);
    }
    let l2_off = out.len() as u64;
    let mut l2_bytes = Vec::new();
    for fence in &l2 {
        push_fence(&mut l2_bytes, fence);
    }
    let l2_crc = crc32(&l2_bytes);
    let l2_len = l2_bytes.len() as u32;
    out.extend_from_slice(&l2_bytes);
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&blocks.to_be_bytes());
    out.extend_from_slice(&l2_off.to_be_bytes());
    out.extend_from_slice(&l2_len.to_be_bytes());
    out.extend_from_slice(&l2_crc.to_be_bytes());
    out.extend_from_slice(&INDEX_TAB_MAGIC);
    Ok(out)
}

struct DeltaState {
    log: Box<dyn Medium>,
    /// The overlay: `Some` = pending put, `None` = pending delete.
    map: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    /// Length of the log's longest valid prefix.
    valid_len: u64,
    /// Bytes beyond `valid_len` exist on the medium (torn tail found at
    /// open; truncated lazily by the next append).
    dirty_tail: bool,
    unsynced: bool,
}

impl DeltaState {
    fn open(log: Box<dyn Medium>) -> Result<Self, StoreError> {
        let bytes = log.read_all()?;
        let mut map = BTreeMap::new();
        let mut valid_len = 0u64;
        if !bytes.is_empty() && bytes.len() >= INDEX_LOG_MAGIC.len() && bytes[..8] == INDEX_LOG_MAGIC
        {
            valid_len = INDEX_LOG_MAGIC.len() as u64;
            let mut at = INDEX_LOG_MAGIC.len();
            while bytes.len() - at >= FRAME_HEADER {
                let len = be32(&bytes[at..at + 4]) as usize;
                let crc = be32(&bytes[at + 4..at + 8]);
                if len > MAX_REGION || bytes.len() - at - FRAME_HEADER < len {
                    break;
                }
                let payload = &bytes[at + FRAME_HEADER..at + FRAME_HEADER + len];
                if crc32(payload) != crc {
                    break;
                }
                let Ok(ops) = Self::decode_ops(payload) else {
                    break;
                };
                for (key, value) in ops {
                    map.insert(key, value);
                }
                at += FRAME_HEADER + len;
                valid_len = at as u64;
            }
        }
        let dirty_tail = valid_len < bytes.len() as u64;
        Ok(DeltaState {
            log,
            map,
            valid_len,
            dirty_tail,
            unsynced: false,
        })
    }

    fn decode_ops(payload: &[u8]) -> Result<DeltaOps, StoreError> {
        let mut ops = Vec::new();
        let mut at = 0usize;
        while at < payload.len() {
            if payload.len() - at < 5 {
                return Err(corrupt("torn delta op"));
            }
            let op = payload[at];
            let klen = be32(&payload[at + 1..at + 5]) as usize;
            at += 5;
            if klen > MAX_REGION || payload.len() - at < klen {
                return Err(corrupt("torn delta key"));
            }
            let key = payload[at..at + klen].to_vec();
            at += klen;
            match op {
                OP_PUT => {
                    if payload.len() - at < 4 {
                        return Err(corrupt("torn delta value header"));
                    }
                    let vlen = be32(&payload[at..at + 4]) as usize;
                    at += 4;
                    if vlen > MAX_REGION || payload.len() - at < vlen {
                        return Err(corrupt("torn delta value"));
                    }
                    let value = payload[at..at + vlen].to_vec();
                    at += vlen;
                    ops.push((key, Some(value)));
                }
                OP_DEL => ops.push((key, None)),
                _ => return Err(corrupt(format!("unknown delta op {op}"))),
            }
        }
        Ok(ops)
    }

    fn encode_frame(batch: &[TableOp]) -> Vec<u8> {
        let mut payload = Vec::new();
        for op in batch {
            match op {
                TableOp::Put { key, value } => {
                    payload.push(OP_PUT);
                    payload.extend_from_slice(&(key.len() as u32).to_be_bytes());
                    payload.extend_from_slice(key);
                    payload.extend_from_slice(&(value.len() as u32).to_be_bytes());
                    payload.extend_from_slice(value);
                }
                TableOp::Delete { key } => {
                    payload.push(OP_DEL);
                    payload.extend_from_slice(&(key.len() as u32).to_be_bytes());
                    payload.extend_from_slice(key);
                }
            }
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&crc32(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        frame
    }

    /// Makes the log appendable: writes the magic on first use,
    /// truncates a torn tail.
    fn prepare_tail(&mut self) -> Result<(), StoreError> {
        if self.valid_len < INDEX_LOG_MAGIC.len() as u64 {
            self.log.replace(&INDEX_LOG_MAGIC)?;
            self.valid_len = INDEX_LOG_MAGIC.len() as u64;
            self.dirty_tail = false;
        } else if self.dirty_tail {
            self.log.truncate(self.valid_len)?;
            self.log.sync()?;
            self.dirty_tail = false;
        }
        Ok(())
    }
}

/// The file-backed [`TableBackend`]: immutable sorted base + delta
/// overlay, both over [`Medium`] so the oracle tests can run it on
/// in-memory media with power-loss simulation.
pub struct FileTable {
    delta: Mutex<DeltaState>,
    base: Mutex<BaseState>,
}

impl FileTable {
    /// Opens a table over explicit media (base run, delta log). Reads
    /// only the base trailer + top fences and replays the delta log —
    /// open cost is bounded by the delta, not the table.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on medium failure; [`StoreError::Corrupt`] if
    /// the base file fails its framing or CRCs (a torn delta *tail* is
    /// not an error — the longest valid prefix is used).
    pub fn from_media(base: Box<dyn Medium>, log: Box<dyn Medium>) -> Result<Self, StoreError> {
        Ok(FileTable {
            delta: Mutex::new(DeltaState::open(log)?),
            base: Mutex::new(BaseState::open(base)?),
        })
    }

    /// Opens (creating as needed) `index.tab` + `index.log` in `dir`.
    ///
    /// # Errors
    ///
    /// As [`FileTable::from_media`], plus directory creation failures.
    pub fn open_dir(dir: impl AsRef<Path>) -> Result<Self, StoreError> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir).map_err(StoreError::from)?;
        let base = FileMedium::open(dir.join("index.tab"))?;
        let log = FileMedium::open(dir.join("index.log"))?;
        Self::from_media(Box::new(base), Box::new(log))
    }

    /// Power-loss simulation passthrough (meaningful on [`MemMedium`]
    /// media): drops unsynced delta-log bytes, then reloads the overlay
    /// from what survived.
    ///
    /// [`MemMedium`]: drbac_store::MemMedium
    pub fn lose_unsynced(&self) -> Result<(), StoreError> {
        let mut delta = self.delta.lock();
        delta.log.lose_unsynced();
        let log = std::mem::replace(&mut delta.log, Box::new(drbac_store::MemMedium::new()));
        *delta = DeltaState::open(log)?;
        Ok(())
    }

    fn compact_locked(
        delta: &mut DeltaState,
        base: &mut BaseState,
    ) -> Result<(), StoreError> {
        let mut merged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        merged_scan(base, &delta.map, &[], None, &mut |k, v| {
            merged.push((k.to_vec(), v.to_vec()));
            true
        })?;
        let image = build_base(&mut merged.into_iter())?;
        base.medium.replace(&image)?;
        base.reload()?;
        delta.map.clear();
        delta.log.replace(&INDEX_LOG_MAGIC)?;
        delta.valid_len = INDEX_LOG_MAGIC.len() as u64;
        delta.dirty_tail = false;
        delta.unsynced = false;
        drbac_obs::static_counter!("drbac.index.compact.count").inc();
        Ok(())
    }
}

/// Merges the base stream with the delta overlay for `start <= key <
/// end`. The overlay wins on key collisions; tombstones suppress base
/// entries.
fn merged_scan(
    base: &mut BaseState,
    delta: &BTreeMap<Vec<u8>, Option<Vec<u8>>>,
    start: &[u8],
    end: Option<&[u8]>,
    f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
) -> Result<(), StoreError> {
    let upper = end.map_or(Bound::Unbounded, |e| Bound::Excluded(e.to_vec()));
    let overlay: Vec<(&Vec<u8>, &Option<Vec<u8>>)> = delta
        .range((Bound::Included(start.to_vec()), upper))
        .collect();
    let mut oi = 0usize;
    let mut stopped = false;
    base.scan(start, end, &mut |k, v| {
        // Emit overlay puts strictly before this base key.
        while oi < overlay.len() && overlay[oi].0.as_slice() < k {
            if let Some(val) = overlay[oi].1 {
                if !f(overlay[oi].0, val) {
                    stopped = true;
                    oi += 1;
                    return false;
                }
            }
            oi += 1;
        }
        if oi < overlay.len() && overlay[oi].0.as_slice() == k {
            // Overlay shadows the base entry (put replaces, tombstone
            // suppresses).
            let keep_going = match overlay[oi].1 {
                Some(val) => f(k, val),
                None => true,
            };
            oi += 1;
            if !keep_going {
                stopped = true;
            }
            return keep_going;
        }
        if !f(k, v) {
            stopped = true;
            return false;
        }
        true
    })?;
    if stopped {
        return Ok(());
    }
    while oi < overlay.len() {
        if let Some(val) = overlay[oi].1 {
            if !f(overlay[oi].0, val) {
                break;
            }
        }
        oi += 1;
    }
    Ok(())
}

impl TableBackend for FileTable {
    fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        if let Some(pending) = self.delta.lock().map.get(key) {
            return Ok(pending.clone());
        }
        self.base.lock().get(key)
    }

    fn apply(&self, batch: &[TableOp]) -> Result<(), StoreError> {
        let mut delta = self.delta.lock();
        delta.prepare_tail()?;
        let frame = DeltaState::encode_frame(batch);
        delta.log.append(&frame)?;
        delta.valid_len += frame.len() as u64;
        delta.unsynced = true;
        for op in batch {
            match op {
                TableOp::Put { key, value } => {
                    delta.map.insert(key.clone(), Some(value.clone()));
                }
                TableOp::Delete { key } => {
                    delta.map.insert(key.clone(), None);
                }
            }
        }
        if delta.map.len() >= DELTA_MAX_OPS || delta.valid_len >= DELTA_MAX_BYTES {
            let mut base = self.base.lock();
            Self::compact_locked(&mut delta, &mut base)?;
        }
        Ok(())
    }

    fn scan(
        &self,
        start: &[u8],
        end: Option<&[u8]>,
        f: &mut dyn FnMut(&[u8], &[u8]) -> bool,
    ) -> Result<(), StoreError> {
        // Clone the in-range overlay so the delta lock is not held
        // across block reads; post-compaction overlays are small.
        let overlay: BTreeMap<Vec<u8>, Option<Vec<u8>>> = {
            let delta = self.delta.lock();
            let upper = end.map_or(Bound::Unbounded, |e| Bound::Excluded(e.to_vec()));
            delta
                .map
                .range((Bound::Included(start.to_vec()), upper))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect()
        };
        let mut base = self.base.lock();
        merged_scan(&mut base, &overlay, start, end, f)
    }

    fn stats(&self) -> TableStats {
        let delta = self.delta.lock();
        let base = self.base.lock();
        TableStats {
            base_entries: base.meta.as_ref().map_or(0, |m| m.entries),
            base_bytes: base.meta.as_ref().map_or(0, |m| m.bytes),
            delta_ops: delta.map.len() as u64,
            delta_bytes: delta.valid_len,
        }
    }

    fn flush(&self) -> Result<(), StoreError> {
        let mut delta = self.delta.lock();
        if delta.unsynced {
            delta.log.sync()?;
            delta.unsynced = false;
        }
        Ok(())
    }

    fn compact(&self) -> Result<(), StoreError> {
        let mut delta = self.delta.lock();
        let mut base = self.base.lock();
        Self::compact_locked(&mut delta, &mut base)
    }

    fn reset_with(
        &self,
        entries: &mut dyn Iterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<(), StoreError> {
        let mut delta = self.delta.lock();
        let mut base = self.base.lock();
        let image = build_base(entries)?;
        base.medium.replace(&image)?;
        base.reload()?;
        delta.map.clear();
        delta.log.replace(&INDEX_LOG_MAGIC)?;
        delta.valid_len = INDEX_LOG_MAGIC.len() as u64;
        delta.dirty_tail = false;
        delta.unsynced = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use drbac_store::MemMedium;

    fn put(key: &[u8], value: &[u8]) -> TableOp {
        TableOp::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        }
    }

    fn mem_table() -> (FileTable, MemMedium, MemMedium) {
        let base = MemMedium::new();
        let log = MemMedium::new();
        let t = FileTable::from_media(Box::new(base.clone()), Box::new(log.clone())).unwrap();
        (t, base, log)
    }

    fn key(i: u32) -> Vec<u8> {
        format!("k{i:06}").into_bytes()
    }

    #[test]
    fn round_trips_through_compaction_and_reopen() {
        let (t, base, log) = mem_table();
        for i in 0..500u32 {
            t.apply(&[put(&key(i), &i.to_be_bytes())]).unwrap();
        }
        t.compact().unwrap();
        // Post-compaction mutations live in the overlay.
        t.apply(&[put(&key(42), b"fresh"), TableOp::Delete { key: key(43) }])
            .unwrap();
        t.flush().unwrap();

        let reopened =
            FileTable::from_media(Box::new(base.clone()), Box::new(log.clone())).unwrap();
        assert_eq!(reopened.get(&key(42)).unwrap(), Some(b"fresh".to_vec()));
        assert_eq!(reopened.get(&key(43)).unwrap(), None);
        assert_eq!(reopened.get(&key(7)).unwrap(), Some(7u32.to_be_bytes().to_vec()));
        assert_eq!(reopened.entries().unwrap(), 499);

        // Ordered scans cross block boundaries and respect bounds.
        let mut seen = Vec::new();
        reopened
            .scan(&key(100), Some(&key(105)), &mut |k, _| {
                seen.push(k.to_vec());
                true
            })
            .unwrap();
        assert_eq!(seen, (100..105).map(key).collect::<Vec<_>>());
    }

    #[test]
    fn torn_delta_tail_loses_whole_batches_only() {
        let (t, base, log) = mem_table();
        t.apply(&[put(b"a", b"1")]).unwrap();
        t.flush().unwrap();
        t.apply(&[put(b"b", b"2"), put(b"c", b"3")]).unwrap(); // never flushed
        t.lose_unsynced().unwrap();
        assert_eq!(t.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(t.get(b"b").unwrap(), None, "unsynced batch fully gone");
        assert_eq!(t.get(b"c").unwrap(), None);

        // A bit-flipped tail is also dropped at the frame boundary.
        t.apply(&[put(b"d", b"4")]).unwrap();
        t.flush().unwrap();
        let mut bytes = log.read_all().unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        log.replace(&bytes).unwrap();
        let reopened = FileTable::from_media(Box::new(base), Box::new(log)).unwrap();
        assert_eq!(reopened.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert_eq!(reopened.get(b"d").unwrap(), None);
    }

    #[test]
    fn corrupt_base_is_an_error_not_a_panic() {
        let (t, base, log) = mem_table();
        for i in 0..200u32 {
            t.apply(&[put(&key(i), b"v")]).unwrap();
        }
        t.compact().unwrap();
        let mut bytes = base.read_all().unwrap();
        bytes[40] ^= 0x01; // damage a data block
        base.replace(&bytes).unwrap();
        let reopened = FileTable::from_media(Box::new(base), Box::new(log)).unwrap();
        // Open succeeds (trailer + L2 intact); the damaged block is
        // caught by its fence CRC on first touch.
        let err = reopened.get(&key(0)).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt(_)), "{err}");
    }

    #[test]
    fn bulk_load_builds_a_scannable_base() {
        let (t, _base, _log) = mem_table();
        let mut input = (0..10_000u32).map(|i| (key(i), i.to_be_bytes().to_vec()));
        t.reset_with(&mut input).unwrap();
        assert_eq!(t.entries().unwrap(), 10_000);
        assert_eq!(
            t.get(&key(9_999)).unwrap(),
            Some(9_999u32.to_be_bytes().to_vec())
        );
        let stats = t.stats();
        assert!(stats.base_entries == 10_000 && stats.delta_ops == 0);
        let mut n = 0u64;
        t.scan_prefix(b"k", &mut |_, _| {
            n += 1;
            true
        })
        .unwrap();
        assert_eq!(n, 10_000);
    }

    #[test]
    fn overlay_shadows_base_in_scans() {
        let (t, _base, _log) = mem_table();
        let mut input = (0..100u32).map(|i| (key(i), b"base".to_vec()));
        t.reset_with(&mut input).unwrap();
        t.apply(&[
            put(&key(10), b"new"),
            TableOp::Delete { key: key(11) },
            put(b"zzz", b"tail"),
        ])
        .unwrap();
        let mut seen = Vec::new();
        t.scan(&key(9), None, &mut |k, v| {
            seen.push((k.to_vec(), v.to_vec()));
            true
        })
        .unwrap();
        let keys: Vec<Vec<u8>> = seen.iter().map(|(k, _)| k.clone()).collect();
        assert!(!keys.contains(&key(11)), "tombstone suppressed");
        assert!(keys.contains(&b"zzz".to_vec()), "overlay tail emitted");
        let v10 = seen.iter().find(|(k, _)| *k == key(10)).unwrap();
        assert_eq!(v10.1, b"new");
    }
}
