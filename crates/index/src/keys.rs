//! Key encodings for the delegation index.
//!
//! Every index entry lives in one flat ordered keyspace, partitioned by
//! a single-byte prefix. All composite keys end in the 32-byte
//! delegation id, and every variable-length component before it is
//! length-prefixed (the canonical wire encoding) — so no key is a
//! strict prefix of another and prefix scans are unambiguous.
//!
//! | prefix | key layout                          | value                         |
//! |--------|-------------------------------------|-------------------------------|
//! | `d`    | id(32)                              | [`CertRow`] metadata          |
//! | `c`    | id(32)                              | cert wire bytes               |
//! | `s`    | subject node enc ‖ id(32)           | (empty)                       |
//! | `o`    | object node enc ‖ id(32)            | (empty)                       |
//! | `i`    | issuer fingerprint(32) ‖ id(32)     | (empty)                       |
//! | `e`    | be64(expiry) ‖ id(32)               | (empty)                       |
//! | `g`    | be64-len ‖ tag home ‖ id(32)        | (empty)                       |
//! | `3`    | id(32)                              | (empty, third-party audit set)|
//! | `r`    | id(32)                              | `[1]` revoked / `[2]` expired |
//! | `b`    | id(32)                              | absorbed-from wallet address  |
//! | `a`    | be64(counter)                       | signed declaration bytes      |
//! | `p`    | be64(counter)                       | support proof bytes           |
//! | `m`    | name                                | metadata (watermark, counters)|
//!
//! The node encoding is the workspace's canonical [`Encode`] form, which
//! is deterministic and self-delimiting; the expiry key is the raw
//! big-endian timestamp so an ordered scan up to `be64(now)` visits
//! exactly the delegations with `expires < now` — the wallet's strict
//! `now > at` expiry rule.

use drbac_core::{
    DecodeError, DelegationId, Encode, EntityId, Node, Reader, SignedDelegation, Timestamp, Writer,
};

/// Prefix bytes, one per keyspace.
pub(crate) const P_ROW: u8 = b'd';
pub(crate) const P_CERT: u8 = b'c';
pub(crate) const P_SUBJECT: u8 = b's';
pub(crate) const P_OBJECT: u8 = b'o';
pub(crate) const P_ISSUER: u8 = b'i';
pub(crate) const P_EXPIRY: u8 = b'e';
pub(crate) const P_TAG: u8 = b'g';
pub(crate) const P_THIRD_PARTY: u8 = b'3';
pub(crate) const P_MARK: u8 = b'r';
pub(crate) const P_ABSORBED: u8 = b'b';
pub(crate) const P_DECL: u8 = b'a';
pub(crate) const P_SUPPORT: u8 = b'p';
pub(crate) const P_META: u8 = b'm';

/// Revocation-mark values under `r/`.
pub(crate) const MARK_REVOKED: u8 = 1;
/// Expiry tombstone value under `r/`.
pub(crate) const MARK_EXPIRED: u8 = 2;

/// The canonical byte encoding of a graph node, used as the scan key
/// component for the subject and object indexes.
pub fn node_key(node: &Node) -> Vec<u8> {
    let mut w = Writer::default();
    node.encode(&mut w);
    w.finish()
}

fn id_key(prefix: u8, id: DelegationId) -> Vec<u8> {
    let mut k = Vec::with_capacity(33);
    k.push(prefix);
    k.extend_from_slice(&id.0);
    k
}

/// `d/` row key.
pub(crate) fn row_key(id: DelegationId) -> Vec<u8> {
    id_key(P_ROW, id)
}

/// `c/` cert-bytes key.
pub(crate) fn cert_key(id: DelegationId) -> Vec<u8> {
    id_key(P_CERT, id)
}

/// `3/` third-party audit-set key.
pub(crate) fn third_party_key(id: DelegationId) -> Vec<u8> {
    id_key(P_THIRD_PARTY, id)
}

/// `r/` revocation/expiry mark key.
pub(crate) fn mark_key(id: DelegationId) -> Vec<u8> {
    id_key(P_MARK, id)
}

/// `b/` absorbed-from key.
pub(crate) fn absorbed_key(id: DelegationId) -> Vec<u8> {
    id_key(P_ABSORBED, id)
}

fn composite(prefix: u8, mid: &[u8], id: DelegationId) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + mid.len() + 32);
    k.push(prefix);
    k.extend_from_slice(mid);
    k.extend_from_slice(&id.0);
    k
}

/// `s/` secondary key for a subject node (already encoded).
pub(crate) fn subject_key(subject_enc: &[u8], id: DelegationId) -> Vec<u8> {
    composite(P_SUBJECT, subject_enc, id)
}

/// `o/` secondary key for an object node (already encoded).
pub(crate) fn object_key(object_enc: &[u8], id: DelegationId) -> Vec<u8> {
    composite(P_OBJECT, object_enc, id)
}

/// `i/` secondary key for an issuer.
pub(crate) fn issuer_key(issuer: EntityId, id: DelegationId) -> Vec<u8> {
    composite(P_ISSUER, &issuer.0 .0, id)
}

/// `e/` secondary key for an expiry instant.
pub(crate) fn expiry_key(at: Timestamp, id: DelegationId) -> Vec<u8> {
    composite(P_EXPIRY, &at.0.to_be_bytes(), id)
}

/// The scan prefix for one issuer's delegations.
pub(crate) fn issuer_prefix(issuer: EntityId) -> Vec<u8> {
    let mut k = Vec::with_capacity(33);
    k.push(P_ISSUER);
    k.extend_from_slice(&issuer.0 .0);
    k
}

/// The scan prefix for one subject node's delegations.
pub(crate) fn subject_prefix(subject_enc: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + subject_enc.len());
    k.push(P_SUBJECT);
    k.extend_from_slice(subject_enc);
    k
}

/// The scan prefix for one object node's delegations.
pub(crate) fn object_prefix(object_enc: &[u8]) -> Vec<u8> {
    let mut k = Vec::with_capacity(1 + object_enc.len());
    k.push(P_OBJECT);
    k.extend_from_slice(object_enc);
    k
}

/// Length-prefixed tag-home component, keeping `g/ab` scans from
/// matching `g/abc` entries.
fn tag_mid(home: &str) -> Vec<u8> {
    let mut mid = Vec::with_capacity(8 + home.len());
    mid.extend_from_slice(&(home.len() as u64).to_be_bytes());
    mid.extend_from_slice(home.as_bytes());
    mid
}

/// `g/` secondary key for a discovery-tag home wallet.
pub(crate) fn tag_key(home: &str, id: DelegationId) -> Vec<u8> {
    composite(P_TAG, &tag_mid(home), id)
}

/// The scan prefix for one tag home.
pub(crate) fn tag_prefix(home: &str) -> Vec<u8> {
    let mut k = vec![P_TAG];
    k.extend_from_slice(&tag_mid(home));
    k
}

/// `a/` or `p/` counter key.
pub(crate) fn counter_key(prefix: u8, counter: u64) -> Vec<u8> {
    let mut k = Vec::with_capacity(9);
    k.push(prefix);
    k.extend_from_slice(&counter.to_be_bytes());
    k
}

/// `m/` metadata key.
pub(crate) fn meta_key(name: &str) -> Vec<u8> {
    let mut k = vec![P_META];
    k.extend_from_slice(name.as_bytes());
    k
}

/// The trailing 32 bytes of a composite key, as a [`DelegationId`].
/// Returns `None` for keys too short to carry one.
pub(crate) fn id_suffix(key: &[u8]) -> Option<DelegationId> {
    if key.len() < 32 {
        return None;
    }
    let mut id = [0u8; 32];
    id.copy_from_slice(&key[key.len() - 32..]);
    Some(DelegationId(id))
}

/// The decoded `d/` row: everything needed to maintain and drop a
/// delegation's secondary keys without re-decoding the credential, plus
/// the flags the query planner filters on.
#[derive(Debug, Clone, PartialEq)]
pub struct CertRow {
    /// The journal sequence number that admitted this delegation.
    pub seq: u64,
    /// Whether the credential needs issuer support (third-party subject
    /// or foreign attribute clauses) — the audit set.
    pub needs_support: bool,
    /// The expiry instant, when bounded.
    pub expiry: Option<Timestamp>,
    /// Canonical encoding of the subject node.
    pub subject_enc: Vec<u8>,
    /// Canonical encoding of the object node.
    pub object_enc: Vec<u8>,
    /// The issuing entity.
    pub issuer: EntityId,
    /// Distinct discovery-tag home wallets on the credential.
    pub tag_homes: Vec<String>,
}

impl CertRow {
    /// Builds the row for a credential admitted at journal `seq`.
    pub fn of(seq: u64, cert: &SignedDelegation) -> CertRow {
        let d = cert.delegation();
        let needs_support =
            d.required_support().is_some() || d.foreign_clauses().next().is_some();
        let mut tag_homes: Vec<String> = Vec::new();
        for tag in [d.subject_tag(), d.object_tag(), d.issuer_tag()]
            .into_iter()
            .flatten()
        {
            let home = tag.home().as_str().to_string();
            if !tag_homes.contains(&home) {
                tag_homes.push(home);
            }
        }
        CertRow {
            seq,
            needs_support,
            expiry: d.expires(),
            subject_enc: node_key(d.subject()),
            object_enc: node_key(d.object()),
            issuer: d.issuer(),
            tag_homes,
        }
    }

    /// Encodes the row value.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u64(self.seq);
        w.u8(u8::from(self.needs_support));
        w.opt_u64(self.expiry.map(|t| t.0));
        w.bytes(&self.subject_enc);
        w.bytes(&self.object_enc);
        w.bytes(&self.issuer.0 .0);
        w.u64(self.tag_homes.len() as u64);
        for home in &self.tag_homes {
            w.str(home);
        }
        w.finish()
    }

    /// Decodes a row value.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] for truncated or malformed bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<CertRow, DecodeError> {
        let mut r = Reader::new(bytes);
        let seq = r.u64()?;
        let needs_support = r.u8()? != 0;
        let expiry = r.opt_u64()?.map(Timestamp);
        let subject_enc = r.bytes()?.to_vec();
        let object_enc = r.bytes()?.to_vec();
        let fp: [u8; 32] = r
            .bytes()?
            .try_into()
            .map_err(|_| DecodeError::UnexpectedEof)?;
        let issuer = EntityId(drbac_crypto_fingerprint(fp));
        let n = r.u64()?;
        let mut tag_homes = Vec::with_capacity(n as usize);
        for _ in 0..n {
            tag_homes.push(r.str()?.to_string());
        }
        r.finish()?;
        Ok(CertRow {
            seq,
            needs_support,
            expiry,
            subject_enc,
            object_enc,
            issuer,
            tag_homes,
        })
    }
}

/// [`drbac_core`] re-exports the crypto fingerprint type through
/// [`EntityId`]'s public field; this helper names the round-trip.
fn drbac_crypto_fingerprint(fp: [u8; 32]) -> drbac_crypto::KeyFingerprint {
    drbac_crypto::KeyFingerprint(fp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_keys_are_prefix_free() {
        // Length-prefixed role names: "r" must not be a key prefix of "rx".
        let fp = drbac_crypto::KeyFingerprint([7u8; 32]);
        let e = EntityId(fp);
        let role = |name: &str| {
            drbac_core::Role::new(e, drbac_core::RoleName::new(name).unwrap())
        };
        let r1 = node_key(&Node::Role(role("r")));
        let r2 = node_key(&Node::Role(role("rx")));
        assert!(!r2.starts_with(&r1));
        let ent = node_key(&Node::Entity(e));
        assert!(!r1.starts_with(&ent) && !ent.starts_with(&r1));
    }

    #[test]
    fn expiry_keys_sort_by_time() {
        let id = DelegationId([9u8; 32]);
        let early = expiry_key(Timestamp(5), id);
        let late = expiry_key(Timestamp(400), id);
        assert!(early < late);
        // The `e/` range scan up to be64(now) is exclusive, matching the
        // wallet's strict `now > at` expiry rule.
        let bound = expiry_key(Timestamp(400), DelegationId([0u8; 32]));
        assert!(late >= bound);
    }

    #[test]
    fn id_suffix_recovers_the_id() {
        let id = DelegationId([3u8; 32]);
        let k = subject_key(b"subject-bytes", id);
        assert_eq!(id_suffix(&k), Some(id));
        assert_eq!(id_suffix(b"short"), None);
    }
}
