#![warn(missing_docs)]

//! Indexed delegation storage for dRBAC: an ordered-table layer with
//! secondary indexes, for million-delegation wallets that answer audit
//! queries and boot in milliseconds.
//!
//! The write-ahead store (`drbac-store`) makes a wallet durable, but
//! recovery re-verifies every journaled credential — fine at thousands
//! of delegations, minutes at a million. This crate adds a *second
//! storage backend*, not a cache: a totally ordered byte-key table
//! ([`TableBackend`]) holding secondary indexes keyed by subject,
//! object, issuer, expiry time, and discovery-tag home, maintained
//! transactionally (one atomic batch per journaled event) alongside the
//! in-memory delegation graph.
//!
//! * [`TableBackend`] — the ordered-table seam: `get`, atomic `apply`
//!   batches, ordered range scans, bulk load.
//! * [`MemTable`] — `BTreeMap` backend for simulation and oracle tests.
//! * [`FileTable`] — the durable backend: an immutable sorted base file
//!   with two fence levels (open reads the 40-byte trailer plus the
//!   top-level fences only) and a CRC-framed delta log, both stored
//!   through `drbac-store`'s [`Medium`](drbac_store::Medium) seam. Reads
//!   fetch and CRC-check 4 KiB blocks lazily; the delta log folds into
//!   the base automatically as it grows.
//! * [`DelegationIndex`] — the dRBAC-specific keyspaces over a table
//!   (see [`keys`] for the layout), with one `apply(seq, event)` batch
//!   per journal record, prefix-scan queries for the wallet's planner,
//!   a bulk [`DelegationIndex::rebuild`] migration path, and an
//!   index/WAL cross-check ([`DelegationIndex::verify_against`]).
//!
//! The watermark invariant ties the two stores together: the index has
//! applied exactly the journal prefix up to `m/watermark`. A crash
//! between a WAL append and its index batch leaves the watermark one
//! behind — healed by replaying the log tail past the watermark, which
//! is idempotent. The index never becomes *ahead* of the log it
//! projects unless the log itself lost data; that case (and any framing
//! damage) is detected at open and answered by a rebuild, never a
//! panic.

mod file;
mod index;
pub mod keys;
mod table;

pub use file::{FileTable, INDEX_LOG_MAGIC, INDEX_TAB_MAGIC};
pub use index::{DelegationIndex, IndexCheck, Mark, RebuildSource};
pub use keys::{node_key, CertRow};
pub use table::{prefix_end, MemTable, TableBackend, TableOp, TableStats};
