//! Reference search engine: the pre-interning, clone-heavy sequential
//! implementation, preserved verbatim as a behavioral oracle.
//!
//! The live engine (`search.rs`) interns nodes, assembles proofs from
//! parent pointers, and expands frontiers in batches; this module keeps
//! the original `Node`-keyed, eager-proof breadth-first search so tests
//! can assert that the optimized engine produces **byte-identical**
//! proofs across seeds, graph shapes, and worker-pool sizes. It is
//! `#[doc(hidden)]` and compiled into the library solely for oracle
//! tests and the bench harness; production callers use
//! [`crate::direct_query_on`] and friends.
//!
//! Do not "improve" this module: its value is that it does not change.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use drbac_core::{
    AttrAccumulator, DeclarationSet, EntityId, Node, Proof, ProofStep, SignedDelegation,
};

use crate::search::{dominates, SearchOptions, SearchStats};
use crate::view::GraphView;

/// One search state: a node plus the proof and accumulation that reach it.
struct State {
    node: Node,
    proof: Proof,
    acc: AttrAccumulator,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Reverse,
}

struct RefEngine<'g, G: GraphView + ?Sized> {
    graph: &'g G,
    opts: &'g SearchOptions,
    decls: DeclarationSet,
    stats: SearchStats,
}

/// Reference direct query: first satisfying proof `subject ⇒ object`.
pub fn direct_query_ref<G: GraphView + ?Sized>(
    graph: &G,
    subject: &Node,
    object: &Node,
    opts: &SearchOptions,
) -> (Option<Proof>, SearchStats) {
    let mut engine = RefEngine::new(graph, opts);
    let found = engine
        .search(subject, Some(object), Direction::Forward)
        .remove(object);
    (found, engine.stats)
}

/// Reference subject query: one proof per reachable node, in the same
/// deterministic order as [`crate::subject_query_on`].
pub fn subject_query_ref<G: GraphView + ?Sized>(
    graph: &G,
    subject: &Node,
    opts: &SearchOptions,
) -> (Vec<Proof>, SearchStats) {
    let mut engine = RefEngine::new(graph, opts);
    let reached = engine.search(subject, None, Direction::Forward);
    let mut proofs: Vec<Proof> = reached.into_values().filter(|p| !p.is_trivial()).collect();
    proofs.sort_by_cached_key(|p| crate::search::order_key(p, p.object()));
    (proofs, engine.stats)
}

/// Reference object query: one proof per reaching node, in the same
/// deterministic order as [`crate::object_query_on`].
pub fn object_query_ref<G: GraphView + ?Sized>(
    graph: &G,
    object: &Node,
    opts: &SearchOptions,
) -> (Vec<Proof>, SearchStats) {
    let mut engine = RefEngine::new(graph, opts);
    let reached = engine.search(object, None, Direction::Reverse);
    let mut proofs: Vec<Proof> = reached.into_values().filter(|p| !p.is_trivial()).collect();
    proofs.sort_by_cached_key(|p| crate::search::order_key(p, p.subject()));
    (proofs, engine.stats)
}

impl<'g, G: GraphView + ?Sized> RefEngine<'g, G> {
    fn new(graph: &'g G, opts: &'g SearchOptions) -> Self {
        RefEngine {
            graph,
            opts,
            decls: graph.declaration_set(),
            stats: SearchStats::default(),
        }
    }

    fn search(
        &mut self,
        start: &Node,
        target: Option<&Node>,
        dir: Direction,
    ) -> HashMap<Node, Proof> {
        let mut results: HashMap<Node, Proof> = HashMap::new();
        let mut frontier: HashMap<Node, Vec<AttrAccumulator>> = HashMap::new();
        let mut queue: VecDeque<State> = VecDeque::new();

        let initial = State {
            node: start.clone(),
            proof: Proof::trivial(start.clone()),
            acc: AttrAccumulator::new(),
        };
        frontier
            .entry(start.clone())
            .or_default()
            .push(initial.acc.clone());
        results.insert(start.clone(), initial.proof.clone());
        queue.push_back(initial);

        while let Some(state) = queue.pop_front() {
            self.stats.nodes_expanded += 1;
            if state.proof.chain_len() >= self.opts.max_depth {
                continue;
            }
            let edges = match dir {
                Direction::Forward => self.graph.edges_from(&state.node, self.opts.now),
                Direction::Reverse => self.graph.edges_to(&state.node, self.opts.now),
            };
            for cert in edges {
                self.stats.edges_considered += 1;
                let next_node = match dir {
                    Direction::Forward => cert.delegation().object().clone(),
                    Direction::Reverse => cert.delegation().subject().clone(),
                };

                let mut acc = state.acc.clone();
                for clause in cert.delegation().clauses() {
                    acc.absorb_clause(clause);
                }
                if self.opts.prune_by_constraints
                    && !self.opts.constraints.is_empty()
                    && !acc.satisfies(&self.opts.constraints, &self.decls)
                {
                    continue;
                }

                if frontier.get(&next_node).is_some_and(|seen| {
                    seen.iter()
                        .any(|prev| dominates(prev, &acc, &self.opts.constraints, &self.decls))
                }) {
                    continue;
                }

                let Some(step) = self.build_step(&cert, &mut Vec::new(), 0) else {
                    continue;
                };

                let proof = match dir {
                    Direction::Forward => {
                        let tail = Proof::from_steps(vec![step]).expect("single step");
                        state
                            .proof
                            .clone()
                            .concat(tail)
                            .expect("linked by construction")
                    }
                    Direction::Reverse => {
                        let head = Proof::from_steps(vec![step]).expect("single step");
                        head.concat(state.proof.clone())
                            .expect("linked by construction")
                    }
                };
                if !proof.respects_extension_depths() {
                    continue;
                }

                let seen = frontier.entry(next_node.clone()).or_default();
                seen.retain(|prev| !dominates(&acc, prev, &self.opts.constraints, &self.decls));
                seen.push(acc.clone());

                if proof
                    .accumulate()
                    .satisfies(&self.opts.constraints, &self.decls)
                {
                    results
                        .entry(next_node.clone())
                        .or_insert_with(|| proof.clone());
                    if target == Some(&next_node) {
                        results.insert(next_node, proof);
                        return results;
                    }
                }

                self.stats.states_enqueued += 1;
                queue.push_back(State {
                    node: next_node,
                    proof,
                    acc,
                });
            }
        }
        results
    }

    fn build_step(
        &mut self,
        cert: &Arc<SignedDelegation>,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<ProofStep> {
        let delegation = cert.delegation();
        let issuer = delegation.issuer();
        let mut needed: Vec<Node> = Vec::new();
        if let Some(right) = delegation.required_support() {
            needed.push(right);
        }
        for clause in delegation.foreign_clauses() {
            let admin = Node::attr_admin(clause.attr().clone());
            if !needed.contains(&admin) {
                needed.push(admin);
            }
        }
        let mut step = ProofStep::new(Arc::clone(cert));
        for right in needed {
            let support = self.resolve_support(issuer, &right, resolving, depth)?;
            step = step.with_support(support);
        }
        Some(step)
    }

    fn resolve_support(
        &mut self,
        issuer: EntityId,
        right: &Node,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<Proof> {
        if let Some(p) = self.graph.support_for(issuer, right) {
            let usable = p.all_certs().iter().all(|c| {
                !self.graph.id_revoked(c.id()) && !c.delegation().is_expired(self.opts.now)
            });
            if usable {
                return Some(p);
            }
        }
        if depth >= self.opts.max_support_depth {
            return None;
        }
        let key = (issuer, right.clone());
        if resolving.contains(&key) {
            return None;
        }
        resolving.push(key);
        self.stats.support_resolutions += 1;
        let found = self.support_search(&Node::Entity(issuer), right, resolving, depth);
        resolving.pop();
        found
    }

    fn support_search(
        &mut self,
        start: &Node,
        target: &Node,
        resolving: &mut Vec<(EntityId, Node)>,
        depth: usize,
    ) -> Option<Proof> {
        let mut visited: HashSet<Node> = HashSet::new();
        let mut queue: VecDeque<(Node, Proof)> = VecDeque::new();
        visited.insert(start.clone());
        queue.push_back((start.clone(), Proof::trivial(start.clone())));
        while let Some((node, proof)) = queue.pop_front() {
            self.stats.nodes_expanded += 1;
            if proof.chain_len() >= self.opts.max_depth {
                continue;
            }
            let edges = self.graph.edges_from(&node, self.opts.now);
            for cert in edges {
                self.stats.edges_considered += 1;
                let next = cert.delegation().object().clone();
                if visited.contains(&next) {
                    continue;
                }
                let Some(step) = self.build_step(&cert, resolving, depth + 1) else {
                    continue;
                };
                let tail = Proof::from_steps(vec![step]).expect("single step");
                let next_proof = proof.clone().concat(tail).expect("linked");
                if !next_proof.respects_extension_depths() {
                    continue;
                }
                if &next == target {
                    return Some(next_proof);
                }
                visited.insert(next.clone());
                queue.push_back((next, next_proof));
            }
        }
        None
    }
}
